"""Cache-identity smoke test: a warm rerun must be byte-identical.

Runs a small study twice against the same cache directory -- once cold,
once warm with a fresh ``Study`` and obs stack -- and asserts the
tentpole guarantees of :mod:`repro.cache`:

* the warm run's exports (persisted capture store, adoption series,
  vantage table, marketshare curve) are byte-equal to the cold run's;
* the warm run skips the crawl phase entirely (zero browser crawls);
* cache hits are observable (``cache_hits_total > 0``).

Run by ``scripts/verify.sh`` (or ``make verify``) so cache regressions
are caught without the full benchmark suite.
"""

import datetime as dt
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.pipeline import Study, StudyConfig
from repro.crawler.storage import save_store
from repro.obs import Observability

WINDOW = (dt.date(2020, 3, 1), dt.date(2020, 4, 15))
WHEN = dt.date(2020, 3, 15)


def run_study(cache_dir: str, out_dir: Path, label: str):
    obs = Observability()
    study = Study(
        StudyConfig(
            seed=7,
            n_domains=3_000,
            toplist_size=150,
            events_per_day=120,
            study_start=WINDOW[0],
            study_end=WINDOW[1],
            cache_dir=cache_dir,
        ),
        obs=obs,
    )
    # Smoke-run duration for the log line; not part of the results.
    start = time.perf_counter()  # repro-lint: disable=DET002
    store = study.run_social_crawl()
    series = study.adoption_series(store)
    table = study.vantage_table(WHEN)
    curve = study.marketshare_curve(WHEN)
    seconds = time.perf_counter() - start  # repro-lint: disable=DET002

    store_path = out_dir / f"store-{label}.jsonl"
    save_store(store, store_path)
    exports = store_path.read_bytes() + json.dumps(
        [series.to_payload(), table.to_payload(), curve.to_payload()],
        sort_keys=True,
    ).encode("utf-8")
    hits = obs.metrics.counter("cache_hits_total").total
    return exports, study.last_crawl_stats.crawls, hits, seconds


def main():
    with tempfile.TemporaryDirectory() as tmp:
        out_dir = Path(tmp)
        cache_dir = str(out_dir / "cache")
        cold, cold_crawls, cold_hits, cold_s = run_study(
            cache_dir, out_dir, "cold"
        )
        print(f"  cold: {cold_crawls} crawls, {cold_hits:.0f} hits, "
              f"{cold_s:.2f}s")
        warm, warm_crawls, warm_hits, warm_s = run_study(
            cache_dir, out_dir, "warm"
        )
        print(f"  warm: {warm_crawls} crawls, {warm_hits:.0f} hits, "
              f"{warm_s:.2f}s")
        if warm != cold:
            print("FAIL: warm exports are not byte-identical to cold")
            return 1
        if warm_crawls != 0:
            print(f"FAIL: warm run crawled {warm_crawls} pages")
            return 1
        if not warm_hits > 0:
            print("FAIL: warm run reported no cache hits")
            return 1
        if cold_crawls == 0 or cold_hits != 0:
            print("FAIL: cold run was not actually cold")
            return 1
    print("cache smoke: warm rerun byte-identical, crawl phase skipped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
