"""Ten-second smoke test of the parallel crawl path.

Runs a small study window serially, on a 4-worker thread pool, and on a
2-worker process pool, and asserts the executor's determinism contract:
identical observation sequences and stats totals for the same seed. Run
by ``scripts/verify.sh`` (or ``make verify``) so regressions in the
sharded path are caught without the full benchmark suite.
"""

import datetime as dt
import sys
import time

from repro.crawler.executor import CrawlExecutor, ExecutorConfig
from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.web.worldgen import World, WorldConfig

WINDOW = (dt.date(2020, 4, 1), dt.date(2020, 4, 5))


def run(world, executor=None):
    platform = NetographPlatform(
        world,
        stream=SocialShareStream(world, StreamConfig(events_per_day=150)),
        config=PlatformConfig(),
    )
    # Smoke-run duration for the log line; not part of the results.
    start = time.perf_counter()  # repro-lint: disable=DET002
    store = platform.run(*WINDOW, executor=executor)
    seconds = time.perf_counter() - start  # repro-lint: disable=DET002
    keys = [
        (o.domain, o.date, o.cmp_key, o.vantage.region)
        for o in store.observations
    ]
    return keys, platform.stats, seconds


def main():
    world = World(WorldConfig(seed=7, n_domains=3_000))
    serial_keys, serial_stats, serial_s = run(world)
    print(f"  serial:     {len(serial_keys)} observations in {serial_s:.2f}s")
    for workers, backend in ((4, "thread"), (2, "process")):
        executor = CrawlExecutor(
            ExecutorConfig(workers=workers, backend=backend)
        )
        keys, stats, seconds = run(world, executor)
        label = f"{workers}x{backend}"
        print(f"  {label:<11} {len(keys)} observations in {seconds:.2f}s "
              f"({stats.executor.n_shards} shards)")
        if keys != serial_keys:
            print(f"FAIL: {label} observations diverge from serial")
            return 1
        if (stats.crawls, stats.failures) != (
            serial_stats.crawls, serial_stats.failures
        ):
            print(f"FAIL: {label} stats diverge from serial")
            return 1
    print("executor smoke: serial == threads == processes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
