"""Coverage gate: `repro.graph` must stay >= 90% statement-covered.

Two measurement paths, one contract:

* with ``pytest-cov`` installed (CI, the dev extra), the whole test
  suite runs under ``--cov`` and this gate enforces the repo-wide
  baseline (:data:`REPO_FLOOR`) on top of the package floor;
* without it (the hermetic toolchain image), a stdlib ``sys.settrace``
  tracer measures the graph package alone while the graph test modules
  run in-process -- no third-party dependency, same per-package floor.

Executable statements come from the AST (docstrings and ``__future__``
imports excluded -- neither emits a trace event); a statement counts as
covered when any line in its span fired. Exit code 1 on a floor miss,
with a per-file table either way.

Usage: ``python scripts/coverage_gate.py`` (or ``make coverage``).
"""

from __future__ import annotations

import ast
import os
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
PACKAGE_DIR = SRC_ROOT / "repro" / "graph"

#: Statement-coverage floor for the graph package (the ISSUE-9 gate:
#: new subsystems can't land untested).
PACKAGE_FLOOR = 90.0

#: Repo-wide baseline, enforced only on the pytest-cov path (the
#: stdlib tracer only instruments the graph package). Recorded from the
#: suite at the time the gate landed; raise it as coverage grows, never
#: lower it.
REPO_FLOOR = 80.0

#: Test modules that exercise the graph package (the stdlib path runs
#: only these; the pytest-cov path runs the whole suite).
GRAPH_TESTS = (
    "tests/test_graph_model.py",
    "tests/test_graph_parity.py",
    "tests/test_graph_properties.py",
    "tests/test_country_toplists.py",
)


def executable_statements(path: Path) -> List[Tuple[int, int]]:
    """``(lineno, end_lineno)`` spans of the file's traceable statements."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstrings: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                docstrings.add(id(body[0]))
    spans = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if id(node) in docstrings:
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        spans.append((node.lineno, node.end_lineno or node.lineno))
    return sorted(spans)


def install_tracer(files: Set[str]) -> Dict[str, Set[int]]:
    """Trace line events for *files* only; returns the live hit map."""
    hits: Dict[str, Set[int]] = {path: set() for path in sorted(files)}
    resolved: Dict[str, str] = {}

    def global_trace(frame, event, arg):
        filename = frame.f_code.co_filename
        target = resolved.get(filename)
        if target is None:
            absolute = os.path.abspath(filename)
            target = resolved[filename] = (
                absolute if absolute in hits else ""
            )
        if not target:
            return None
        lines = hits[target]

        def local_trace(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local_trace

        return local_trace

    sys.settrace(global_trace)
    return hits


def measure_with_stdlib_tracer() -> Dict[str, Tuple[int, int]]:
    """Per-file ``(covered, total)`` statement counts for the package."""
    import pytest

    files = {str(path) for path in sorted(PACKAGE_DIR.glob("*.py"))}
    # The tracer must be live before pytest imports the package during
    # collection, or module-level statements would never fire.
    for name in sorted(sys.modules):
        if name == "repro" or name.startswith("repro."):
            del sys.modules[name]
    hits = install_tracer(files)
    try:
        rc = pytest.main(
            ["-q", "-p", "no:cacheprovider", *GRAPH_TESTS]
        )
    finally:
        sys.settrace(None)
    if rc != 0:
        print(f"coverage gate: graph test run failed (pytest exit {rc})")
        raise SystemExit(1)

    results: Dict[str, Tuple[int, int]] = {}
    for path in sorted(files):
        spans = executable_statements(Path(path))
        fired = hits[path]
        covered = sum(
            1
            for start, end in spans
            if any(line in fired for line in range(start, end + 1))
        )
        results[os.path.relpath(path, REPO_ROOT)] = (covered, len(spans))
    return results


def measure_with_pytest_cov() -> Dict[str, Tuple[int, int]]:
    """Whole-suite run under pytest-cov; also enforces the repo floor."""
    import subprocess

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT)
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--cov=repro",
            "--cov-report=json:coverage.json",
            f"--cov-fail-under={REPO_FLOOR}",
        ],
        cwd=REPO_ROOT,
        env=env,
    )
    if completed.returncode != 0:
        print(
            f"coverage gate: suite failed or repo-wide coverage dropped "
            f"below {REPO_FLOOR:.0f}%"
        )
        raise SystemExit(1)
    import json

    report = json.loads((REPO_ROOT / "coverage.json").read_text())
    results: Dict[str, Tuple[int, int]] = {}
    for filename, data in sorted(report["files"].items()):
        absolute = os.path.abspath(os.path.join(REPO_ROOT, filename))
        if not absolute.startswith(str(PACKAGE_DIR)):
            continue
        summary = data["summary"]
        results[filename] = (
            summary["covered_lines"],
            summary["num_statements"],
        )
    return results


def main() -> int:
    try:
        import pytest_cov  # noqa: F401

        results = measure_with_pytest_cov()
        mode = "pytest-cov (repo floor enforced)"
    except ImportError:
        results = measure_with_stdlib_tracer()
        mode = "stdlib tracer (graph package only)"

    print(f"\ncoverage gate [{mode}]")
    covered_total = 0
    stmt_total = 0
    for filename in sorted(results):
        covered, total = results[filename]
        covered_total += covered
        stmt_total += total
        pct = 100.0 if total == 0 else 100.0 * covered / total
        print(f"  {filename:<44} {covered:>4}/{total:<4} {pct:6.1f}%")
    package_pct = (
        100.0 if stmt_total == 0 else 100.0 * covered_total / stmt_total
    )
    print(
        f"  {'repro.graph (package)':<44} {covered_total:>4}/{stmt_total:<4} "
        f"{package_pct:6.1f}%  (floor {PACKAGE_FLOOR:.0f}%)"
    )
    if package_pct < PACKAGE_FLOOR:
        print("coverage gate: FAIL")
        return 1
    print("coverage gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
