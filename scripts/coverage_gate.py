"""Coverage gate: the gated subsystems must stay statement-covered.

Two gates, one contract each:

* ``repro.graph`` -- the whole package, >= 90% (the ISSUE-9 gate: new
  subsystems can't land untested);
* scale-out -- the spilling capture store and the bounded-LRU
  primitive (``repro.crawler.spill``, ``repro.web.lru``), >= 90%
  (the ISSUE-10 gate: the memory-bounding layer is load-bearing for
  bit-identity, so its branches stay exercised).

Two measurement paths:

* with ``pytest-cov`` installed (CI, the dev extra), the whole test
  suite runs under ``--cov`` and this gate enforces the repo-wide
  baseline (:data:`REPO_FLOOR`) on top of the per-gate floors;
* without it (the hermetic toolchain image), a stdlib ``sys.settrace``
  tracer measures the gated files alone while their test modules run
  in-process -- no third-party dependency, same per-gate floors.

Executable statements come from the AST (docstrings and ``__future__``
imports excluded -- neither emits a trace event); a statement counts as
covered when any line in its span fired. Exit code 1 on a floor miss,
with a per-file table either way.

Usage: ``python scripts/coverage_gate.py`` (or ``make coverage``).
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

#: Repo-wide baseline, enforced only on the pytest-cov path (the
#: stdlib tracer only instruments the gated files). Recorded from the
#: suite at the time the gate landed; raise it as coverage grows, never
#: lower it.
REPO_FLOOR = 80.0


@dataclass(frozen=True)
class Gate:
    """One gated file set with its own statement-coverage floor."""

    name: str
    files: Tuple[Path, ...]
    floor: float
    #: Test modules that exercise the files (the stdlib path runs the
    #: union of these; the pytest-cov path runs the whole suite).
    tests: Tuple[str, ...]


GATES: Tuple[Gate, ...] = (
    Gate(
        name="repro.graph (package)",
        files=tuple(sorted((SRC_ROOT / "repro" / "graph").glob("*.py"))),
        floor=90.0,
        tests=(
            "tests/test_graph_model.py",
            "tests/test_graph_parity.py",
            "tests/test_graph_properties.py",
            "tests/test_country_toplists.py",
        ),
    ),
    Gate(
        name="scale-out (spill + lru)",
        files=(
            SRC_ROOT / "repro" / "crawler" / "spill.py",
            SRC_ROOT / "repro" / "web" / "lru.py",
        ),
        floor=90.0,
        tests=(
            "tests/test_scale.py",
            "tests/test_cache.py",
            "tests/test_worldgen.py",
        ),
    ),
)


def executable_statements(path: Path) -> List[Tuple[int, int]]:
    """``(lineno, end_lineno)`` spans of the file's traceable statements."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstrings: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                docstrings.add(id(body[0]))
    spans = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if id(node) in docstrings:
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        spans.append((node.lineno, node.end_lineno or node.lineno))
    return sorted(spans)


def install_tracer(files: Set[str]) -> Dict[str, Set[int]]:
    """Trace line events for *files* only; returns the live hit map."""
    hits: Dict[str, Set[int]] = {path: set() for path in sorted(files)}
    resolved: Dict[str, str] = {}

    def global_trace(frame, event, arg):
        filename = frame.f_code.co_filename
        target = resolved.get(filename)
        if target is None:
            absolute = os.path.abspath(filename)
            target = resolved[filename] = (
                absolute if absolute in hits else ""
            )
        if not target:
            return None
        lines = hits[target]

        def local_trace(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local_trace

        return local_trace

    sys.settrace(global_trace)
    return hits


def measure_with_stdlib_tracer() -> Dict[str, Tuple[int, int]]:
    """Per-file ``(covered, total)`` statement counts for all gates."""
    import pytest

    files = {str(path) for gate in GATES for path in gate.files}
    tests: List[str] = []
    for gate in GATES:
        for test in gate.tests:
            if test not in tests:
                tests.append(test)
    # The tracer must be live before pytest imports the packages during
    # collection, or module-level statements would never fire.
    for name in sorted(sys.modules):
        if name == "repro" or name.startswith("repro."):
            del sys.modules[name]
    hits = install_tracer(files)
    try:
        rc = pytest.main(["-q", "-p", "no:cacheprovider", *tests])
    finally:
        sys.settrace(None)
    if rc != 0:
        print(f"coverage gate: gated test run failed (pytest exit {rc})")
        raise SystemExit(1)

    results: Dict[str, Tuple[int, int]] = {}
    for path in sorted(files):
        spans = executable_statements(Path(path))
        fired = hits[path]
        covered = sum(
            1
            for start, end in spans
            if any(line in fired for line in range(start, end + 1))
        )
        results[os.path.relpath(path, REPO_ROOT)] = (covered, len(spans))
    return results


def measure_with_pytest_cov() -> Dict[str, Tuple[int, int]]:
    """Whole-suite run under pytest-cov; also enforces the repo floor."""
    import subprocess

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT)
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--cov=repro",
            "--cov-report=json:coverage.json",
            f"--cov-fail-under={REPO_FLOOR}",
        ],
        cwd=REPO_ROOT,
        env=env,
    )
    if completed.returncode != 0:
        print(
            f"coverage gate: suite failed or repo-wide coverage dropped "
            f"below {REPO_FLOOR:.0f}%"
        )
        raise SystemExit(1)
    import json

    report = json.loads((REPO_ROOT / "coverage.json").read_text())
    gated = {
        str(path) for gate in GATES for path in gate.files
    }
    results: Dict[str, Tuple[int, int]] = {}
    for filename, data in sorted(report["files"].items()):
        absolute = os.path.abspath(os.path.join(REPO_ROOT, filename))
        if absolute not in gated:
            continue
        summary = data["summary"]
        results[filename] = (
            summary["covered_lines"],
            summary["num_statements"],
        )
    return results


def main() -> int:
    try:
        import pytest_cov  # noqa: F401

        results = measure_with_pytest_cov()
        mode = "pytest-cov (repo floor enforced)"
    except ImportError:
        results = measure_with_stdlib_tracer()
        mode = "stdlib tracer (gated files only)"

    print(f"\ncoverage gate [{mode}]")
    failed = False
    for gate in GATES:
        covered_total = 0
        stmt_total = 0
        for path in gate.files:
            filename = os.path.relpath(path, REPO_ROOT)
            covered, total = results.get(filename, (0, 0))
            covered_total += covered
            stmt_total += total
            pct = 100.0 if total == 0 else 100.0 * covered / total
            print(f"  {filename:<44} {covered:>4}/{total:<4} {pct:6.1f}%")
        gate_pct = (
            100.0 if stmt_total == 0 else 100.0 * covered_total / stmt_total
        )
        print(
            f"  {gate.name:<44} {covered_total:>4}/{stmt_total:<4} "
            f"{gate_pct:6.1f}%  (floor {gate.floor:.0f}%)"
        )
        if gate_pct < gate.floor:
            failed = True
    if failed:
        print("coverage gate: FAIL")
        return 1
    print("coverage gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
