#!/usr/bin/env bash
# Tier-1 verification: the full test suite plus a short smoke run of the
# sharded crawl executor. Usage: scripts/verify.sh  (or: make verify)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== executor smoke =="
python scripts/executor_smoke.py
