#!/usr/bin/env bash
# Tier-1 verification: determinism lint, the full test suite, and a
# short smoke run of the sharded crawl executor.
# Usage: scripts/verify.sh  (or: make verify)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro.lint (determinism & contract linter) =="
python -m repro.lint src scripts

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== chaos invariants (fault injection) =="
python -m pytest -x -q -m chaos

echo "== executor smoke =="
python scripts/executor_smoke.py

echo "== cache identity (cold vs warm byte-equality) =="
python scripts/cache_smoke.py

echo "== streaming equivalence (batch vs follow byte-equality) =="
python scripts/streaming_smoke.py

echo "== coverage gate (repro.graph >= 90%) =="
python scripts/coverage_gate.py
