"""Streaming-equivalence smoke test: follow == batch, byte for byte.

Runs the same study window three ways and asserts the tentpole
guarantee of :mod:`repro.stream`:

* a **batch** crawl + analysis over days 0..N;
* a **cold follow** run ingesting the same window day by day;
* a **resumed follow** run restored from a mid-window checkpoint.

All three must produce byte-identical exports (persisted capture store,
adoption series, vantage table, marketshare curve). The checkpointed
store must also serve a *batch* run over the ingested prefix (zero
crawls), because checkpoints are written under the exact batch
``social-crawl`` fingerprint.

Run by ``scripts/verify.sh`` (or ``make smoke-streaming``).
"""

import datetime as dt
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.marketshare import observed_marketshare
from repro.core.pipeline import Study, StudyConfig
from repro.core.vantage import VantageTable
from repro.crawler.columnar import VANTAGE_STRS
from repro.crawler.storage import save_store

START = dt.date(2020, 3, 1)
MID = dt.date(2020, 3, 21)
END = dt.date(2020, 4, 1)


def _config(cache_dir=None) -> StudyConfig:
    return StudyConfig(
        seed=7,
        n_domains=2_500,
        toplist_size=200,
        events_per_day=120,
        study_start=START,
        study_end=END,
        cache_dir=cache_dir,
    )


def _engine_exports(engine, out_dir: Path, label: str) -> bytes:
    store_path = out_dir / f"store-{label}.jsonl"
    save_store(engine.store, store_path)
    payloads = [
        engine.adoption_series().to_payload(),
        engine.vantage_table().to_payload(),
        engine.marketshare_curve().to_payload(),
    ]
    return store_path.read_bytes() + json.dumps(
        payloads, sort_keys=True
    ).encode("utf-8")


def _batch_exports(study: Study, out_dir: Path, ranks, sizes) -> bytes:
    store = study.run_social_crawl(START, END)
    store_path = out_dir / "store-batch.jsonl"
    save_store(store, store_path)
    series = study.adoption_series(store)
    table = VantageTable.from_stream_rows(
        (VANTAGE_STRS[vid], domain, cmp_key)
        for domain, _ordinal, cmp_key, vid in store.rows_since(0)
    )
    curve = observed_marketshare(
        series, ranks, END - dt.timedelta(days=1), sizes
    )
    payloads = [series.to_payload(), table.to_payload(), curve.to_payload()]
    return store_path.read_bytes() + json.dumps(
        payloads, sort_keys=True
    ).encode("utf-8")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        out_dir = Path(tmp)
        cache_dir = str(out_dir / "cache")

        # Smoke-run durations for the log lines; never part of results.
        t0 = time.perf_counter()  # repro-lint: disable=DET002
        cold = Study(_config()).streaming_engine().run_until(END)
        cold_exports = _engine_exports(cold, out_dir, "cold")
        t1 = time.perf_counter()  # repro-lint: disable=DET002
        print(f"  cold follow: {cold.rows_ingested} rows over "
              f"{cold.days_ingested} days, {t1 - t0:.2f}s")

        batch_exports = _batch_exports(
            Study(_config()), out_dir, cold._ranks, cold._sizes
        )
        if cold_exports != batch_exports:
            print("FAIL: cold follow exports differ from batch")
            return 1

        # Mid-window checkpoint, then resume in a fresh engine.
        first = Study(_config(cache_dir)).streaming_engine()
        first.run_until(MID)
        if first.checkpoint() is None:
            print("FAIL: checkpoint was not written")
            return 1
        resumed = Study(_config(cache_dir)).streaming_engine(resume=True)
        if resumed.watermark != MID - dt.timedelta(days=1):
            print(f"FAIL: resumed at watermark {resumed.watermark}")
            return 1
        # The restored counter covers the prefix (stats match an
        # uninterrupted run); actual crawl work here is the delta.
        restored_crawls = resumed.platform.stats.crawls
        resumed.run_until(END)
        crawl_delta = resumed.platform.stats.crawls - restored_crawls
        print(f"  resumed follow: restored at {MID - dt.timedelta(days=1)}, "
              f"crawled {crawl_delta} pages this run "
              f"(cold: {cold.platform.stats.crawls})")
        if _engine_exports(resumed, out_dir, "resumed") != batch_exports:
            print("FAIL: resumed follow exports differ from batch")
            return 1
        if not (restored_crawls > 0
                and crawl_delta < cold.platform.stats.crawls):
            print("FAIL: resumed run did not skip the checkpointed prefix")
            return 1

        # The checkpointed store doubles as the batch cache entry for
        # the ingested prefix: a batch run over [START, MID) must skip
        # its crawl phase entirely.
        batch_study = Study(_config(cache_dir))
        batch_study.run_social_crawl(START, MID)
        if batch_study.last_crawl_stats.crawls != 0:
            print(
                f"FAIL: batch prefix run crawled "
                f"{batch_study.last_crawl_stats.crawls} pages instead of "
                "hitting the streaming checkpoint"
            )
            return 1

    print("streaming smoke: follow == batch byte-identically, cold and "
          "resumed; checkpoint serves batch runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
