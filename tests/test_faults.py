"""Unit tests for ``repro.faults`` -- schedules, retry policies, clocks,
tallies -- and their wiring into the probe and browser layers.

The end-to-end chaos invariants (fault-free bit-identity, transient
recovery, conservative degradation) live in
``tests/test_chaos_invariants.py``; this module locks the component
contracts they build on.
"""

import datetime as dt

import pytest

from repro.crawler.browser import crawl_url
from repro.crawler.capture import EU_CLOUD, EU_UNIVERSITY
from repro.faults import (
    FAULT_KINDS,
    CrashSpec,
    Fault,
    FaultSchedule,
    FaultSpec,
    FaultTally,
    RetryPolicy,
    SystemClock,
    VirtualClock,
    WorkerCrash,
    run_with_retries,
)
from repro.faults.inject import EXHAUSTED_REASON
from repro.net.probe import resolve_seed_url, resolve_toplist
from repro.net.url import URL

NOON = dt.datetime(2020, 5, 15, 12)


# ---------------------------------------------------------------------------
# FaultSchedule
# ---------------------------------------------------------------------------


class TestFaultSchedule:
    def test_no_specs_never_faults(self):
        schedule = FaultSchedule(seed=1)
        for attempt in range(5):
            assert schedule.fault_for("x.com", "EU-cloud", attempt) is None

    def test_rate_one_afflicts_everyone(self):
        schedule = FaultSchedule(
            seed=1, specs=(FaultSpec("dns-error", rate=1.0),)
        )
        assert schedule.fault_for("x.com", "EU-cloud", 0) == Fault("dns-error")

    def test_transient_fault_clears_after_attempts(self):
        schedule = FaultSchedule(
            seed=1, specs=(FaultSpec("dns-error", rate=1.0, attempts=2),)
        )
        assert schedule.fault_for("x.com", "EU-cloud", 0) is not None
        assert schedule.fault_for("x.com", "EU-cloud", 1) is not None
        assert schedule.fault_for("x.com", "EU-cloud", 2) is None

    def test_persistent_fault_never_clears(self):
        schedule = FaultSchedule(
            seed=1,
            specs=(FaultSpec("antibot-challenge", rate=1.0, persistent=True),),
        )
        assert schedule.fault_for("x.com", "EU-cloud", 99) is not None
        assert not schedule.transient_only

    def test_decisions_are_deterministic_and_key_dependent(self):
        schedule = FaultSchedule(
            seed=3, specs=(FaultSpec("connection-reset", rate=0.5),)
        )
        domains = [f"site{i}.com" for i in range(200)]
        first = [schedule.fault_for(d, "EU-cloud", 0) for d in domains]
        second = [schedule.fault_for(d, "EU-cloud", 0) for d in domains]
        assert first == second
        afflicted = sum(1 for f in first if f is not None)
        # rate=0.5 over 200 keys: both outcomes must actually occur.
        assert 0 < afflicted < 200

    def test_vantage_is_part_of_the_key(self):
        schedule = FaultSchedule(
            seed=3, specs=(FaultSpec("connection-reset", rate=0.5),)
        )
        domains = [f"site{i}.com" for i in range(200)]
        eu = [schedule.fault_for(d, "EU-cloud", 0) for d in domains]
        us = [schedule.fault_for(d, "US-cloud", 0) for d in domains]
        assert eu != us

    def test_first_afflicted_spec_wins(self):
        schedule = FaultSchedule(
            seed=1,
            specs=(
                FaultSpec("slow-response", rate=1.0),
                FaultSpec("dns-error", rate=1.0),
            ),
        )
        assert schedule.fault_for("x.com", "EU-cloud", 0) == Fault(
            "slow-response"
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic-ray", rate=0.5)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("dns-error", rate=1.5)
        with pytest.raises(ValueError):
            CrashSpec(rate=-0.1)

    def test_crash_point_is_deterministic_and_in_range(self):
        schedule = FaultSchedule(seed=5, crash=CrashSpec(rate=1.0))
        point = schedule.crash_point(0, 10, 0)
        assert point is not None and 0 <= point < 10
        assert schedule.crash_point(0, 10, 0) == point

    def test_crash_point_respects_attempt_budget(self):
        schedule = FaultSchedule(
            seed=5, crash=CrashSpec(rate=1.0, attempts=2)
        )
        assert schedule.crash_point(0, 10, 0) is not None
        assert schedule.crash_point(0, 10, 1) is not None
        assert schedule.crash_point(0, 10, 2) is None

    def test_no_crash_spec_or_empty_shard(self):
        assert FaultSchedule(seed=5).crash_point(0, 10, 0) is None
        schedule = FaultSchedule(seed=5, crash=CrashSpec(rate=1.0))
        assert schedule.crash_point(0, 0, 0) is None

    def test_crash_rate_spares_some_shards(self):
        schedule = FaultSchedule(seed=5, crash=CrashSpec(rate=0.5))
        points = [schedule.crash_point(s, 10, 0) for s in range(100)]
        crashed = sum(1 for p in points if p is not None)
        assert 0 < crashed < 100


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------


class TestClocks:
    def test_virtual_clock_accumulates(self):
        clock = VirtualClock()
        clock.sleep(0.5)
        clock.sleep(1.25)
        assert clock.slept == pytest.approx(1.75)
        assert clock.sleeps == [0.5, 1.25]

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1)

    def test_system_clock_skips_nonpositive(self):
        # Must return immediately -- a real wait would hang the suite.
        SystemClock().sleep(0)
        SystemClock().sleep(-5)


# ---------------------------------------------------------------------------
# RetryPolicy (the hypothesis contract tests live in test_properties.py)
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_schedule_without_jitter_is_the_capped_curve(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=1.0, multiplier=2.0, max_delay=6.0,
            jitter=0.0,
        )
        assert policy.schedule("k") == (1.0, 2.0, 4.0, 6.0, 6.0)

    def test_delay_matches_schedule(self):
        policy = RetryPolicy(max_retries=3, seed=9)
        schedule = policy.schedule("x.com")
        assert [policy.delay("x.com", n) for n in (1, 2, 3)] == list(schedule)

    def test_delay_rejects_out_of_range_attempts(self):
        policy = RetryPolicy(max_retries=2)
        with pytest.raises(ValueError):
            policy.delay("k", 0)
        with pytest.raises(ValueError):
            policy.delay("k", 3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_zero_retries_means_empty_schedule(self):
        assert RetryPolicy(max_retries=0).schedule("k") == ()


# ---------------------------------------------------------------------------
# FaultTally / run_with_retries
# ---------------------------------------------------------------------------


class TestRunWithRetries:
    def _flaky(self, fail_first):
        """A result factory faulted on its first *fail_first* attempts."""

        class Result:
            def __init__(self, attempt):
                self.attempt = attempt
                self.fault = "dns-error" if attempt < fail_first else None

        return lambda attempt: Result(attempt)

    def test_fault_free_result_returns_immediately(self):
        tally = FaultTally()
        clock = VirtualClock()
        result = run_with_retries(
            self._flaky(0), key="k", policy=RetryPolicy(), clock=clock,
            tally=tally,
        )
        assert result.attempt == 0
        assert clock.slept == 0.0
        assert tally.injected == 0

    def test_recovery_within_budget(self):
        policy = RetryPolicy(max_retries=3, jitter=0.0, base_delay=1.0)
        tally = FaultTally()
        clock = VirtualClock()
        result = run_with_retries(
            self._flaky(2), key="k", policy=policy, clock=clock, tally=tally
        )
        assert result.attempt == 2 and result.fault is None
        assert tally.by_kind == {"dns-error": 2}
        assert (tally.retries, tally.recovered, tally.exhausted) == (2, 1, 0)
        # Backoff consumed exactly the schedule prefix, virtually.
        assert clock.sleeps == list(policy.schedule("k"))[:2]

    def test_exhaustion_returns_last_faulted_result(self):
        policy = RetryPolicy(max_retries=2, jitter=0.0)
        tally = FaultTally()
        result = run_with_retries(
            self._flaky(10), key="k", policy=policy, tally=tally
        )
        assert result.fault == "dns-error"
        assert (tally.retries, tally.recovered, tally.exhausted) == (2, 0, 1)
        assert tally.injected == 3  # initial try + 2 retries

    def test_no_policy_means_no_retries(self):
        tally = FaultTally()
        result = run_with_retries(self._flaky(1), key="k", tally=tally)
        assert result.fault == "dns-error"
        assert (tally.retries, tally.exhausted) == (0, 1)

    def test_tally_merge_and_skip_reasons(self):
        a = FaultTally(by_kind={"dns-error": 2}, retries=3, recovered=1,
                       exhausted=1)
        b = FaultTally(by_kind={"dns-error": 1, "slow-response": 4},
                       retries=2, recovered=2, exhausted=0)
        a.merge(b)
        assert a.by_kind == {"dns-error": 3, "slow-response": 4}
        assert (a.retries, a.recovered, a.exhausted) == (5, 3, 1)
        assert a.skip_reasons() == {EXHAUSTED_REASON: 1}
        assert FaultTally().skip_reasons() == {}
        assert "7 faults injected" in a.summary()

    def test_worker_crash_pickles(self):
        import pickle

        crash = WorkerCrash(3, done=17, checkpoint={"partial": True})
        clone = pickle.loads(pickle.dumps(crash))
        assert (clone.shard_id, clone.done) == (3, 17)
        assert clone.checkpoint == {"partial": True}
        assert "shard 3" in str(clone)


# ---------------------------------------------------------------------------
# Browser-layer injection
# ---------------------------------------------------------------------------


class TestBrowserFaults:
    def _crawl(self, world, kind, attempt=0):
        site = world.site(5)
        schedule = FaultSchedule(
            seed=1, specs=(FaultSpec(kind, rate=1.0, persistent=True),)
        )
        return crawl_url(
            world,
            URL.parse(f"https://www.{site.domain}/"),
            when=NOON,
            vantage=EU_UNIVERSITY,
            faults=schedule,
            attempt=attempt,
        )

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_faulted_captures_are_conservative(self, world, kind):
        capture = self._crawl(world, kind)
        assert capture.fault == kind
        assert not capture.succeeded
        assert capture.cookies == ()
        assert capture.storage_records == ()
        # No CMP fingerprint can survive a faulted capture.
        assert capture.transactions == ()

    def test_fault_kinds_shape_the_capture(self, world):
        assert self._crawl(world, "slow-response").timed_out
        antibot = self._crawl(world, "antibot-challenge")
        assert antibot.status == 403 and antibot.blocked_by_antibot
        assert self._crawl(world, "dns-error").status is None

    def test_cleared_fault_renders_identically_to_fault_free(self, world):
        site = world.site(5)
        url = URL.parse(f"https://www.{site.domain}/")
        schedule = FaultSchedule(
            seed=1, specs=(FaultSpec("dns-error", rate=1.0, attempts=1),)
        )
        organic = crawl_url(world, url, when=NOON, vantage=EU_UNIVERSITY)
        retried = crawl_url(
            world, url, when=NOON, vantage=EU_UNIVERSITY,
            faults=schedule, attempt=1,
        )
        assert retried == organic

    def test_no_schedule_leaves_capture_unmarked(self, world):
        site = world.site(5)
        capture = crawl_url(
            world,
            URL.parse(f"https://www.{site.domain}/"),
            when=NOON,
            vantage=EU_CLOUD,
        )
        assert capture.fault is None


# ---------------------------------------------------------------------------
# Probe-layer injection
# ---------------------------------------------------------------------------


class _SteadyOracle:
    """TLS always works; records how often it was asked."""

    def __init__(self):
        self.calls = []

    def tls_ok(self, host, attempt):
        self.calls.append((host, attempt))
        return True

    def tcp80_ok(self, host, attempt):
        return False


class TestProbeFaults:
    def test_faulted_tries_never_reach_the_oracle(self):
        schedule = FaultSchedule(
            seed=1, specs=(FaultSpec("dns-error", rate=1.0, attempts=1),)
        )
        oracle = _SteadyOracle()
        result = resolve_seed_url("x.com", oracle, attempts=3,
                                  faults=schedule)
        # Try 1 burnt by the fault; the oracle sees attempt 1 on try 2.
        assert result.succeeded_on_attempt == 2
        assert result.method == "https-www"
        assert oracle.calls == [("www.x.com", 1)]

    def test_fault_free_prefix_means_identical_resolution(self, world):
        domains = [world.site(r).domain for r in range(1, 40)]
        baseline = resolve_toplist(domains, world, attempts=3)
        transient = FaultSchedule(
            seed=11,
            specs=(FaultSpec("connection-reset", rate=0.4, attempts=1),),
        )
        faulted = resolve_toplist(domains, world, attempts=3,
                                  faults=transient)
        for before, after in zip(baseline, faulted):
            if after.reachable:
                # Recovered probes resolve to the identical seed URL.
                assert after.seed_url == before.seed_url
                assert after.method == before.method
            else:
                # Conservatively lost, never changed.
                assert after.method == "unreachable"

    def test_permanent_probe_faults_lose_domains(self):
        schedule = FaultSchedule(
            seed=1,
            specs=(FaultSpec("dns-error", rate=1.0, persistent=True),),
        )
        oracle = _SteadyOracle()
        result = resolve_seed_url("x.com", oracle, attempts=3,
                                  faults=schedule)
        assert not result.reachable
        assert oracle.calls == []
