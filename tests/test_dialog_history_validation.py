"""Dialog-template histories and fingerprint validation."""

import datetime as dt

import pytest

from repro.cmps.dialog_history import (
    CHANGE_KINDS,
    TEMPLATE_CHANGES,
    change_kind_histogram,
    changes_between,
    dialog_template_history,
    snapshot_staleness,
    template_on,
)
from repro.detect.validation import validate_fingerprints

MAY = dt.date(2020, 5, 15)


class TestDialogHistory:
    def test_quantcast_changed_38_times(self):
        # Figure 1's caption.
        history = dialog_template_history("quantcast")
        assert len(history) == 38 + 1  # v1 plus 38 changes
        assert changes_between(
            history, history[0].released, history[-1].released
        ) == 38

    def test_versions_ordered(self):
        history = dialog_template_history("onetrust")
        dates = [v.released for v in history]
        assert dates == sorted(dates)
        assert [v.version for v in history] == list(
            range(1, len(history) + 1)
        )

    def test_deterministic(self):
        assert dialog_template_history("trustarc") == dialog_template_history(
            "trustarc"
        )

    def test_unknown_cmp(self):
        with pytest.raises(KeyError):
            dialog_template_history("consentotron")

    def test_template_on(self):
        history = dialog_template_history("quantcast")
        v = template_on(history, MAY)
        assert v is not None
        assert v.released <= MAY
        # Before the window: nothing in effect.
        assert template_on(history, dt.date(2017, 1, 1)) is None

    def test_snapshot_staleness_positive(self):
        # Any point-in-time study of Quantcast dialogs goes stale within
        # months: the template changes ~15 times a year.
        history = dialog_template_history("quantcast")
        stale = snapshot_staleness(history, dt.date(2019, 1, 15))
        assert stale >= 3

    def test_change_kind_histogram(self):
        history = dialog_template_history("onetrust")
        hist = change_kind_histogram(history)
        assert set(hist) == set(CHANGE_KINDS)
        assert sum(hist.values()) >= len(history) - 1

    def test_relative_change_rates(self):
        assert TEMPLATE_CHANGES["onetrust"] > TEMPLATE_CHANGES["crownpeak"]
        lengths = {
            key: len(dialog_template_history(key)) for key in TEMPLATE_CHANGES
        }
        assert lengths["quantcast"] == 39


class TestFingerprintValidation:
    @pytest.fixture(scope="class")
    def report(self, study):
        result = study.run_toplist_crawl(
            MAY, configs=("eu-univ-extended",), size=1_500
        )
        captures = result.captures_for("eu-univ-extended").values()
        return validate_fingerprints(captures)

    def test_no_missed_or_wrong_fingerprints(self, report):
        # The Table A.2 fingerprints survive the validation loop: every
        # rendered dialog has a matching network pattern and no capture
        # shows conflicting CMPs.
        assert report.is_clean

    def test_agreements_exist(self, report):
        assert report.agreements > 0

    def test_network_only_cases_exist(self, report):
        # Geo-gated and API-only CMPs: detected over the network while
        # no dialog renders -- the expected asymmetry.
        assert report.network_only > 0

    def test_all_captures_checked(self, report, study):
        assert report.captures_checked > 300
