"""Unit tests for the typed property graph (`repro.graph.model`)."""

import json

import pytest

from repro.graph.model import (
    EDGE_TYPES,
    NODE_TYPES,
    ConsentGraph,
    GraphError,
    merge_graphs,
)


def small_graph():
    g = ConsentGraph()
    a = g.add_node("domain", "a.com", color="blue")
    b = g.add_node("domain", "b.com")
    c = g.add_node("cmp", "quantcast")
    g.add_edge("OBSERVES", a, c)
    g.add_edge("OBSERVES", b, c)
    g.add_edge("CAPTURED", a, c, seq=0, day=1)
    g.add_edge("CAPTURED", a, c, seq=1, day=1)
    return g


def test_node_interning_returns_same_id():
    g = ConsentGraph()
    first = g.add_node("domain", "a.com")
    again = g.add_node("domain", "a.com")
    assert first == again
    assert g.n_nodes == 1
    # Same key under a different type is a different node.
    assert g.add_node("cmp", "a.com") != first
    assert g.n_nodes == 2


def test_property_merge_and_conflict():
    g = ConsentGraph()
    node = g.add_node("domain", "a.com", color="blue")
    g.add_node("domain", "a.com", color="blue", size=3)  # merge is fine
    assert g.props(node) == {"color": "blue", "size": 3}
    with pytest.raises(GraphError, match="conflict"):
        g.add_node("domain", "a.com", color="red")
    # props() hands out a copy, never the internal dict.
    g.props(node)["color"] = "green"
    assert g.props(node)["color"] == "blue"


def test_edge_identity_includes_props():
    g = small_graph()
    a = g.node_id("domain", "a.com")
    c = g.node_id("cmp", "quantcast")
    n = g.n_edges
    # Re-adding an identical edge is a no-op...
    assert g.add_edge("OBSERVES", a, c) == g.add_edge("OBSERVES", a, c)
    assert g.n_edges == n
    # ...but different props make a distinct edge.
    g.add_edge("CAPTURED", a, c, seq=2, day=1)
    assert g.n_edges == n + 1


def test_add_edge_rejects_unknown_node():
    g = ConsentGraph()
    node = g.add_node("domain", "a.com")
    with pytest.raises(GraphError, match="unknown node"):
        g.add_edge("OBSERVES", node, node + 1)


def test_lookup_surface():
    g = small_graph()
    a = g.node_id("domain", "a.com")
    assert g.node(a) == ("domain", "a.com")
    assert g.node_key(a) == "a.com"
    assert g.node_id("domain", "missing") is None
    assert [g.node_key(n) for n in g.nodes_of_type("domain")] == [
        "a.com",
        "b.com",
    ]
    assert g.nodes_of_type("vendor") == []
    etype, src, dst, props = g.edge(0)
    assert etype == "OBSERVES" and props == {}


def test_adjacency_and_degree():
    g = small_graph()
    a = g.node_id("domain", "a.com")
    c = g.node_id("cmp", "quantcast")
    assert g.degree(c, "OBSERVES") == 2
    assert g.degree(a, "OBSERVES", direction="out") == 1
    assert [n for n, _ in g.adjacency(a, "OBSERVES")] == [c]
    incoming = g.adjacency(c, "OBSERVES", direction="in")
    assert [g.node_key(n) for n, _ in incoming] == ["a.com", "b.com"]
    assert g.adjacency(a, "ADOPTED") == []
    with pytest.raises(GraphError, match="direction"):
        g.adjacency(a, "OBSERVES", direction="sideways")


def test_edges_of_type_sorted_canonically():
    g = small_graph()
    rows = g.edges_of_type("CAPTURED")
    assert [p["seq"] for _, _, p in rows] == [0, 1]
    assert g.edges_of_type("MEMBER_OF") == []


def test_digest_insertion_order_independent():
    g1 = ConsentGraph()
    g2 = ConsentGraph()
    for ntype, key in [("domain", "a.com"), ("cmp", "onetrust")]:
        g1.add_node(ntype, key)
    for ntype, key in [("cmp", "onetrust"), ("domain", "a.com")]:
        g2.add_node(ntype, key)
    g1.add_edge("OBSERVES", 0, 1)
    g2.add_edge("OBSERVES", 1, 0)  # same endpoints, other intern order
    assert g1.digest() == g2.digest()
    # Any new fact changes the digest (the cache-address contract).
    g2.add_node("domain", "b.com")
    assert g1.digest() != g2.digest()


def test_payload_round_trip():
    g = small_graph()
    payload = g.to_payload()
    # Canonical: serializing the payload twice gives identical bytes.
    assert json.dumps(payload) == json.dumps(
        ConsentGraph.from_payload(payload).to_payload()
    )
    rebuilt = ConsentGraph.from_payload(payload)
    assert rebuilt.digest() == g.digest()
    assert rebuilt.stats() == g.stats()


def test_stats_counts_per_type():
    g = small_graph()
    assert g.stats() == {
        "nodes:cmp": 1,
        "nodes:domain": 2,
        "edges:CAPTURED": 2,
        "edges:OBSERVES": 2,
    }


def test_merge_graphs_unions_facts():
    g1 = ConsentGraph()
    a = g1.add_node("domain", "a.com", color="blue")
    g1.add_edge("OBSERVES", a, g1.add_node("cmp", "quantcast"))
    g2 = ConsentGraph()
    b = g2.add_node("domain", "b.com")
    g2.add_edge("OBSERVES", b, g2.add_node("cmp", "quantcast"))
    merged = merge_graphs([g1, g2])
    assert merged.stats() == {
        "nodes:cmp": 1,
        "nodes:domain": 2,
        "edges:OBSERVES": 2,
    }
    # Self-merge is the identity (dedup on full identity).
    assert merge_graphs([g1, g1]).digest() == g1.digest()
    assert merge_graphs([]).digest() == ConsentGraph().digest()


def test_declared_schema_stays_sorted():
    # Docs/tests rely on the declared type tuples being duplicate-free.
    assert len(set(NODE_TYPES)) == len(NODE_TYPES)
    assert len(set(EDGE_TYPES)) == len(EDGE_TYPES)
