"""v1 -> v2 consent-string migration."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcf.consentstring import ConsentString
from repro.tcf.v2.migrate import (
    V1_TO_V2_PURPOSES,
    upgrade_consent_string,
    upgrade_purposes,
)
from repro.tcf.v2.tcstring import decode_tc_string

CREATED = dt.datetime(2019, 11, 2, 8, 0, tzinfo=dt.timezone.utc)


def v1(**kwargs):
    defaults = dict(
        cmp_id=10,
        vendor_list_version=170,
        max_vendor_id=60,
        allowed_purposes=(1, 3),
        vendor_consents=(1, 2, 3, 50),
        created=CREATED,
        consent_language="DE",
    )
    defaults.update(kwargs)
    return ConsentString.build(**defaults)


class TestPurposeMapping:
    def test_mapping_covers_all_v1_purposes(self):
        assert set(V1_TO_V2_PURPOSES) == {1, 2, 3, 4, 5}

    def test_mapping_targets_valid_v2_ids(self):
        for targets in V1_TO_V2_PURPOSES.values():
            assert all(1 <= t <= 10 for t in targets)

    def test_storage_purpose_maps_to_itself(self):
        assert upgrade_purposes(frozenset({1})) == frozenset({1})

    def test_union_of_mappings(self):
        assert upgrade_purposes(frozenset({1, 3})) == frozenset({1, 2, 7})

    def test_unknown_purpose_rejected(self):
        with pytest.raises(ValueError):
            upgrade_purposes(frozenset({9}))

    def test_full_v1_consent_covers_v2_selection(self):
        mapped = upgrade_purposes(frozenset({1, 2, 3, 4, 5}))
        # Everything except "develop and improve products" (10), which
        # has no v1 ancestor.
        assert mapped == frozenset(range(1, 10))


class TestUpgrade:
    def test_metadata_preserved(self):
        tc = upgrade_consent_string(v1())
        assert tc.cmp_id == 10
        assert tc.created == CREATED
        assert tc.consent_language == "DE"
        assert tc.vendor_list_version == 170

    def test_vendors_carried_over(self):
        tc = upgrade_consent_string(v1())
        assert tc.vendor_consents == frozenset({1, 2, 3, 50})
        assert tc.vendor_li == frozenset()

    def test_conservative_defaults(self):
        tc = upgrade_consent_string(v1())
        assert tc.purposes_li_transparency == frozenset()
        assert tc.special_feature_opt_ins == frozenset()

    def test_upgraded_string_encodes(self):
        tc = upgrade_consent_string(v1())
        assert decode_tc_string(tc.encode()) == tc

    def test_opt_out_stays_opt_out(self):
        tc = upgrade_consent_string(
            v1(allowed_purposes=(), vendor_consents=())
        )
        assert tc.purposes_consent == frozenset()
        assert tc.vendor_consents == frozenset()

    @settings(max_examples=60, deadline=None)
    @given(
        purposes=st.sets(st.integers(min_value=1, max_value=5)),
        data=st.data(),
    )
    def test_permission_never_widens_per_vendor(self, purposes, data):
        vendors = data.draw(
            st.sets(st.integers(min_value=1, max_value=100), max_size=20)
        )
        old = v1(
            allowed_purposes=purposes,
            vendor_consents=vendors,
            max_vendor_id=120,
        )
        new = upgrade_consent_string(old)
        # A vendor not consented in v1 is not consented in v2.
        for vendor_id in range(1, 101):
            if vendor_id not in old.vendor_consents:
                assert all(
                    not new.permits(vendor_id, p) for p in range(1, 11)
                )
