"""Streaming engine (repro.stream): batch equivalence, checkpoints,
query server.

The load-bearing contract: an engine caught up to day N is
byte-identical to a batch run over days 0..N -- same store digest, same
analysis payloads -- cold and when resumed from a mid-window checkpoint.
"""

import datetime as dt
import json
import urllib.error
import urllib.request
from collections import Counter

import pytest

from repro.cache import CacheError
from repro.core.marketshare import observed_marketshare
from repro.core.pipeline import Study, StudyConfig
from repro.core.vantage import VantageTable
from repro.crawler.columnar import VANTAGE_STRS
from repro.crawler.storage import store_digest
from repro.stream import serve_engine

START = dt.date(2020, 3, 1)
MID = dt.date(2020, 3, 8)
END = dt.date(2020, 3, 15)

CFG = StudyConfig(
    seed=11,
    n_domains=1_500,
    toplist_size=300,
    events_per_day=100,
    study_start=START,
    study_end=END,
)


def _payload_bytes(payload) -> str:
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def stream_study() -> Study:
    return Study(CFG)


@pytest.fixture(scope="module")
def batch_store(stream_study):
    return stream_study.run_social_crawl(START, END)


@pytest.fixture(scope="module")
def engine(stream_study):
    # Separate Study so the engine's persistent platform can't interact
    # with the fixture study's crawl bookkeeping.
    return Study(CFG).streaming_engine().run_until(END)


class TestBatchEquivalence:
    def test_store_digest_matches_batch(self, engine, batch_store):
        assert store_digest(engine.store) == store_digest(batch_store)

    def test_adoption_matches_batch(self, engine, stream_study, batch_store):
        batch = stream_study.adoption_series(batch_store)
        assert _payload_bytes(
            engine.adoption_series().to_payload()
        ) == _payload_bytes(batch.to_payload())

    def test_counts_on_matches_batch(self, engine, stream_study, batch_store):
        batch = stream_study.adoption_series(batch_store)
        for date in (START, MID, END - dt.timedelta(days=1)):
            assert engine.counts_on(date) == batch.counts_on(date)

    def test_vantage_matches_batch(self, engine, batch_store):
        batch = VantageTable.from_stream_rows(
            (VANTAGE_STRS[vid], domain, cmp_key)
            for domain, _ordinal, cmp_key, vid in batch_store.rows_since(0)
        )
        assert _payload_bytes(
            engine.vantage_table().to_payload()
        ) == _payload_bytes(batch.to_payload())

    def test_marketshare_matches_batch(
        self, engine, stream_study, batch_store
    ):
        batch_series = stream_study.adoption_series(batch_store)
        batch_curve = observed_marketshare(
            batch_series,
            engine._ranks,
            END - dt.timedelta(days=1),
            engine._sizes,
        )
        assert _payload_bytes(
            engine.marketshare_curve().to_payload()
        ) == _payload_bytes(batch_curve.to_payload())

    def test_mid_window_cut_matches_batch(self, stream_study):
        """Equivalence holds at an interior watermark, not just the end."""
        prefix_engine = Study(CFG).streaming_engine().run_until(MID)
        prefix_store = stream_study.run_social_crawl(START, MID)
        assert store_digest(prefix_engine.store) == store_digest(prefix_store)
        batch = stream_study.adoption_series(prefix_store)
        assert _payload_bytes(
            prefix_engine.adoption_series().to_payload()
        ) == _payload_bytes(batch.to_payload())

    def test_live_curve_tail_matches_live_counts(self, engine):
        """At the full toplist size the live curve counts every live
        domain -- the O(1) accumulator agrees with the expiring state."""
        curve = engine.live_marketshare_curve()
        live = engine.live_counts()
        for cmp_key, series in curve.counts.items():
            assert series[-1] == live.get(cmp_key, 0)

    def test_stats_payload_shape(self, engine):
        stats = engine.stats_payload()
        assert stats["watermark"] == (END - dt.timedelta(days=1)).isoformat()
        assert stats["days_ingested"] == (END - START).days
        assert stats["rows_ingested"] == engine.store.n_rows > 0
        assert 0.0 <= stats["skip_rate"] <= 1.0


class TestCheckpointResume:
    @pytest.fixture()
    def cached_cfg(self, tmp_path):
        import dataclasses

        return dataclasses.replace(CFG, cache_dir=str(tmp_path))

    def test_resume_is_byte_identical(
        self, cached_cfg, batch_store, stream_study
    ):
        first = Study(cached_cfg).streaming_engine()
        first.run_until(MID)
        assert first.checkpoint() is not None

        resumed = Study(cached_cfg).streaming_engine(resume=True)
        assert resumed.watermark == MID - dt.timedelta(days=1)
        assert resumed.rows_ingested == first.rows_ingested
        resumed.run_until(END)

        assert store_digest(resumed.store) == store_digest(batch_store)
        batch = stream_study.adoption_series(batch_store)
        assert _payload_bytes(
            resumed.adoption_series().to_payload()
        ) == _payload_bytes(batch.to_payload())
        assert resumed.live_counts() == Counter(
            Study(CFG).streaming_engine().run_until(END).live_counts()
        )

    def test_batch_run_hits_streaming_checkpoint(self, cached_cfg):
        """The checkpointed store lands under the batch fingerprint, so
        a batch run over the ingested prefix skips the crawl."""
        engine = Study(cached_cfg).streaming_engine()
        engine.run_until(MID)
        engine.checkpoint()

        batch_study = Study(cached_cfg)
        store = batch_study.run_social_crawl(START, MID)
        assert batch_study.last_crawl_stats.crawls == 0
        assert store_digest(store) == store_digest(engine.store)

    def test_checkpoint_cadence(self, cached_cfg):
        import dataclasses

        cfg = dataclasses.replace(cached_cfg, checkpoint_every_days=3)
        engine = Study(cfg).streaming_engine()
        engine.run_until(START + dt.timedelta(days=7))
        # Checkpoints at days 3 and 6; latest pointer names day 6's
        # watermark.
        resumed = Study(cfg).streaming_engine(resume=True)
        assert resumed.watermark == START + dt.timedelta(days=5)

    def test_checkpoint_without_cache_is_noop(self):
        engine = Study(CFG).streaming_engine()
        engine.advance_day()
        assert engine.checkpoint() is None

    def test_resume_without_cache_raises(self):
        with pytest.raises(CacheError):
            Study(CFG).streaming_engine(resume=True)

    def test_resume_without_checkpoint_raises(self, cached_cfg):
        with pytest.raises(CacheError):
            Study(cached_cfg).streaming_engine(resume=True)

    def test_resume_unknown_watermark_raises(self, cached_cfg):
        engine = Study(cached_cfg).streaming_engine()
        engine.run_until(MID)
        engine.checkpoint()
        with pytest.raises(CacheError):
            Study(cached_cfg).streaming_engine(
                resume=True, watermark=dt.date(2019, 1, 1)
            )


class TestQueryServer:
    @pytest.fixture(scope="class")
    def server(self, engine):
        server = serve_engine(engine)
        yield server
        server.close()

    def _get(self, server, path):
        url = f"http://127.0.0.1:{server.port}{path}"
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())

    def test_healthz(self, server, engine):
        status, payload = self._get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["watermark"] == engine.watermark.isoformat()

    def test_adoption_default_date_is_watermark(self, server, engine):
        status, payload = self._get(server, "/adoption")
        assert status == 200
        assert payload["date"] == engine.watermark.isoformat()
        assert payload["counts"] == dict(engine.counts_on(engine.watermark))
        assert payload["total"] == sum(payload["counts"].values())

    def test_adoption_explicit_date(self, server, engine):
        status, payload = self._get(server, f"/adoption?date={MID}")
        assert status == 200
        assert payload["counts"] == dict(engine.counts_on(MID))

    def test_adoption_live(self, server, engine):
        status, payload = self._get(server, "/adoption/live")
        assert status == 200
        assert payload["counts"] == dict(engine.live_counts())

    def test_marketshare_endpoints(self, server, engine):
        status, payload = self._get(server, "/marketshare")
        assert status == 200
        assert [row["size"] for row in payload["rows"]] == engine._sizes
        status, live = self._get(server, "/marketshare/live")
        assert status == 200
        assert live["date"] == engine.watermark.isoformat()

    def test_vantage(self, server, engine):
        status, payload = self._get(server, "/vantage")
        assert status == 200
        table = engine.vantage_table()
        assert [row["config"] for row in payload["rows"]] == [
            name for name, _c, _t, _cov in table.rows()
        ]

    def test_stats_includes_query_latencies(self, server):
        self._get(server, "/healthz")
        status, payload = self._get(server, "/stats")
        assert status == 200
        assert payload["queries"]["/healthz"]["count"] >= 1
        assert payload["queries"]["/healthz"]["p99_ms"] >= 0.0

    def test_unknown_endpoint_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nope")
        assert excinfo.value.code == 404

    def test_bad_date_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/adoption?date=not-a-date")
        assert excinfo.value.code == 400


class TestCli:
    def test_study_without_follow_is_an_error(self, capsys):
        from repro.cli import main

        rc = main(["--domains", "600", "--toplist", "200", "study"])
        assert rc == 2

    def test_study_follow_runs(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "--domains", "600",
                "--toplist", "200",
                "study",
                "--follow",
                "--days", "3",
                "--events-per-day", "40",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "caught up: 3 days" in out
