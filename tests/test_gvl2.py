"""GVL v2 model and the v1 -> v2 list migration."""

import datetime as dt

import pytest

from repro.tcf.gvl import GlobalVendorList, Vendor
from repro.tcf.gvlgen import GvlGenConfig, generate_gvl_history
from repro.tcf.v2.gvl2 import (
    GlobalVendorListV2,
    VendorV2,
    migrate_list,
    migrate_vendor,
)


def vendor_v2(vid=1, **kwargs):
    defaults = dict(
        id=vid,
        name=f"Vendor {vid}",
        policy_url="https://v.example/privacy",
        purpose_ids=frozenset({1, 2}),
        leg_int_purpose_ids=frozenset({7}),
    )
    defaults.update(kwargs)
    return VendorV2(**defaults)


def vendor_v1(vid=1, consent=(1, 3), li=(5,), features=(3,)):
    return Vendor(
        id=vid,
        name=f"Vendor {vid}",
        policy_url="https://v.example/privacy",
        purpose_ids=frozenset(consent),
        leg_int_purpose_ids=frozenset(li),
        feature_ids=frozenset(features),
    )


class TestVendorV2:
    def test_basis_queries(self):
        v = vendor_v2()
        assert v.basis_for(1) == "consent"
        assert v.basis_for(7) == "legitimate-interest"
        assert v.basis_for(10) is None

    def test_overlapping_bases_rejected(self):
        with pytest.raises(ValueError):
            vendor_v2(purpose_ids=frozenset({1}),
                      leg_int_purpose_ids=frozenset({1}))

    def test_flexible_must_be_declared(self):
        with pytest.raises(ValueError, match="flexible"):
            vendor_v2(flexible_purpose_ids=frozenset({9}))

    def test_flexible_ok_when_declared(self):
        v = vendor_v2(flexible_purpose_ids=frozenset({2}))
        assert 2 in v.flexible_purpose_ids

    def test_unknown_special_purpose_rejected(self):
        with pytest.raises(ValueError):
            vendor_v2(special_purpose_ids=frozenset({3}))

    def test_unknown_v2_purpose_rejected(self):
        with pytest.raises(ValueError):
            vendor_v2(purpose_ids=frozenset({11}))


class TestListV2:
    def list_v2(self):
        return GlobalVendorListV2(
            version=3,
            last_updated=dt.date(2020, 9, 1),
            vendors=(vendor_v2(1), vendor_v2(2, purpose_ids=frozenset({3}))),
        )

    def test_lookup(self):
        lst = self.list_v2()
        assert 2 in lst
        assert lst.get(2).purpose_ids == frozenset({3})
        assert lst.max_vendor_id == 2

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            GlobalVendorListV2(
                version=1, last_updated=dt.date(2020, 9, 1),
                vendors=(vendor_v2(1), vendor_v2(1)),
            )

    def test_histogram(self):
        hist = self.list_v2().purpose_histogram("any")
        assert hist[1] == 1 and hist[3] == 1 and hist[7] == 2

    def test_json_roundtrip(self):
        lst = self.list_v2()
        assert GlobalVendorListV2.from_json(lst.to_json()) == lst


class TestMigration:
    def test_purposes_mapped(self):
        v2 = migrate_vendor(vendor_v1(consent=(1,), li=(3,)))
        assert v2.purpose_ids == frozenset({1})
        assert v2.leg_int_purpose_ids == frozenset({2, 7})

    def test_consent_wins_on_overlap(self):
        # v1 purpose 2 (consent) and 4 (LI) both map into v2 5/6; the
        # overlap stays on the consent basis.
        v2 = migrate_vendor(vendor_v1(consent=(2,), li=(4,)))
        assert {5, 6} <= v2.purpose_ids
        assert not v2.leg_int_purpose_ids & v2.purpose_ids

    def test_geolocation_becomes_special_feature(self):
        v2 = migrate_vendor(vendor_v1(features=(3,)))
        assert v2.special_feature_ids == frozenset({1})
        assert v2.feature_ids == frozenset()

    def test_plain_features_carry_over(self):
        v2 = migrate_vendor(vendor_v1(features=(1, 2)))
        assert v2.feature_ids == frozenset({1, 2})

    def test_everyone_gains_special_purpose_one(self):
        assert 1 in migrate_vendor(vendor_v1()).special_purpose_ids

    def test_whole_list_migration(self):
        history = generate_gvl_history(
            GvlGenConfig(seed=4, initial_vendors=40,
                         last_date=dt.date(2018, 7, 1))
        )
        v1_list = history[-1]
        v2_list = migrate_list(
            v1_list, version=1, migrated_on=dt.date(2020, 8, 15)
        )
        assert len(v2_list) == len(v1_list)
        assert v2_list.vendor_ids == v1_list.vendor_ids
        assert v2_list.last_updated == dt.date(2020, 8, 15)
        # Purpose 1 stays the most declared after migration.
        hist = v2_list.purpose_histogram("any")
        assert hist[1] == max(hist.values())
        # The migrated list round-trips through JSON.
        assert GlobalVendorListV2.from_json(v2_list.to_json()) == v2_list

    def test_li_preserved_in_aggregate(self):
        history = generate_gvl_history(
            GvlGenConfig(seed=5, initial_vendors=60,
                         last_date=dt.date(2018, 7, 1))
        )
        v1_list = history[-1]
        v2_list = migrate_list(v1_list)
        v1_li_vendors = sum(
            1 for v in v1_list.vendors if v.leg_int_purpose_ids
        )
        v2_li_vendors = sum(
            1 for v in v2_list.vendors if v.leg_int_purpose_ids
        )
        # Migration cannot invent LI claims, only keep or collapse them.
        assert v2_li_vendors <= v1_li_vendors
        assert v2_li_vendors > 0
