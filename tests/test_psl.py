"""Public Suffix List matching."""

import pytest

from repro.net.psl import PublicSuffixList, default_psl


@pytest.fixture(scope="module")
def psl():
    return default_psl()


class TestPublicSuffix:
    def test_simple_tld(self, psl):
        assert psl.public_suffix("example.com") == "com"

    def test_two_level_suffix(self, psl):
        assert psl.public_suffix("example.co.uk") == "co.uk"

    def test_private_suffix(self, psl):
        assert psl.public_suffix("foo.github.io") == "github.io"

    def test_unknown_tld_falls_back_to_last_label(self, psl):
        assert psl.public_suffix("example.zzunknown") == "zzunknown"

    def test_wildcard_rule(self, psl):
        # *.ck makes any.ck a public suffix.
        assert psl.public_suffix("example.any.ck") == "any.ck"

    def test_exception_rule(self, psl):
        # !www.ck overrides *.ck.
        assert psl.public_suffix("www.ck") == "ck"

    def test_case_insensitive(self, psl):
        assert psl.public_suffix("EXAMPLE.CO.UK") == "co.uk"

    def test_longest_rule_wins(self, psl):
        # com.de is listed as well as de.
        assert psl.public_suffix("example.com.de") == "com.de"


class TestRegistrableDomain:
    def test_basic(self, psl):
        assert psl.registrable_domain("www.example.com") == "example.com"

    def test_deep_subdomain(self, psl):
        assert (
            psl.registrable_domain("a.b.c.example.co.uk") == "example.co.uk"
        )

    def test_private_suffix_paper_example(self, psl):
        # The paper's example: foo.example.github.io -> example.github.io.
        assert (
            psl.registrable_domain("foo.example.github.io")
            == "example.github.io"
        )

    def test_bare_suffix_is_none(self, psl):
        assert psl.registrable_domain("co.uk") is None
        assert psl.registrable_domain("com") is None
        assert psl.registrable_domain("github.io") is None

    def test_exception_rule_domain(self, psl):
        # www.ck is itself registrable (the exception rule).
        assert psl.registrable_domain("www.ck") == "www.ck"
        assert psl.registrable_domain("sub.www.ck") == "www.ck"

    def test_wildcard_domain(self, psl):
        assert psl.registrable_domain("foo.any.ck") == "foo.any.ck"


class TestSplit:
    def test_with_prefix(self, psl):
        assert psl.split("www.shop.example.com") == ("www.shop", "example.com")

    def test_without_prefix(self, psl):
        assert psl.split("example.com") == ("", "example.com")

    def test_bare_suffix(self, psl):
        assert psl.split("co.uk") == ("", "co.uk")

    def test_is_public_suffix(self, psl):
        assert psl.is_public_suffix("co.uk")
        assert not psl.is_public_suffix("example.co.uk")


class TestConstruction:
    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError):
            PublicSuffixList(["// only comments"])

    def test_comments_and_blanks_ignored(self):
        psl = PublicSuffixList(["// c", "", "com"])
        assert len(psl) == 1

    def test_custom_rules(self):
        psl = PublicSuffixList(["com", "!special.weird", "*.weird"])
        assert psl.registrable_domain("a.b.weird") == "a.b.weird"
        assert psl.registrable_domain("special.weird") == "special.weird"

    def test_malformed_hostname_raises(self, psl):
        with pytest.raises(ValueError):
            psl.public_suffix("")
        with pytest.raises(ValueError):
            psl.public_suffix("a..b")

    def test_default_psl_is_cached(self):
        assert default_psl() is default_psl()


class TestPickling:
    """Memoized PSLs must survive the process executor backend.

    Regression: the per-instance ``lru_cache`` wrappers close over bound
    methods and are unpicklable, so any payload holding a warmed PSL
    failed to serialize to process-pool workers.
    """

    def test_warm_psl_roundtrips_through_pickle(self):
        import pickle

        psl = PublicSuffixList(["com", "co.uk", "*.ck", "!www.ck"])
        # Warm the caches first -- the unpicklable state is the point.
        assert psl.registrable_domain("shop.example.co.uk") == "example.co.uk"
        assert psl.public_suffix("a.b.ck") == "b.ck"
        clone = pickle.loads(pickle.dumps(psl))
        assert clone.registrable_domain("shop.example.co.uk") == "example.co.uk"
        assert clone.public_suffix("a.b.ck") == "b.ck"
        assert clone.registrable_domain("www.ck") == "www.ck"
        # Caches are rebuilt cold, not shared with the original.
        assert clone.cache_info()["suffix"].hits == 0

    def test_warm_default_psl_roundtrips(self):
        import pickle

        psl = default_psl()
        psl.registrable_domain("foo.example.github.io")
        clone = pickle.loads(pickle.dumps(psl))
        assert (
            clone.registrable_domain("foo.example.github.io")
            == "example.github.io"
        )

    def test_cache_info_reports_hits(self):
        psl = PublicSuffixList(["com"])
        psl.registrable_domain("a.example.com")
        psl.registrable_domain("a.example.com")
        info = psl.cache_info()
        assert info["registrable"].hits == 1
        assert info["registrable"].currsize == 1

    def test_process_backend_ships_memoized_psl(self):
        """A warmed PSL crosses the process boundary inside a payload."""
        import pickle
        from concurrent.futures import ProcessPoolExecutor

        psl = default_psl()
        psl.registrable_domain("shop.example.co.uk")  # warm
        payload = pickle.dumps({"psl": psl, "host": "shop.example.co.uk"})
        with ProcessPoolExecutor(max_workers=1) as pool:
            result = pool.submit(_registrable_in_worker, payload).result()
        assert result == "example.co.uk"


def _registrable_in_worker(payload: bytes) -> str:
    import pickle

    data = pickle.loads(payload)
    return data["psl"].registrable_domain(data["host"])
