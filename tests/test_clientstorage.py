"""Client-side storage records and storage-based CMP inference."""

import datetime as dt
import random

import pytest

from repro.crawler.browser import DEFAULT_PROFILE, EXTENDED_PROFILE, crawl_url
from repro.crawler.capture import EU_UNIVERSITY
from repro.crawler.clientstorage import (
    StorageRecord,
    cmp_from_storage,
    synthesize_storage_records,
)
from repro.net.url import URL

MAY = dt.date(2020, 5, 15)
NOON = dt.datetime(2020, 5, 15, 12)


class TestRecords:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            StorageRecord("flashcookie", "https://a.com", "k", "v")

    def test_synthesis_without_cmp(self):
        records = synthesize_storage_records("a.com", None, random.Random(0))
        assert all(r.origin == "https://a.com" for r in records)
        assert cmp_from_storage(records) is None

    @pytest.mark.parametrize(
        "cmp_key",
        ["onetrust", "quantcast", "trustarc", "cookiebot", "liveramp",
         "crownpeak"],
    )
    def test_synthesis_with_cmp(self, cmp_key):
        records = synthesize_storage_records(
            "a.com", cmp_key, random.Random(1)
        )
        assert cmp_from_storage(records) == cmp_key

    def test_cmp_record_timing_follows_script(self):
        records = synthesize_storage_records(
            "a.com", "onetrust", random.Random(2), cmp_script_at=17.0
        )
        cmp_records = [r for r in records if r.key == "OptanonConsent"]
        assert cmp_records[0].written_at > 17.0


class TestCaptureIntegration:
    def find_cmp_site(self, world, slow):
        for rank in range(1, 5000):
            site = world.site(rank)
            if (
                site.cmp_on(MAY) is not None
                and site.slow_loader == slow
                and not site.behind_antibot_cdn
                and site.redirects_to is None
                and "US" in site.embed_regions
            ):
                return site
        raise AssertionError("no matching site")

    def test_storage_captured(self, world):
        site = self.find_cmp_site(world, slow=False)
        cap = crawl_url(
            world,
            URL.parse(f"https://www.{site.domain}/"),
            when=NOON,
            vantage=EU_UNIVERSITY,
        )
        assert cap.storage_records
        assert cmp_from_storage(cap.storage_records) == site.cmp_on(MAY)

    def test_slow_cmp_leaves_no_storage_in_default_crawl(self, world):
        site = self.find_cmp_site(world, slow=True)
        url = URL.parse(f"https://www.{site.domain}/")
        fast = crawl_url(
            world, url, when=NOON, vantage=EU_UNIVERSITY,
            profile=DEFAULT_PROFILE,
        )
        slow = crawl_url(
            world, url, when=NOON, vantage=EU_UNIVERSITY,
            profile=EXTENDED_PROFILE,
        )
        assert cmp_from_storage(fast.storage_records) is None
        assert cmp_from_storage(slow.storage_records) == site.cmp_on(MAY)

    def test_storage_agrees_with_network_detection(self, world):
        from repro.detect.engine import detect_cmp

        checked = 0
        for rank in range(1, 1500):
            site = world.site(rank)
            if site.cmp_on(MAY) is None or site.redirects_to is not None:
                continue
            if site.behind_antibot_cdn or site.slow_loader:
                continue
            if "US" not in site.embed_regions:
                continue
            cap = crawl_url(
                world,
                URL.parse(f"https://www.{site.domain}/"),
                when=NOON,
                vantage=EU_UNIVERSITY,
            )
            network = detect_cmp(cap).cmp_key
            storage = cmp_from_storage(cap.storage_records)
            if network is not None:
                assert storage == network
                checked += 1
        assert checked > 5
