"""The Study facade and the event-timeline analysis."""

import datetime as dt

import pytest

from repro.core.pipeline import Study, StudyConfig
from repro.core.timeline import (
    event_impacts,
    law_effective_events_spike,
)
from repro.datasets import PRIVACY_LAW_EVENTS, Event


class TestStudyFacade:
    def test_toplist_domains_cached(self, study):
        assert study.toplist_domains is study.toplist_domains
        assert len(study.toplist_domains) == study.config.toplist_size

    def test_monthly_dates_span_study(self, study):
        dates = study.monthly_dates()
        assert dates[0] >= study.config.study_start
        assert dates[-1] <= study.config.study_end
        assert len(dates) >= 30

    def test_adoption_series_from_store(self, study, social_store):
        series = study.adoption_series(social_store, restrict_to_toplist=False)
        assert len(series.timelines) == social_store.unique_domains

    def test_restriction_to_toplist(self, study, social_store):
        series = study.adoption_series(social_store, restrict_to_toplist=True)
        assert set(series.timelines) <= set(study.toplist_domains)


class TestEventTimeline:
    @pytest.fixture(scope="class")
    def series(self):
        # A longer run over the GDPR and CCPA windows; small world.
        study = Study(
            StudyConfig(
                seed=11, n_domains=3_000, toplist_size=500,
                events_per_day=120,
            )
        )
        store = study.run_social_crawl(
            dt.date(2018, 3, 15), dt.date(2020, 3, 1)
        )
        return study.adoption_series(store, restrict_to_toplist=False)

    def test_impacts_computed_for_all_events(self, series):
        impacts = event_impacts(series)
        in_window = [
            e for e in PRIVACY_LAW_EVENTS if e.date < dt.date(2020, 2, 1)
        ]
        assert len(impacts) == len(PRIVACY_LAW_EVENTS)
        for impact in impacts:
            if impact.event in in_window:
                assert impact.after >= 0 and impact.before >= 0

    def test_gdpr_spike_detected(self, series):
        impacts = event_impacts(series)
        gdpr = next(
            i for i in impacts if "GDPR comes into effect" in i.event.label
        )
        assert gdpr.growth > 0
        assert gdpr.excess_growth > 0

    def test_law_spike_helper_raises_without_events(self, series):
        with pytest.raises(ValueError):
            law_effective_events_spike([])

    def test_enforcement_events_lower_than_laws(self, series):
        impacts = {i.event.label: i for i in event_impacts(series)}
        gdpr = impacts["GDPR comes into effect"]
        fine = impacts["CNIL fines Google 50M EUR"]
        assert gdpr.growth > fine.growth
