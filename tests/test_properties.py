"""Cross-cutting property-based tests on core invariants."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adoption import DomainTimeline
from repro.crawler.capture import EU_CLOUD, Observation
from repro.faults import RetryPolicy
from repro.net.psl import default_psl
from repro.net.url import URL

# ----------------------------------------------------------------------
# URL invariants
# ----------------------------------------------------------------------
_label = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", fullmatch=True)
_host = st.builds(lambda a, b: f"{a}.{b}", _label, _label)
_path_seg = st.from_regex(r"[a-zA-Z0-9_-]{1,12}", fullmatch=True)


class TestUrlProperties:
    @settings(max_examples=150, deadline=None)
    @given(
        scheme=st.sampled_from(["http", "https"]),
        host=_host,
        segs=st.lists(_path_seg, max_size=4),
        query=st.one_of(st.just(""), st.from_regex(r"[a-z]=[0-9]{1,4}", fullmatch=True)),
        port=st.one_of(st.none(), st.integers(min_value=1, max_value=65535)),
    )
    def test_parse_str_roundtrip(self, scheme, host, segs, query, port):
        path = "/" + "/".join(segs)
        netloc = host if port is None else f"{host}:{port}"
        raw = f"{scheme}://{netloc}{path}"
        if query:
            raw += f"?{query}"
        url = URL.parse(raw)
        # Parsing the canonical form is a fixed point.
        assert URL.parse(str(url)) == url

    @settings(max_examples=100, deadline=None)
    @given(host=_host, ref=_path_seg)
    def test_resolution_stays_absolute(self, host, ref):
        base = URL.parse(f"https://{host}/a/b")
        resolved = base.resolve(ref)
        assert resolved.path.startswith("/")
        assert resolved.host == host


# ----------------------------------------------------------------------
# PSL invariants
# ----------------------------------------------------------------------
class TestPslProperties:
    @settings(max_examples=150, deadline=None)
    @given(
        labels=st.lists(_label, min_size=1, max_size=4),
        suffix=st.sampled_from(
            ["com", "co.uk", "github.io", "de", "org", "com.br"]
        ),
    )
    def test_registrable_domain_structure(self, labels, suffix):
        psl = default_psl()
        host = ".".join(labels + [suffix])
        reg = psl.registrable_domain(host)
        assert reg is not None
        # The registrable domain is a suffix of the host...
        assert host == reg or host.endswith("." + reg)
        # ...and exactly one label longer than the public suffix.
        public = psl.public_suffix(host)
        assert reg.endswith("." + public) or reg == public
        assert reg.count(".") == public.count(".") + 1
        # split() reassembles the host.
        prefix, reg2 = psl.split(host)
        assert reg2 == reg
        reassembled = f"{prefix}.{reg2}" if prefix else reg2
        assert reassembled == host


# ----------------------------------------------------------------------
# Interpolation invariants
# ----------------------------------------------------------------------
_cmp_state = st.sampled_from(
    [None, "quantcast", "onetrust", "cookiebot"]
)


def _observations(draw_states, start=dt.date(2019, 1, 1)):
    out = []
    day = start
    for state in draw_states:
        out.append(
            Observation(
                domain="x.com", date=day, cmp_key=state, vantage=EU_CLOUD
            )
        )
        day += dt.timedelta(days=7)
    return out


class TestTimelineProperties:
    @settings(max_examples=200, deadline=None)
    @given(states=st.lists(_cmp_state, min_size=1, max_size=12))
    def test_states_only_from_observations(self, states):
        observations = _observations(states)
        tl = DomainTimeline.from_observations("x.com", observations)
        observed = {s for s in states if s is not None}
        probe = dt.date(2018, 12, 1)
        for _ in range(150):
            state = tl.state_on(probe)
            assert state is None or state in observed
            probe += dt.timedelta(days=3)

    @settings(max_examples=200, deadline=None)
    @given(states=st.lists(_cmp_state, min_size=1, max_size=12))
    def test_intervals_ordered_nonoverlapping(self, states):
        tl = DomainTimeline.from_observations(
            "x.com", _observations(states)
        )
        for a, b in zip(tl.intervals, tl.intervals[1:]):
            assert a.start < a.end
            assert a.end <= b.start or (
                a.end >= b.start and a.cmp_key != b.cmp_key and a.end <= b.end
            )

    @settings(max_examples=100, deadline=None)
    @given(states=st.lists(_cmp_state, min_size=1, max_size=8))
    def test_fadeout_bound(self, states):
        observations = _observations(states)
        tl = DomainTimeline.from_observations("x.com", observations)
        last = observations[-1].date
        assert tl.state_on(last + dt.timedelta(days=31)) is None

    @settings(max_examples=100, deadline=None)
    @given(states=st.lists(_cmp_state, min_size=1, max_size=8))
    def test_observation_days_keep_their_state(self, states):
        observations = _observations(states)
        tl = DomainTimeline.from_observations("x.com", observations)
        for obs in observations:
            assert tl.state_on(obs.date) == obs.cmp_key

    @settings(max_examples=100, deadline=None)
    @given(states=st.lists(_cmp_state, min_size=1, max_size=8))
    def test_no_interpolation_is_conservative(self, states):
        """Disabling interpolation can only shrink CMP presence."""
        observations = _observations(states)
        full = DomainTimeline.from_observations("x.com", observations)
        bare = DomainTimeline.from_observations(
            "x.com", observations, interpolate=False, fade_out_days=0
        )
        probe = observations[0].date
        end = observations[-1].date + dt.timedelta(days=40)
        while probe <= end:
            if bare.state_on(probe) is not None:
                assert full.state_on(probe) == bare.state_on(probe)
            probe += dt.timedelta(days=1)


# ----------------------------------------------------------------------
# Waterfall invariants
# ----------------------------------------------------------------------
class TestWaterfallProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_domains=st.integers(min_value=1, max_value=25),
    )
    def test_totals_consistent(self, seed, n_domains):
        import random

        from repro.cmps.trustarc import trustarc_optout_waterfall

        w = trustarc_optout_waterfall(
            random.Random(seed), n_partner_domains=n_domains
        )
        assert w.total_duration == pytest.approx(
            sum(s.duration for s in w.steps)
        )
        assert len(w.partner_domains) == n_domains
        assert w.uncompressed_bytes >= w.wire_bytes
        assert all(s.duration >= 0 for s in w.steps)


# ----------------------------------------------------------------------
# RetryPolicy invariants (repro.faults)
# ----------------------------------------------------------------------
_policies = st.builds(
    lambda retries, base, mult, cap_extra, jitter, seed: RetryPolicy(
        max_retries=retries,
        base_delay=base,
        multiplier=mult,
        max_delay=base + cap_extra,
        jitter=jitter,
        seed=seed,
    ),
    retries=st.integers(min_value=0, max_value=12),
    base=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    mult=st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
    cap_extra=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
    seed=st.integers(min_value=0, max_value=10_000),
)

_retry_keys = st.from_regex(r"[a-z0-9.:/@-]{1,30}", fullmatch=True)


class TestRetryPolicyProperties:
    @settings(max_examples=200, deadline=None)
    @given(policy=_policies, key=_retry_keys)
    def test_same_seed_and_key_identical_schedule(self, policy, key):
        assert policy.schedule(key) == policy.schedule(key)

    @settings(max_examples=200, deadline=None)
    @given(policy=_policies, key=_retry_keys)
    def test_delays_monotone_up_to_cap(self, policy, key):
        schedule = policy.schedule(key)
        assert all(d >= 0 for d in schedule)
        assert all(d <= policy.max_delay for d in schedule)
        assert all(a <= b for a, b in zip(schedule, schedule[1:]))

    @settings(max_examples=200, deadline=None)
    @given(policy=_policies, key=_retry_keys)
    def test_attempt_count_bounded_by_max_retries(self, policy, key):
        assert len(policy.schedule(key)) == policy.max_retries
        # delay() agrees with the schedule at every position.
        for attempt, expected in enumerate(policy.schedule(key), start=1):
            assert policy.delay(key, attempt) == expected

    @settings(max_examples=100, deadline=None)
    @given(policy=_policies, key=_retry_keys)
    def test_jitter_stays_within_band(self, policy, key):
        unjittered = RetryPolicy(
            max_retries=policy.max_retries,
            base_delay=policy.base_delay,
            multiplier=policy.multiplier,
            max_delay=policy.max_delay,
            jitter=0.0,
            seed=policy.seed,
        ).schedule(key)
        low, high = 1.0 - policy.jitter, 1.0 + policy.jitter
        previous = 0.0
        for base, actual in zip(unjittered, policy.schedule(key)):
            # Each delay is a jitter-scaled base, then clamped into
            # [previous, max_delay] to keep the backoff shape.
            lo = max(previous, min(base * low, policy.max_delay))
            hi = min(max(base * high, previous), policy.max_delay)
            assert lo <= actual <= hi + 1e-9
            previous = actual
