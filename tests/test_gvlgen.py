"""Synthetic GVL history generator: shape and invariants."""

import datetime as dt

from repro.core.gvl_analysis import GvlAnalysis
from repro.tcf.gvlgen import GvlGenConfig, generate_gvl_history
from repro.tcf.purposes import PURPOSE_IDS


class TestStructure:
    def test_versions_are_sequential(self, gvl_history):
        versions = [g.version for g in gvl_history]
        assert versions == list(range(1, len(gvl_history) + 1))

    def test_dates_are_increasing(self, gvl_history):
        dates = [g.last_updated for g in gvl_history]
        assert dates == sorted(dates)
        assert len(set(dates)) == len(dates)

    def test_deterministic(self):
        cfg = GvlGenConfig(seed=3, initial_vendors=30,
                           last_date=dt.date(2018, 8, 1))
        a = generate_gvl_history(cfg)
        b = generate_gvl_history(cfg)
        assert [v.to_json() for v in a] == [v.to_json() for v in b]

    def test_seed_changes_history(self):
        kwargs = dict(initial_vendors=30, last_date=dt.date(2018, 8, 1))
        a = generate_gvl_history(GvlGenConfig(seed=1, **kwargs))
        b = generate_gvl_history(GvlGenConfig(seed=2, **kwargs))
        assert a[-1].vendor_ids != b[-1].vendor_ids

    def test_vendor_ids_never_reused(self, gvl_history):
        # A vendor that left keeps its id forever (the real list's
        # behaviour); new vendors always get fresh ids.
        seen_max = 0
        for version in gvl_history:
            new_ids = [v for v in version.vendor_ids if v > seen_max]
            seen_max = max(seen_max, version.max_vendor_id)
            # No id below the previous max may appear for the first time
            # in this version unless it was present before.
        assert seen_max >= len(gvl_history[0])

    def test_json_roundtrip_of_generated(self, gvl_history):
        from repro.tcf.gvl import GlobalVendorList

        v = gvl_history[-1]
        assert GlobalVendorList.from_json(v.to_json()) == v


class TestDynamics:
    def test_gdpr_spike(self, gvl_history):
        analysis = GvlAnalysis(gvl_history)
        spike = analysis.growth_between(
            dt.date(2018, 5, 1), dt.date(2018, 8, 1)
        )
        steady = analysis.growth_between(
            dt.date(2019, 2, 1), dt.date(2019, 5, 1)
        )
        assert spike > 3 * max(1, steady)

    def test_list_grows_overall(self, gvl_history):
        assert len(gvl_history[-1]) > len(gvl_history[0])

    def test_purpose_one_most_popular(self, gvl_history):
        for version in (gvl_history[0], gvl_history[-1]):
            hist = version.purpose_histogram("any")
            assert hist[1] == max(hist.values())

    def test_every_vendor_declares_something(self, gvl_history):
        for v in gvl_history[-1].vendors:
            assert v.declared_purposes

    def test_weekly_cadence_after_2019(self):
        cfg = GvlGenConfig(
            seed=5,
            initial_vendors=20,
            first_date=dt.date(2019, 1, 2),
            last_date=dt.date(2019, 3, 1),
        )
        history = generate_gvl_history(cfg)
        gaps = {
            (b.last_updated - a.last_updated).days
            for a, b in zip(history, history[1:])
        }
        assert gaps == {7}

    def test_dense_cadence_in_2018(self, gvl_history):
        early = [g for g in gvl_history if g.last_updated.year == 2018]
        gaps = {
            (b.last_updated - a.last_updated).days
            for a, b in zip(early, early[1:])
        }
        assert gaps == {2}
