"""Interpolation, fade-out and the adoption series (Figure 6 machinery)."""

import datetime as dt

import pytest

from repro.core.adoption import (
    FADE_OUT_DAYS,
    AdoptionSeries,
    DomainTimeline,
    daily_share_consistency,
    month_starts,
)
from repro.crawler.capture import EU_CLOUD, Observation


def obs(day, cmp_key=None, domain="example.com"):
    return Observation(
        domain=domain,
        date=dt.date.fromisoformat(day),
        cmp_key=cmp_key,
        vantage=EU_CLOUD,
    )


def timeline(*observations):
    return DomainTimeline.from_observations("example.com", observations)


class TestInterpolation:
    def test_equal_boundaries_interpolated(self):
        # The paper's example: Quantcast a month ago and today -> assume
        # Quantcast throughout.
        tl = timeline(
            obs("2020-01-01", "quantcast"), obs("2020-02-01", "quantcast")
        )
        assert tl.state_on(dt.date(2020, 1, 15)) == "quantcast"

    def test_disagreeing_boundaries_not_interpolated(self):
        tl = timeline(
            obs("2020-01-01", "quantcast"), obs("2020-02-01", "onetrust")
        )
        assert tl.state_on(dt.date(2020, 1, 1)) == "quantcast"
        assert tl.state_on(dt.date(2020, 1, 15)) is None
        assert tl.state_on(dt.date(2020, 2, 1)) == "onetrust"

    def test_none_to_cmp_not_interpolated(self):
        tl = timeline(obs("2020-01-01"), obs("2020-02-01", "quantcast"))
        assert tl.state_on(dt.date(2020, 1, 15)) is None

    def test_none_boundaries_stay_none(self):
        tl = timeline(obs("2020-01-01"), obs("2020-02-01"))
        assert tl.state_on(dt.date(2020, 1, 15)) is None

    def test_before_first_observation_unknown(self):
        tl = timeline(obs("2020-01-01", "quantcast"))
        assert tl.state_on(dt.date(2019, 12, 31)) is None


class TestFadeOut:
    def test_state_extends_30_days(self):
        tl = timeline(obs("2020-02-01", "quantcast"))
        assert tl.state_on(dt.date(2020, 2, 20)) == "quantcast"
        assert tl.state_on(
            dt.date(2020, 2, 1) + dt.timedelta(days=FADE_OUT_DAYS)
        ) == "quantcast"

    def test_state_fades_after_30_days(self):
        # The paper's example: last measured February 1st -> no CMP
        # presence assumed as of March 1st... strictly, after 30 days.
        tl = timeline(obs("2020-02-01", "quantcast"))
        assert tl.state_on(dt.date(2020, 3, 5)) is None

    def test_fadeout_applies_after_last_of_many(self):
        tl = timeline(
            obs("2020-01-01", "quantcast"), obs("2020-02-01", "quantcast")
        )
        assert tl.state_on(dt.date(2020, 2, 25)) == "quantcast"
        assert tl.state_on(dt.date(2020, 4, 1)) is None

    def test_fadeout_boundary_inclusive_convention(self):
        # Pins the audited "+ 1" in DomainTimeline.from_observations:
        # interval ends are exclusive, so the extension interval covers
        # the observation day plus exactly FADE_OUT_DAYS extra days.
        # Day last+30 is the final classified day; day last+31 is the
        # first unknown one.
        last = dt.date(2020, 2, 1)
        tl = timeline(obs("2020-02-01", "quantcast"))
        day_30 = last + dt.timedelta(days=30)
        day_31 = last + dt.timedelta(days=31)
        assert FADE_OUT_DAYS == 30
        assert tl.state_on(day_30) == "quantcast"
        assert tl.state_on(day_31) is None
        (interval,) = tl.intervals
        assert interval.end - interval.start == dt.timedelta(
            days=FADE_OUT_DAYS + 1
        )

    def test_fadeout_boundary_for_no_cmp_state(self):
        # The convention applies to the "no CMP" state symmetrically:
        # intervals record None explicitly, and state_on returns None
        # both inside and past the horizon (absence vs. unknown both
        # count as absence, like the paper's counting).
        last = dt.date(2020, 2, 1)
        tl = timeline(obs("2020-02-01"))
        (interval,) = tl.intervals
        assert interval.cmp_key is None
        assert interval.end == last + dt.timedelta(days=FADE_OUT_DAYS + 1)

    def test_fadeout_zero_keeps_observation_day(self):
        # fade_out_days=0 (the ablation knob) must still classify the
        # observation day itself -- the "+ 1" is what keeps it alive.
        tl = DomainTimeline.from_observations(
            "example.com", [obs("2020-02-01", "quantcast")], fade_out_days=0
        )
        assert tl.state_on(dt.date(2020, 2, 1)) == "quantcast"
        assert tl.state_on(dt.date(2020, 2, 2)) is None


class TestDailyAggregation:
    def test_third_capture_heuristic(self):
        # 1 of 3 captures with the CMP on one day -> counts as using it.
        tl = timeline(
            obs("2020-01-01", "quantcast"),
            obs("2020-01-01"),
            obs("2020-01-01"),
        )
        assert tl.state_on(dt.date(2020, 1, 1)) == "quantcast"

    def test_below_threshold_is_no_cmp(self):
        tl = timeline(
            obs("2020-01-01", "quantcast"),
            obs("2020-01-01"),
            obs("2020-01-01"),
            obs("2020-01-01"),
        )
        assert tl.state_on(dt.date(2020, 1, 1)) is None

    def test_majority_cmp_wins_the_day(self):
        tl = timeline(
            obs("2020-01-01", "onetrust"),
            obs("2020-01-01", "onetrust"),
            obs("2020-01-01", "quantcast"),
        )
        assert tl.state_on(dt.date(2020, 1, 1)) == "onetrust"

    def test_empty_timeline(self):
        tl = timeline()
        assert tl.state_on(dt.date(2020, 1, 1)) is None
        assert tl.first_observed is None


class TestCmpStints:
    def test_single_stint(self):
        tl = timeline(
            obs("2020-01-01", "quantcast"), obs("2020-02-01", "quantcast")
        )
        stints = tl.cmp_stints
        assert len(stints) == 1
        assert stints[0][0] == "quantcast"

    def test_switch_produces_two_stints(self):
        tl = timeline(
            obs("2020-01-01", "cookiebot"),
            obs("2020-01-20", "cookiebot"),
            obs("2020-02-01", "onetrust"),
            obs("2020-03-01", "onetrust"),
        )
        assert [s[0] for s in tl.cmp_stints] == ["cookiebot", "onetrust"]


class TestAdoptionSeries:
    def make_series(self):
        by_domain = {
            "a.com": [
                obs("2020-01-01", "quantcast", "a.com"),
                obs("2020-03-01", "quantcast", "a.com"),
            ],
            "b.com": [
                obs("2020-02-01", "onetrust", "b.com"),
                obs("2020-03-01", "onetrust", "b.com"),
            ],
            "c.com": [obs("2020-01-01", None, "c.com")],
        }
        return AdoptionSeries.from_store(by_domain)

    def test_counts_on(self):
        series = self.make_series()
        counts = series.counts_on(dt.date(2020, 2, 15))
        assert counts == {"quantcast": 1, "onetrust": 1}

    def test_total_on(self):
        series = self.make_series()
        assert series.total_on(dt.date(2020, 1, 15)) == 1
        assert series.total_on(dt.date(2020, 6, 1)) == 0  # faded out

    def test_restriction(self):
        by_domain = {
            "a.com": [obs("2020-01-01", "quantcast", "a.com")],
            "b.com": [obs("2020-01-01", "onetrust", "b.com")],
        }
        series = AdoptionSeries.from_store(by_domain, restrict_to=["a.com"])
        assert set(series.timelines) == {"a.com"}

    def test_series_over_dates(self):
        series = self.make_series()
        points = series.series(
            [dt.date(2020, 1, 15), dt.date(2020, 2, 15)]
        )
        assert len(points) == 2
        assert points[0][1]["quantcast"] == 1


class TestConsistencyStat:
    def test_consistent_domains(self):
        by_domain = {
            "a.com": [
                obs("2020-01-01", "quantcast", "a.com"),
                obs("2020-01-01", "quantcast", "a.com"),
            ],
            "b.com": [obs("2020-01-01", None, "b.com")],
        }
        assert daily_share_consistency(by_domain) == 1.0

    def test_mixed_domain_detected(self):
        by_domain = {
            "a.com": [
                obs("2020-01-01", "quantcast", "a.com"),
                obs("2020-01-01", None, "a.com"),
            ],
        }
        assert daily_share_consistency(by_domain) == 0.0


class TestMonthStarts:
    def test_range(self):
        months = month_starts(dt.date(2018, 3, 1), dt.date(2018, 6, 15))
        assert months == [
            dt.date(2018, 3, 1),
            dt.date(2018, 4, 1),
            dt.date(2018, 5, 1),
            dt.date(2018, 6, 1),
        ]

    def test_midmonth_start(self):
        months = month_starts(dt.date(2018, 3, 15), dt.date(2018, 5, 1))
        assert months[0] == dt.date(2018, 4, 1)

    def test_year_boundary(self):
        months = month_starts(dt.date(2019, 12, 1), dt.date(2020, 1, 31))
        assert months == [dt.date(2019, 12, 1), dt.date(2020, 1, 1)]
