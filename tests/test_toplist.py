"""Provider rankings and the Tranco (Dowdall) aggregation."""

import numpy as np
import pytest

from repro.toplist.providers import PROVIDER_NAMES, provider_ranking
from repro.toplist.tranco import build_tranco


class TestProviders:
    def test_all_providers_build(self, world):
        for name in PROVIDER_NAMES:
            ranking = provider_ranking(world, name)
            assert len(ranking) > 0
            assert ranking.provider == name

    def test_unknown_provider(self, world):
        with pytest.raises(KeyError):
            provider_ranking(world, "bing")

    def test_order_is_permutation(self, world):
        ranking = provider_ranking(world, "alexa")
        assert len(set(ranking.order.tolist())) == len(ranking)
        assert ranking.order.min() >= 1
        assert ranking.order.max() <= world.n_domains

    def test_ranks_correlate_with_truth(self, world):
        ranking = provider_ranking(world, "quantcast")
        positions = ranking.position_of()
        # The provider's rank of the true top-100 should be far better
        # than that of a random deep slice.
        top = [positions[r - 1] for r in range(1, 101) if positions[r - 1]]
        deep = [
            positions[r - 1]
            for r in range(2000, 2100)
            if positions[r - 1]
        ]
        assert np.median(top) < np.median(deep)

    def test_noise_scales_differ(self, world):
        # Majestic is noisier than Quantcast: its top-100 should agree
        # less with the truth.
        def agreement(name):
            order = provider_ranking(world, name).order[:100]
            return sum(1 for true_rank in order if true_rank <= 100)

        assert agreement("quantcast") > agreement("majestic")

    def test_quantcast_partial_tail_coverage(self):
        from repro.web.worldgen import World, WorldConfig

        big = World(WorldConfig(seed=3, n_domains=30_000))
        ranking = provider_ranking(big, "quantcast")
        assert len(ranking) < big.n_domains

    def test_umbrella_boosts_infrastructure(self, world):
        umbrella = provider_ranking(world, "umbrella")
        alexa = provider_ranking(world, "alexa")
        infra_ranks = [
            r for r in range(1, 2001) if world.site(r).is_infrastructure
        ]
        assert infra_ranks, "world should contain infrastructure sites"
        u_pos = umbrella.position_of()
        a_pos = alexa.position_of()
        u_median = np.median([u_pos[r - 1] for r in infra_ranks])
        a_median = np.median([a_pos[r - 1] for r in infra_ranks])
        assert u_median < a_median


class TestTranco:
    def test_build_and_length(self, study):
        assert len(study.tranco) == study.world.n_domains

    def test_top_generates_domains(self, study):
        top = study.tranco.top(50)
        assert len(top) == 50
        assert len(set(top)) == 50

    def test_tranco_correlates_with_truth(self, study):
        top_true = study.tranco.top_true_ranks(100)
        assert np.median(top_true) < 200

    def test_true_rank_at(self, study):
        assert study.tranco.true_rank_at(1) == int(study.tranco.order[0])
        with pytest.raises(IndexError):
            study.tranco.true_rank_at(0)

    def test_tranco_rank_of_true(self, study):
        true_rank = study.tranco.true_rank_at(5)
        assert study.tranco.tranco_rank_of_true(true_rank) == 5

    def test_aggregation_beats_single_provider(self, world):
        # Dowdall aggregation should be at least as accurate as the
        # noisiest input list on the top-100.
        tranco = build_tranco(world)
        majestic = provider_ranking(world, "majestic")

        def top100_agreement(order):
            return sum(1 for true_rank in order[:100] if true_rank <= 100)

        assert top100_agreement(tranco.order) >= top100_agreement(
            majestic.order
        )

    def test_needs_a_provider(self, world):
        with pytest.raises(ValueError):
            build_tranco(world, providers=())

    def test_deterministic(self, world):
        a = build_tranco(world)
        b = build_tranco(world)
        assert np.array_equal(a.order, b.order)
