"""Page rendering: geo behaviour, failure classes, CMP traffic."""

import datetime as dt

import pytest

from repro.detect.fingerprints import fingerprint_for
from repro.net.url import URL
from repro.web.serving import (
    PageLoad,
    VisitSettings,
    make_short_link,
    render_page,
)

MAY = dt.date(2020, 5, 15)


def settings(**kwargs):
    defaults = dict(date=MAY, region="EU", address_space="university")
    defaults.update(kwargs)
    return VisitSettings(**defaults)


def find_site(world, predicate, limit=5000):
    for rank in range(1, limit + 1):
        site = world.site(rank)
        if predicate(site):
            return site
    raise AssertionError("no site matching predicate in this world")


def landing_url(site):
    return URL.parse(f"https://www.{site.domain}/")


class TestBasicRendering:
    def test_ok_page(self, world):
        site = find_site(
            world,
            lambda s: s.reachability == "https"
            and not s.is_infrastructure
            and s.redirects_to is None,
        )
        page = render_page(world, landing_url(site), settings())
        assert page.ok
        assert page.transactions
        assert page.final_url.host == f"www.{site.domain}"

    def test_deterministic(self, world):
        site = world.site(10)
        a = render_page(world, landing_url(site), settings())
        b = render_page(world, landing_url(site), settings())
        assert a == b

    def test_unknown_host_is_dns_failure(self, world):
        page = render_page(
            world, URL.parse("https://never-existed.example/"), settings()
        )
        assert page.status is None
        assert not page.transactions

    def test_dead_site(self, world):
        site = find_site(world, lambda s: s.reachability == "unreachable")
        page = render_page(world, landing_url(site), settings())
        assert page.status is None

    def test_http_error_site(self, world):
        site = find_site(world, lambda s: s.reachability == "http-error")
        page = render_page(world, landing_url(site), settings())
        assert page.status == 503


class TestCmpTraffic:
    def cmp_site(self, world, **kwargs):
        return find_site(
            world,
            lambda s: s.cmp_on(MAY) is not None
            and s.cmp_on_landing
            and not s.behind_antibot_cdn
            and not s.slow_loader
            and "US" in s.embed_regions
            and not s.blocks_eu_visitors
            and s.redirects_to is None,
        )

    def test_fingerprint_host_contacted(self, world):
        site = self.cmp_site(world)
        fp = fingerprint_for(site.cmp_on(MAY))
        page = render_page(world, landing_url(site), settings())
        assert any(fp.matches_host(h) for h in page.contacted_hosts)

    def test_no_cmp_traffic_without_episode(self, world):
        site = find_site(
            world,
            lambda s: not s.ever_used_cmp
            and s.reachability == "https"
            and not s.is_infrastructure
            and s.redirects_to is None
            and not s.behind_antibot_cdn,
        )
        page = render_page(world, landing_url(site), settings())
        from repro.detect.fingerprints import FINGERPRINTS

        for fp in FINGERPRINTS:
            assert not any(fp.matches_host(h) for h in page.contacted_hosts)

    def test_eu_only_embed_invisible_from_us(self, world):
        site = find_site(
            world,
            lambda s: s.cmp_on(MAY) is not None
            and s.cmp_on_landing
            and s.embed_regions == frozenset({"EU"})
            and s.us_embed_since is None
            and not s.behind_antibot_cdn
            and s.redirects_to is None,
        )
        fp = fingerprint_for(site.cmp_on(MAY))
        eu = render_page(world, landing_url(site), settings(region="EU"))
        us = render_page(world, landing_url(site), settings(region="US"))
        assert any(fp.matches_host(h) for h in eu.contacted_hosts)
        assert not any(fp.matches_host(h) for h in us.contacted_hosts)

    def test_privacy_policy_page_has_no_cmp(self, world):
        site = self.cmp_site(world)
        fp = fingerprint_for(site.cmp_on(MAY))
        url = URL.parse(f"https://{site.domain}/privacy-policy")
        page = render_page(world, url, settings())
        assert page.ok
        assert not any(fp.matches_host(h) for h in page.contacted_hosts)

    def test_dialog_shown_flag(self, world):
        site = find_site(
            world,
            lambda s: s.cmp_on(MAY) is not None
            and s.cmp_on_landing
            and not s.behind_antibot_cdn
            and s.redirects_to is None
            and s.episode_on(MAY).dialog.shown_to("EU"),
        )
        page = render_page(world, landing_url(site), settings(region="EU"))
        assert page.dialog is not None
        assert page.dialog_shown

    def test_gdpr_phrases_in_page_text_when_shown(self, world):
        from repro.detect.phrases import contains_gdpr_phrase

        site = find_site(
            world,
            lambda s: s.cmp_on(MAY) is not None
            and s.cmp_on_landing
            and not s.behind_antibot_cdn
            and s.redirects_to is None
            and s.episode_on(MAY).dialog.shown_to("EU"),
        )
        page = render_page(world, landing_url(site), settings(region="EU"))
        assert contains_gdpr_phrase(page.page_text)


class TestHostingInterference:
    def test_antibot_blocks_cloud(self, world):
        site = find_site(
            world,
            lambda s: s.behind_antibot_cdn
            and s.cmp_on(MAY) is not None
            and s.cmp_on_landing
            and s.redirects_to is None,
        )
        cloud = render_page(
            world, landing_url(site), settings(address_space="cloud")
        )
        univ = render_page(
            world, landing_url(site), settings(address_space="university")
        )
        assert cloud.blocked_by_antibot
        assert cloud.status == 403
        assert not univ.blocked_by_antibot
        assert univ.ok

    def test_slow_loader_cmp_request_is_late(self, world):
        site = find_site(
            world,
            lambda s: s.slow_loader
            and s.cmp_on(MAY) is not None
            and s.cmp_on_landing
            and not s.behind_antibot_cdn
            and s.redirects_to is None,
        )
        fp = fingerprint_for(site.cmp_on(MAY))
        page = render_page(world, landing_url(site), settings())
        cmp_txs = [
            tx
            for tx in page.transactions
            if fp.matches_host(tx.request.url.host)
        ]
        assert cmp_txs
        assert all(tx.started_at > 10.0 for tx in cmp_txs)

    def test_eu_blocked_sites_serve_451(self, world):
        # The geo-variable class is rare (0.2% of domains); inject one
        # deterministically so the 451 path is always exercised.
        import dataclasses

        from repro.web.worldgen import World, WorldConfig

        private = World(WorldConfig(seed=7, n_domains=5_000))
        base = find_site(
            private,
            lambda s: s.reachability == "https"
            and not s.is_infrastructure
            and s.redirects_to is None
            and not s.behind_antibot_cdn,
        )
        site = dataclasses.replace(base, blocks_eu_visitors=True)
        private._cache[site.rank] = site
        eu = render_page(private, landing_url(site), settings(region="EU"))
        us = render_page(private, landing_url(site), settings(region="US"))
        assert eu.status == 451
        assert us.ok

    def test_ccpa_era_global_embed(self, world):
        """EU-only embedders that went global in early 2020 are visible
        to US visitors afterwards, not before (Tables A.3 vs 1)."""
        site = find_site(
            world,
            lambda s: s.us_embed_since is not None
            and s.cmp_on(MAY) is not None
            and s.cmp_on_landing
            and not s.behind_antibot_cdn
            and s.redirects_to is None,
        )
        fp = fingerprint_for(site.cmp_on(MAY))
        before = render_page(
            world, landing_url(site),
            settings(region="US", date=dt.date(2019, 11, 1)),
        )
        after = render_page(
            world, landing_url(site), settings(region="US", date=MAY)
        )
        if site.cmp_on(dt.date(2019, 11, 1)) is not None:
            assert not any(
                fp.matches_host(h) for h in before.contacted_hosts
            )
        assert any(fp.matches_host(h) for h in after.contacted_hosts)


class TestRedirects:
    def test_alias_redirects_to_canonical(self, world):
        site = find_site(world, lambda s: s.redirects_to is not None)
        page = render_page(world, landing_url(site), settings())
        assert page.final_url.host.endswith(site.redirects_to)

    def test_short_link_resolves(self, world):
        target = find_site(
            world,
            lambda s: s.reachability == "https"
            and s.redirects_to is None
            and not s.is_infrastructure,
        )
        short = make_short_link(world, target, 0)
        page = render_page(world, short, settings())
        assert page.ok
        assert target.domain in page.final_url.host

    def test_bad_short_link_404(self, world):
        url = URL.parse(
            f"https://{world.config.shortener_domain}/zzz-bad"
        )
        page = render_page(world, url, settings())
        assert page.status == 404


class TestQuantcastOutlier:
    def test_analytics_stub_in_window(self, world):
        # During 2018-07-10/11 some non-CMP sites emit the Quantcast
        # fingerprint host via the analytics product.
        fp = fingerprint_for("quantcast")
        window = dt.date(2018, 7, 10)
        hits = 0
        for rank in range(1, 600):
            site = world.site(rank)
            if site.ever_used_cmp or site.reachability != "https":
                continue
            if site.is_infrastructure or site.redirects_to is not None:
                continue
            page = render_page(
                world, landing_url(site), settings(date=window)
            )
            if any(fp.matches_host(h) for h in page.contacted_hosts):
                hits += 1
        assert hits > 0

    def test_no_stub_outside_window(self, world):
        fp = fingerprint_for("quantcast")
        for rank in range(1, 600):
            site = world.site(rank)
            if site.ever_used_cmp or site.reachability != "https":
                continue
            if site.is_infrastructure or site.redirects_to is not None:
                continue
            page = render_page(
                world, landing_url(site), settings(date=dt.date(2018, 7, 20))
            )
            assert not any(
                fp.matches_host(h) for h in page.contacted_hosts
            )
