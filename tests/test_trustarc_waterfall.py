"""The TrustArc opt-out waterfall model (Figure 9 substrate)."""

import random

import pytest

from repro.cmps.trustarc import (
    PARTNER_DOMAINS,
    OptOutWaterfall,
    WaterfallStep,
    trustarc_accept_path,
    trustarc_optout_waterfall,
)


@pytest.fixture()
def waterfall():
    return trustarc_optout_waterfall(random.Random(0))


class TestWaterfall:
    def test_at_least_seven_clicks(self, waterfall):
        assert waterfall.n_clicks >= 7

    def test_duration_in_tens_of_seconds(self, waterfall):
        assert 25.0 < waterfall.total_duration < 50.0

    def test_contacts_25_domains(self, waterfall):
        assert len(waterfall.partner_domains) == 25

    def test_extra_requests_hundreds(self, waterfall):
        assert 200 < waterfall.extra_requests < 360

    def test_transfer_sizes(self, waterfall):
        assert 0.7e6 < waterfall.wire_bytes < 1.8e6
        assert waterfall.uncompressed_bytes > 3.0 * waterfall.wire_bytes

    def test_js_timeout_present(self, waterfall):
        kinds = [s.kind for s in waterfall.steps]
        assert "js-timeout" in kinds

    def test_partner_batches_sequential(self, waterfall):
        batches = [s for s in waterfall.steps if s.kind == "partner-batch"]
        assert len(batches) == 5
        for batch in batches:
            assert batch.transactions

    def test_all_requests_are_https_xhr(self, waterfall):
        for tx in waterfall.transactions:
            assert tx.request.url.scheme == "https"
            assert tx.request.resource_type == "xhr"

    def test_partner_domain_count_configurable(self):
        w = trustarc_optout_waterfall(random.Random(1), n_partner_domains=10)
        assert len(w.partner_domains) == 10

    def test_partner_domain_bounds(self):
        with pytest.raises(ValueError):
            trustarc_optout_waterfall(
                random.Random(1), n_partner_domains=len(PARTNER_DOMAINS) + 1
            )
        with pytest.raises(ValueError):
            trustarc_optout_waterfall(random.Random(1), n_partner_domains=0)


class TestAcceptPath:
    def test_one_click_no_requests(self):
        accept = trustarc_accept_path(random.Random(0))
        assert accept.n_clicks == 1
        assert accept.extra_requests == 0
        assert accept.total_duration < 2.0


class TestStepValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WaterfallStep("nap", "zzz", 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            WaterfallStep("click", "x", -1.0)

    def test_total_is_sum_of_steps(self):
        w = OptOutWaterfall(
            steps=(
                WaterfallStep("click", "a", 1.0),
                WaterfallStep("js-timeout", "b", 2.5),
            )
        )
        assert w.total_duration == pytest.approx(3.5)
        assert w.n_clicks == 1
