"""__cmp() API emulation lifecycle."""

import pytest

from repro.tcf.cmpapi import CmpApi, CmpApiError
from repro.tcf.consentstring import ConsentString


def consent(**kwargs):
    defaults = dict(
        cmp_id=10,
        vendor_list_version=100,
        max_vendor_id=20,
        allowed_purposes=(1, 2, 3),
        vendor_consents=(1, 2),
    )
    defaults.update(kwargs)
    return ConsentString.build(**defaults)


class TestLifecycle:
    def test_happy_path(self):
        api = CmpApi(cmp_id=10)
        api.load(0.5)
        api.show_dialog(0.7)
        assert api.dialog_visible(1.0)
        api.submit_decision(consent(), 4.2)
        assert not api.dialog_visible(4.3)
        assert api.interaction_time == pytest.approx(3.5)

    def test_ping_before_and_after_load(self):
        api = CmpApi(cmp_id=10)
        assert not api.ping(0.1).cmp_loaded
        api.load(0.5)
        assert not api.ping(0.3).cmp_loaded
        assert api.ping(0.6).cmp_loaded
        assert api.ping(0.6).gdpr_applies

    def test_consent_data_none_before_decision(self):
        api = CmpApi(cmp_id=10)
        api.load(0.5)
        api.show_dialog(0.7)
        assert api.get_consent_data(1.0) is None

    def test_consent_data_after_decision(self):
        api = CmpApi(cmp_id=10)
        api.load(0.5)
        api.show_dialog(0.7)
        c = consent()
        api.submit_decision(c, 3.0)
        data = api.get_consent_data(3.1)
        assert data is not None
        assert data.consent_data == c.encode()

    def test_vendor_consents_view(self):
        api = CmpApi(cmp_id=10)
        api.load(0.1)
        api.show_dialog(0.2)
        api.submit_decision(consent(), 1.0)
        vc = api.get_vendor_consents(1.5)
        assert vc.purpose_consents[1] is True
        assert vc.purpose_consents[5] is False
        assert vc.vendor_consents[2] is True
        assert vc.vendor_consents[3] is False


class TestStoredConsent:
    def test_dialog_suppressed(self):
        api = CmpApi(cmp_id=10, stored_consent=consent())
        api.load(0.5)
        with pytest.raises(CmpApiError, match="suppressed"):
            api.show_dialog(0.7)

    def test_consent_data_available_immediately(self):
        stored = consent()
        api = CmpApi(cmp_id=10, stored_consent=stored)
        api.load(0.5)
        data = api.get_consent_data(0.6)
        assert data is not None
        assert data.consent_data == stored.encode()


class TestErrors:
    def test_double_load(self):
        api = CmpApi(cmp_id=10)
        api.load(0.5)
        with pytest.raises(CmpApiError):
            api.load(0.6)

    def test_dialog_before_load(self):
        with pytest.raises(CmpApiError):
            CmpApi(cmp_id=10).show_dialog(0.1)

    def test_dialog_before_load_time(self):
        api = CmpApi(cmp_id=10)
        api.load(1.0)
        with pytest.raises(CmpApiError):
            api.show_dialog(0.5)

    def test_decision_without_dialog(self):
        api = CmpApi(cmp_id=10)
        api.load(0.5)
        with pytest.raises(CmpApiError):
            api.submit_decision(consent(), 1.0)

    def test_decision_before_dialog_time(self):
        api = CmpApi(cmp_id=10)
        api.load(0.5)
        api.show_dialog(1.0)
        with pytest.raises(CmpApiError):
            api.submit_decision(consent(), 0.9)

    def test_double_decision(self):
        api = CmpApi(cmp_id=10)
        api.load(0.5)
        api.show_dialog(1.0)
        api.submit_decision(consent(), 2.0)
        with pytest.raises(CmpApiError):
            api.submit_decision(consent(), 3.0)

    def test_consent_data_before_install(self):
        api = CmpApi(cmp_id=10)
        with pytest.raises(CmpApiError):
            api.get_consent_data(0.1)
        api.load(1.0)
        with pytest.raises(CmpApiError):
            api.get_vendor_consents(0.5)

    def test_interaction_time_none_without_decision(self):
        api = CmpApi(cmp_id=10)
        api.load(0.5)
        api.show_dialog(1.0)
        assert api.interaction_time is None
