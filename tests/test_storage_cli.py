"""Observation persistence and the command-line interface."""

import datetime as dt
import io

import pytest

from repro.crawler.capture import EU_CLOUD, Observation, Vantage
from repro.crawler.storage import (
    StorageError,
    dump_observations,
    dumps_observations,
    load_observations,
    load_store,
    loads_observations,
    save_store,
)
from repro.cli import main as cli_main


def make_obs(n=5):
    return [
        Observation(
            domain=f"site{i}.com",
            date=dt.date(2020, 1, 1) + dt.timedelta(days=i),
            cmp_key="quantcast" if i % 2 else None,
            vantage=Vantage("US" if i % 3 else "EU", "cloud"),
        )
        for i in range(n)
    ]


class TestStorage:
    def test_roundtrip_string(self):
        original = make_obs()
        text = dumps_observations(original)
        back = list(loads_observations(text))
        assert back == original

    def test_roundtrip_file(self, tmp_path):
        original = make_obs(20)
        path = tmp_path / "obs.jsonl"
        count = dump_observations(original, path)
        assert count == 20
        assert list(load_observations(path)) == original

    def test_store_roundtrip(self, study, tmp_path):
        store = study.run_social_crawl(
            dt.date(2020, 4, 1), dt.date(2020, 4, 8)
        )
        path = tmp_path / "store.jsonl"
        n = save_store(store, path)
        assert n == store.n_captures
        back = load_store(path)
        assert back.n_captures == store.n_captures
        assert back.by_domain().keys() == store.by_domain().keys()

    def test_blank_lines_skipped(self):
        text = dumps_observations(make_obs(2)) + "\n\n"
        assert len(list(loads_observations(text))) == 2

    def test_invalid_json_raises(self):
        with pytest.raises(StorageError, match="line 1"):
            list(loads_observations("not-json\n"))

    def test_missing_field_raises(self):
        with pytest.raises(StorageError, match="malformed"):
            list(loads_observations('{"domain": "a.com"}\n'))

    def test_vantage_preserved(self):
        original = make_obs(6)
        back = list(loads_observations(dumps_observations(original)))
        assert [o.vantage for o in back] == [o.vantage for o in original]


class TestCli:
    def test_table1(self, capsys):
        rc = cli_main(
            ["--domains", "2000", "--toplist", "300",
             "table1", "--date", "2020-05-15"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "OneTrust" in out and "Coverage" in out

    def test_figure5(self, capsys):
        rc = cli_main(["--domains", "2000", "figure5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "top" in out and "%" in out

    def test_crawl_then_figure6(self, tmp_path, capsys):
        path = str(tmp_path / "obs.jsonl")
        rc = cli_main(
            ["--domains", "1000", "crawl", "--days", "14",
             "--start", "2020-04-01", "--events-per-day", "120",
             "--out", path]
        )
        assert rc == 0
        assert "observations" in capsys.readouterr().out
        rc = cli_main(["--domains", "1000", "figure6", "--in", path])
        assert rc == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
