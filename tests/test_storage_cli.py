"""Observation persistence and the command-line interface."""

import datetime as dt
import io
import json
import re
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawler.capture import EU_CLOUD, Observation, Vantage
from repro.crawler.platform import CaptureStore
from repro.crawler.storage import (
    STORE_FORMAT,
    STORE_VERSION,
    StorageError,
    dump_observations,
    dumps_observations,
    load_observations,
    load_store,
    loads_observations,
    save_store,
    store_header,
)
from repro.cli import main as cli_main


def make_obs(n=5):
    return [
        Observation(
            domain=f"site{i}.com",
            date=dt.date(2020, 1, 1) + dt.timedelta(days=i),
            cmp_key="quantcast" if i % 2 else None,
            vantage=Vantage("US" if i % 3 else "EU", "cloud"),
        )
        for i in range(n)
    ]


class TestStorage:
    def test_roundtrip_string(self):
        original = make_obs()
        text = dumps_observations(original)
        back = list(loads_observations(text))
        assert back == original

    def test_roundtrip_file(self, tmp_path):
        original = make_obs(20)
        path = tmp_path / "obs.jsonl"
        count = dump_observations(original, path)
        assert count == 20
        assert list(load_observations(path)) == original

    def test_store_roundtrip(self, study, tmp_path):
        store = study.run_social_crawl(
            dt.date(2020, 4, 1), dt.date(2020, 4, 8)
        )
        path = tmp_path / "store.jsonl"
        n = save_store(store, path)
        assert n == store.n_captures
        back = load_store(path)
        assert back.n_captures == store.n_captures
        assert back.by_domain().keys() == store.by_domain().keys()

    def test_blank_lines_skipped(self):
        text = dumps_observations(make_obs(2)) + "\n\n"
        assert len(list(loads_observations(text))) == 2

    def test_invalid_json_raises(self):
        with pytest.raises(StorageError, match="line 1"):
            list(loads_observations("not-json\n"))

    def test_missing_field_raises(self):
        with pytest.raises(StorageError, match="malformed"):
            list(loads_observations('{"domain": "a.com"}\n'))

    def test_vantage_preserved(self):
        original = make_obs(6)
        back = list(loads_observations(dumps_observations(original)))
        assert [o.vantage for o in back] == [o.vantage for o in original]


def synthetic_store(observations, extra_failed_captures=0, total_requests=0):
    """A store whose counters may exceed its observation count (the
    shape produced when failed-capture accounting diverges)."""
    store = CaptureStore(retain_captures=False)
    for obs in observations:
        store.add_observation(obs)
        store.n_captures += 1
    store.n_captures += extra_failed_captures
    store.total_requests = total_requests
    return store


class TestCrashSafety:
    def test_dump_failure_leaves_original_intact(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        dump_observations(make_obs(3), path)
        original = path.read_text()

        def killed_mid_write():
            yield from make_obs(2)
            raise RuntimeError("simulated crash")

        with pytest.raises(RuntimeError, match="simulated crash"):
            dump_observations(killed_mid_write(), path)
        assert path.read_text() == original
        assert list(tmp_path.iterdir()) == [path]  # no temp leftovers

    def test_dump_failure_creates_no_file(self, tmp_path):
        path = tmp_path / "never.jsonl"

        def doomed():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        with pytest.raises(RuntimeError):
            dump_observations(doomed(), path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_save_store_failure_leaves_original_intact(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "store.jsonl"
        store = synthetic_store(make_obs(4))
        save_store(store, path)
        original = path.read_text()

        import repro.crawler.storage as storage_mod

        calls = {"n": 0}
        real = storage_mod.observation_to_record

        def explode_midway(obs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("simulated kill -9")
            return real(obs)

        monkeypatch.setattr(
            storage_mod, "observation_to_record", explode_midway
        )
        with pytest.raises(RuntimeError):
            save_store(synthetic_store(make_obs(8)), path)
        assert path.read_text() == original
        assert list(tmp_path.iterdir()) == [path]

    def test_externally_truncated_store_rejected(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(synthetic_store(make_obs(6)), path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")  # drop two records
        with pytest.raises(StorageError, match="truncated store"):
            load_store(path)


class TestStoreHeader:
    def test_header_written_first_and_skipped_by_load_observations(
        self, tmp_path
    ):
        path = tmp_path / "store.jsonl"
        original = make_obs(4)
        save_store(synthetic_store(original), path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["format"] == STORE_FORMAT
        assert first["version"] == STORE_VERSION
        assert list(load_observations(path)) == original

    def test_roundtrip_preserves_failed_capture_accounting(self, tmp_path):
        original = synthetic_store(
            make_obs(5), extra_failed_captures=3, total_requests=41
        )
        path = tmp_path / "store.jsonl"
        assert save_store(original, path) == 5
        back = load_store(path)
        assert back.n_captures == original.n_captures == 8
        assert back.total_requests == 41
        assert back.observations == original.observations
        assert back.by_domain() == original.by_domain()

    def test_live_crawl_roundtrip_exact(self, study, tmp_path):
        store = study.run_social_crawl(
            dt.date(2020, 4, 1), dt.date(2020, 4, 15)
        )
        stats = study.last_crawl_stats
        assert stats.failures > 0  # the window must exercise failures
        path = tmp_path / "store.jsonl"
        save_store(store, path)
        back = load_store(path)
        assert back.n_captures == store.n_captures
        assert back.total_requests == store.total_requests
        assert back.observations == store.observations

    def test_headerless_legacy_file_still_loads(self, tmp_path):
        original = make_obs(7)
        path = tmp_path / "legacy.jsonl"
        path.write_text(dumps_observations(original))
        store = load_store(path)
        assert store.observations == original
        assert store.n_captures == 7  # legacy: one capture per observation
        assert store.total_requests == 0

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "store.jsonl"
        header = {"format": STORE_FORMAT, "version": STORE_VERSION + 1}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(StorageError, match="unsupported store format"):
            load_store(path)

    @settings(max_examples=25, deadline=None)
    @given(
        n_obs=st.integers(min_value=0, max_value=25),
        extra_failed=st.integers(min_value=0, max_value=10),
        requests=st.integers(min_value=0, max_value=5_000),
    )
    def test_roundtrip_property(self, n_obs, extra_failed, requests):
        store = synthetic_store(
            make_obs(n_obs),
            extra_failed_captures=extra_failed,
            total_requests=requests,
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "store.jsonl"
            save_store(store, path)
            back = load_store(path)
        assert back.observations == store.observations
        assert back.n_captures == store.n_captures == n_obs + extra_failed
        assert back.total_requests == requests


class TestErrorLabeling:
    def test_invalid_json_error_names_file(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(dumps_observations(make_obs(1)) + "not-json\n")
        with pytest.raises(StorageError) as excinfo:
            list(load_observations(path))
        message = str(excinfo.value)
        assert "broken.jsonl" in message and "line 2" in message

    def test_malformed_record_error_names_file_and_line(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        good = dumps_observations(make_obs(2))
        path.write_text(good + '{"domain": "only-a-domain.com"}\n')
        with pytest.raises(
            StorageError,
            match=re.escape("partial.jsonl") + r".*line 3.*malformed",
        ):
            list(load_observations(path))

    def test_in_memory_sources_labeled_as_stream(self):
        with pytest.raises(StorageError, match="<stream>.*line 1"):
            list(loads_observations("not-json\n"))

    def test_load_store_errors_name_file(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(synthetic_store(make_obs(2)), path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        with pytest.raises(StorageError, match="store.jsonl"):
            load_store(path)


class TestCli:
    def test_table1(self, capsys):
        rc = cli_main(
            ["--domains", "2000", "--toplist", "300",
             "table1", "--date", "2020-05-15"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "OneTrust" in out and "Coverage" in out

    def test_figure5(self, capsys):
        rc = cli_main(["--domains", "2000", "figure5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "top" in out and "%" in out

    def test_crawl_then_figure6(self, tmp_path, capsys):
        path = str(tmp_path / "obs.jsonl")
        rc = cli_main(
            ["--domains", "1000", "crawl", "--days", "14",
             "--start", "2020-04-01", "--events-per-day", "120",
             "--out", path]
        )
        assert rc == 0
        assert "observations" in capsys.readouterr().out
        rc = cli_main(["--domains", "1000", "figure6", "--in", path])
        assert rc == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
