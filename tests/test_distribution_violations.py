"""Consent distribution (I6) and the decision-vs-signal audit."""

import random

import pytest

from repro.cmps.base import CMP_KEYS
from repro.cmps.distribution import (
    DistributionRun,
    distribute_consent,
    distribution_comparison,
)
from repro.core.violations import (
    ViolationReport,
    audit_experiment,
    check_record,
)
from repro.users.experiment import run_quantcast_experiment


class TestDistribution:
    def test_accept_is_fast_everywhere(self):
        rng = random.Random(0)
        for cmp_key in CMP_KEYS:
            run = distribute_consent(cmp_key, "accept", rng)
            assert run.completion_time < 2.0
            assert run.n_requests > 0

    def test_trustarc_reject_is_the_outlier(self):
        rng = random.Random(1)
        trustarc = distribute_consent("trustarc", "reject", rng)
        assert trustarc.completion_time > 25.0
        for cmp_key in ("quantcast", "onetrust", "cookiebot"):
            other = distribute_consent(cmp_key, "reject", rng)
            assert other.completion_time < 2.0

    def test_consent_param_travels(self):
        rng = random.Random(2)
        run = distribute_consent("quantcast", "accept", rng,
                                 consent_param="BOxyz")
        assert all(
            "gdpr_consent=BOxyz" in str(t.request.url)
            for t in run.transactions
        )

    def test_parallel_completion_is_max_not_sum(self):
        rng = random.Random(3)
        run = distribute_consent("quantcast", "accept", rng)
        total_latency = sum(t.duration for t in run.transactions)
        assert run.completion_time < total_latency

    def test_unknown_decision_rejected(self):
        with pytest.raises(ValueError):
            distribute_consent("quantcast", "maybe", random.Random(0))

    def test_comparison_table(self):
        table = distribution_comparison(seed=4, runs_per_cell=5)
        assert set(table) == {
            (k, d) for k in CMP_KEYS for d in ("accept", "reject")
        }
        assert table[("trustarc", "reject")] > 10 * table[("trustarc", "accept")]


class TestViolationDetector:
    def full_consent(self):
        from repro.tcf.consentstring import ConsentString

        return ConsentString.build(
            cmp_id=10, vendor_list_version=1, max_vendor_id=10,
            allowed_purposes=(1, 2, 3, 4, 5), vendor_consents=range(1, 11),
        ).encode()

    def empty_consent(self):
        from repro.tcf.consentstring import ConsentString

        return ConsentString.build(
            cmp_id=10, vendor_list_version=1, max_vendor_id=10
        ).encode()

    def test_clean_records(self):
        assert check_record(1, "accept", self.full_consent()) is None
        assert check_record(2, "reject", self.empty_consent()) is None

    def test_consent_after_optout(self):
        v = check_record(3, "reject", self.full_consent())
        assert v is not None and v.kind == "consent-after-optout"

    def test_optout_not_stored(self):
        v = check_record(4, "accept", self.empty_consent())
        assert v is not None and v.kind == "optout-not-stored"

    def test_undecodable_signal(self):
        v = check_record(5, "reject", "!!garbage!!")
        assert v is not None and v.kind == "undecoded-signal"

    def test_undecided_records_skipped(self):
        assert check_record(6, None, None) is None

    def test_empty_report_rate_raises(self):
        with pytest.raises(ValueError):
            ViolationReport(checked=0, violations=[]).violation_rate


class TestExperimentAudit:
    def test_clean_experiment_has_no_violations(self):
        data = run_quantcast_experiment(n_visitors=600, seed=8)
        report = audit_experiment(data.records)
        assert report.checked > 300
        assert report.violations == []

    def test_injected_violations_detected(self):
        data = run_quantcast_experiment(
            n_visitors=1_500, seed=9, violation_rate=0.5
        )
        report = audit_experiment(data.records)
        found = report.of_kind("consent-after-optout")
        assert found
        # Roughly half of the rejections violate.
        rejections = sum(
            1 for r in data.records if r.decision == "reject"
        )
        assert 0.25 * rejections < len(found) < 0.75 * rejections

    def test_violations_do_not_change_timing_results(self):
        clean = run_quantcast_experiment(n_visitors=400, seed=10)
        dirty = run_quantcast_experiment(
            n_visitors=400, seed=10, violation_rate=1.0
        )
        # Same decisions and timings; only the stored signal differs.
        assert [r.decision for r in clean.records] == [
            r.decision for r in dirty.records
        ]
        assert [r.dialog_closed_at for r in clean.records] == [
            r.dialog_closed_at for r in dirty.records
        ]
