"""Dialog-customization classification (Section 4.1 taxonomy)."""

import datetime as dt
import random

import pytest

from repro.cmps import onetrust, quantcast, trustarc
from repro.cmps.base import DialogButton, DialogDescriptor
from repro.core.customization import (
    CATEGORIES,
    classify_dialog,
    classify_dialogs,
    dialogs_from_captures,
    is_affirmative_wording,
)


def make(kind="banner", buttons=(), **kwargs):
    return DialogDescriptor(
        cmp_key="onetrust", kind=kind, buttons=tuple(buttons), **kwargs
    )


class TestClassifyDialog:
    def test_api_only(self):
        d = make(kind="none", custom_api_only=True)
        assert classify_dialog(d) == "api-only"

    def test_hidden_from_eu(self):
        d = make(
            buttons=[DialogButton("Accept", "accept-all")],
            shown_regions=frozenset({"US"}),
        )
        assert classify_dialog(d) == "hidden-from-eu"

    def test_footer_link(self):
        d = make(
            kind="footer-link",
            buttons=[DialogButton("Privacy Policy", "settings-link")],
        )
        assert classify_dialog(d) == "footer-link"

    def test_script_banner(self):
        d = make(
            kind="script-banner",
            buttons=[
                DialogButton("Accept Scripts", "accept-all"),
                DialogButton("Reject Scripts", "reject-all"),
            ],
        )
        assert classify_dialog(d) == "script-banner"

    def test_direct_reject(self):
        d = make(
            buttons=[
                DialogButton("Accept", "accept-all"),
                DialogButton("Decline All", "reject-all"),
            ]
        )
        assert classify_dialog(d) == "direct-reject"

    def test_waterfall_reject(self):
        d = make(
            buttons=[
                DialogButton("Accept", "accept-all"),
                DialogButton("Decline All", "reject-all"),
            ],
            opt_out_waterfall=True,
        )
        assert classify_dialog(d) == "waterfall-reject"

    def test_optout_banner_needs_confirm(self):
        d = make(
            buttons=[
                DialogButton("Accept", "accept-all"),
                DialogButton("Do Not Sell", "more-options"),
                DialogButton("Confirm", "confirm-reject", page=2),
            ]
        )
        assert classify_dialog(d) == "optout-banner"

    def test_conventional_banner(self):
        d = make(
            buttons=[
                DialogButton("Accept All Cookies", "accept-all"),
                DialogButton("Cookie Settings", "settings-link"),
                DialogButton("Confirm My Choices", "confirm-reject", page=2),
            ]
        )
        assert classify_dialog(d) == "conventional-banner"

    def test_modal_more_options(self):
        d = make(
            kind="modal",
            buttons=[
                DialogButton("I ACCEPT", "accept-all"),
                DialogButton("MORE OPTIONS", "more-options"),
                DialogButton("REJECT ALL", "confirm-reject", page=2),
            ],
        )
        assert classify_dialog(d) == "more-options"

    def test_no_control_link(self):
        d = make(
            buttons=[
                DialogButton("Accept", "accept-all"),
                DialogButton("Cookie Policy", "settings-link"),
            ]
        )
        assert classify_dialog(d) == "no-control-link"

    def test_accept_only_banner(self):
        d = make(buttons=[DialogButton("OK", "accept-all")])
        assert classify_dialog(d) == "no-control-link"


class TestWording:
    @pytest.mark.parametrize(
        "label",
        ["I ACCEPT", "I agree", "ICH STIMME ZU", "J'ACCEPTE", "Consent", "OK"],
    )
    def test_affirmative(self, label):
        assert is_affirmative_wording(label)

    @pytest.mark.parametrize(
        "label",
        ["Whatever", "Sounds good", "Accept and move on", "Continue to site"],
    )
    def test_freeform(self, label):
        assert not is_affirmative_wording(label)


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        rng = random.Random(0)
        dialogs = (
            [quantcast.sample_dialog(rng) for _ in range(2000)]
            + [onetrust.sample_dialog(rng) for _ in range(2000)]
            + [trustarc.sample_dialog(rng) for _ in range(2000)]
        )
        return classify_dialogs(dialogs)

    def test_categories_cover_known_set(self, report):
        for counter in report.categories.values():
            assert set(counter) <= set(CATEGORIES)

    def test_quantcast_one_click_reject_share(self, report):
        # Section 4.1: 55% of Quantcast sites offer a 1-click reject-all
        # (measured over sites showing a dialog).
        share = report.one_click_rejects["quantcast"] / sum(
            n
            for cat, n in report.categories["quantcast"].items()
            if cat != "api-only"
        )
        assert 0.48 < share < 0.62

    def test_trustarc_reject_shares(self, report):
        # 7% instant opt-out, 12% waterfall opt-out.
        assert 0.04 < report.category_share("trustarc", "direct-reject") < 0.10
        assert 0.08 < report.category_share("trustarc", "waterfall-reject") < 0.16

    def test_onetrust_conventional_majority(self, report):
        assert report.category_share("onetrust", "conventional-banner") > 0.5

    def test_onetrust_optout_banner_minority(self, report):
        assert report.optout_banner_share("onetrust") < 0.08

    def test_onetrust_script_banner_share(self, report):
        # Section 4.1: 5.5% script banners.
        assert 0.03 < report.category_share("onetrust", "script-banner") < 0.09

    def test_quantcast_affirmative_wording(self, report):
        # Section 4.1: 87% agree-variants.
        assert 0.82 < report.affirmative_wording_share("quantcast") < 0.92

    def test_api_only_overall(self, report):
        # The paper estimates about 8% use CMPs for their APIs only.
        assert 0.03 < report.api_only_share_overall() < 0.12

    def test_unknown_cmp_raises(self, report):
        with pytest.raises((KeyError, ValueError)):
            report.category_share("nonexistent", "api-only")


class TestDialogsFromCaptures:
    def test_extraction(self, study):
        result = study.run_toplist_crawl(
            dt.date(2020, 5, 15), configs=("eu-univ-extended",), size=200
        )
        captures = result.captures_for("eu-univ-extended")
        dialogs = dialogs_from_captures(captures)
        assert all(d.cmp_key for d in dialogs)
        # Every extracted dialog corresponds to a capture with a DOM.
        assert len(dialogs) == sum(
            1 for c in captures.values() if c.dom_dialog is not None
        )
