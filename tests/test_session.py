"""Browsing-session simulation: consent sharing vs per-site consent."""

import datetime as dt

import pytest

from repro.users.session import (
    SessionReport,
    VisitOutcome,
    compare_consent_scopes,
    simulate_browsing,
)

MAY = dt.date(2020, 5, 15)


class TestSimulation:
    def test_deterministic(self, world):
        a = simulate_browsing(world, MAY, n_visits=80, seed=3)
        b = simulate_browsing(world, MAY, n_visits=80, seed=3)
        assert a.visits == b.visits

    def test_visit_count(self, world):
        report = simulate_browsing(world, MAY, n_visits=60, seed=1)
        assert report.n_visits == 60

    def test_dialogs_only_on_cmp_sites(self, world):
        report = simulate_browsing(world, MAY, n_visits=300, seed=2)
        for visit in report.visits:
            if visit.dialog_shown:
                assert visit.cmp_key is not None
            if visit.cmp_key is None:
                assert visit.interaction_seconds == 0.0

    def test_global_scope_deduplicates_by_cmp(self, world):
        report = simulate_browsing(
            world, MAY, n_visits=600, seed=4, consent_scope="global"
        )
        # Under global scope, at most one *decided* dialog per CMP
        # (abandoned dialogs may repeat).
        decided_cmps = [
            v.cmp_key for v in report.visits if v.decision is not None
        ]
        assert len(decided_cmps) == len(set(decided_cmps))

    def test_service_scope_asks_per_site(self, world):
        reports = compare_consent_scopes(
            world, MAY, n_visits=600, seed=5
        )
        assert (
            reports["service"].dialogs_shown
            >= reports["global"].dialogs_shown
        )
        assert (
            reports["service"].total_interaction_seconds
            >= reports["global"].total_interaction_seconds
        )

    def test_burden_bounds(self, world):
        report = simulate_browsing(
            world, MAY, n_visits=800, seed=6, consent_scope="service"
        )
        if report.cmp_site_visits:
            assert 0.0 <= report.dialog_burden <= 1.0

    def test_unknown_scope_rejected(self, world):
        with pytest.raises(ValueError):
            simulate_browsing(world, MAY, consent_scope="galactic")

    def test_burden_requires_cmp_visits(self):
        empty = SessionReport(
            visits=[VisitOutcome("a.com", None, False, 0.0, None)]
        )
        with pytest.raises(ValueError):
            empty.dialog_burden

    def test_pre_gdpr_browsing_is_dialog_free(self, world):
        report = simulate_browsing(
            world, dt.date(2018, 1, 15), n_visits=300, seed=7
        )
        assert report.dialogs_shown <= 3  # the rare pre-GDPR adopters
