"""World generation: determinism, site classes, domain resolution."""

import datetime as dt
from collections import Counter

import pytest

from repro.net.psl import default_psl
from repro.web.worldgen import World, WorldConfig


class TestDeterminism:
    def test_same_seed_same_site(self):
        a = World(WorldConfig(seed=9, n_domains=1_000))
        b = World(WorldConfig(seed=9, n_domains=1_000))
        for rank in (1, 17, 500, 999):
            assert a.site(rank) == b.site(rank)

    def test_generation_order_irrelevant(self):
        a = World(WorldConfig(seed=9, n_domains=1_000))
        b = World(WorldConfig(seed=9, n_domains=1_000))
        ranks = [500, 3, 999, 17]
        for r in ranks:
            a.site(r)
        for r in reversed(ranks):
            b.site(r)
        for r in ranks:
            assert a.site(r) == b.site(r)

    def test_different_seed_different_world(self):
        a = World(WorldConfig(seed=1, n_domains=1_000))
        b = World(WorldConfig(seed=2, n_domains=1_000))
        assert any(a.site(r).domain != b.site(r).domain for r in range(1, 50))

    def test_site_cached(self, world):
        assert world.site(42) is world.site(42)


class TestBounds:
    def test_rank_bounds(self, world):
        with pytest.raises(KeyError):
            world.site(0)
        with pytest.raises(KeyError):
            world.site(world.n_domains + 1)

    def test_min_world_size(self):
        with pytest.raises(ValueError):
            WorldConfig(n_domains=10)


class TestSiteClasses:
    def test_class_mixture(self, world):
        classes = Counter()
        for rank in range(1, 3001):
            site = world.site(rank)
            if site.is_infrastructure:
                classes["infra"] += 1
            elif site.redirects_to is not None:
                classes["alias"] += 1
            elif site.reachability == "unreachable":
                classes["dead"] += 1
            elif site.reachability in ("http-error", "invalid-response"):
                classes["error"] += 1
            else:
                classes["normal"] += 1
        n = sum(classes.values())
        # Section 3.5 calibration: ~5% infra, ~3% dead, ~2% alias.
        assert 0.025 < classes["infra"] / n < 0.075
        assert 0.015 < classes["dead"] / n < 0.05
        assert 0.008 < classes["alias"] / n < 0.035
        assert classes["normal"] / n > 0.85

    def test_infra_never_shared(self, world):
        for rank in range(1, 2000):
            site = world.site(rank)
            if site.is_infrastructure or site.redirects_to is not None:
                assert site.share_weight == 0.0

    def test_alias_targets_are_normal_sites(self, world):
        for rank in range(1, 3000):
            site = world.site(rank)
            if site.redirects_to is not None:
                target = world.site_by_domain(site.redirects_to)
                assert target is not None
                assert target.redirects_to is None
                assert not target.is_infrastructure

    def test_domains_unique(self, world):
        domains = [world.site(r).domain for r in range(1, 2000)]
        assert len(domains) == len(set(domains))

    def test_domains_are_registrable(self, world):
        psl = default_psl()
        for rank in range(1, 300):
            domain = world.site(rank).domain
            assert psl.registrable_domain(domain) == domain


class TestDomainResolution:
    def test_site_by_domain(self, world):
        site = world.site(123)
        assert world.site_by_domain(site.domain) is site

    def test_host_to_site_strips_www(self, world):
        site = world.site(77)
        assert world.host_to_site(f"www.{site.domain}") is site

    def test_unknown_domain(self, world):
        assert world.site_by_domain("not-a-world-domain.com") is None

    def test_resolution_without_prior_generation(self):
        # Resolving a domain works even in a fresh world where the site
        # was never generated (the rank is encoded in the name).
        w1 = World(WorldConfig(seed=9, n_domains=1_000))
        domain = w1.site(444).domain
        w2 = World(WorldConfig(seed=9, n_domains=1_000))
        assert w2.site_by_domain(domain).rank == 444


class TestGeoTraits:
    def test_eu_only_embeds_exist(self, world):
        eu_only = [
            r
            for r in range(1, 5001)
            if world.site(r).ever_used_cmp
            and world.site(r).embed_regions == frozenset({"EU"})
        ]
        assert eu_only, "expected some EU-only CMP embeds"

    def test_antibot_cdn_sites_exist(self, world):
        assert any(
            world.site(r).behind_antibot_cdn for r in range(1, 2000)
        )

    def test_eu_tld_share_correlates_with_cmp(self, world):
        date = dt.date(2020, 5, 15)
        qc_eu, qc_n, ot_eu, ot_n = 0, 0, 0, 0
        for r in range(1, 5001):
            site = world.site(r)
            cmp_key = site.cmp_on(date)
            if cmp_key == "quantcast":
                qc_n += 1
                qc_eu += site.is_eu_uk_tld
            elif cmp_key == "onetrust":
                ot_n += 1
                ot_eu += site.is_eu_uk_tld
        assert qc_n > 20 and ot_n > 20
        # Quantcast customers skew EU (38.3% vs 16.3% in the paper).
        assert qc_eu / qc_n > ot_eu / ot_n
