"""TCF v1.1 consent-string codec, including property-based round-trips."""

import base64
import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcf.consentstring import (
    BitReader,
    BitWriter,
    ConsentString,
    ConsentStringError,
    decode_consent_string,
)

CREATED = dt.datetime(2020, 5, 10, 12, 30, tzinfo=dt.timezone.utc)


def build(**kwargs):
    defaults = dict(
        cmp_id=10,
        vendor_list_version=180,
        max_vendor_id=100,
        allowed_purposes=(1, 2),
        vendor_consents=(1, 5, 99),
        created=CREATED,
    )
    defaults.update(kwargs)
    return ConsentString.build(**defaults)


class TestBitPlumbing:
    def test_roundtrip_ints(self):
        w = BitWriter()
        w.write_int(5, 6)
        w.write_int(1023, 12)
        r = BitReader(w.to_bytes())
        assert r.read_int(6) == 5
        assert r.read_int(12) == 1023

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            BitWriter().write_int(64, 6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_int(-1, 6)

    def test_letter_roundtrip(self):
        w = BitWriter()
        w.write_letter("E")
        w.write_letter("n")
        r = BitReader(w.to_bytes())
        assert r.read_letter() + r.read_letter() == "EN"

    def test_bad_letter(self):
        with pytest.raises(ValueError):
            BitWriter().write_letter("!")

    def test_truncated_read(self):
        r = BitReader(b"\x00")
        with pytest.raises(ConsentStringError):
            r.read_int(16)


class TestEncodeDecode:
    def test_roundtrip_basic(self):
        cs = build()
        assert decode_consent_string(cs.encode()) == cs

    def test_fields_survive(self):
        cs = build(cmp_version=3, consent_screen=2, consent_language="DE")
        back = decode_consent_string(cs.encode())
        assert back.cmp_id == 10
        assert back.cmp_version == 3
        assert back.consent_screen == 2
        assert back.consent_language == "DE"
        assert back.vendor_list_version == 180

    def test_created_decisecond_precision(self):
        cs = build()
        back = decode_consent_string(cs.encode())
        assert back.created == CREATED

    def test_webbase64_no_padding(self):
        encoded = build().encode()
        assert "=" not in encoded
        assert "+" not in encoded and "/" not in encoded

    def test_range_encoding_chosen_for_dense_consent(self):
        # All vendors consent: the range encoding is far smaller.
        cs = build(
            max_vendor_id=2000, vendor_consents=range(1, 2001)
        )
        sparse = build(max_vendor_id=2000, vendor_consents=(7,))
        assert len(cs.encode()) < 2000 / 4
        assert decode_consent_string(cs.encode()) == cs
        assert decode_consent_string(sparse.encode()) == sparse

    def test_bitfield_encoding_for_small_lists(self):
        cs = build(max_vendor_id=30, vendor_consents=(1, 3, 5, 7, 9, 20))
        assert decode_consent_string(cs.encode()) == cs

    def test_empty_consent(self):
        cs = build(allowed_purposes=(), vendor_consents=())
        back = decode_consent_string(cs.encode())
        assert back.is_full_opt_out

    def test_full_consent_flags(self):
        cs = build(allowed_purposes=(1, 2, 3, 4, 5))
        assert cs.consents_to_all_purposes

    def test_permits(self):
        cs = build(allowed_purposes=(1,), vendor_consents=(5,))
        assert cs.permits(5, 1)
        assert not cs.permits(5, 2)
        assert not cs.permits(6, 1)


class TestValidation:
    def test_unknown_purpose_rejected(self):
        with pytest.raises(ValueError):
            build(allowed_purposes=(9,))

    def test_vendor_above_max_rejected(self):
        with pytest.raises(ValueError):
            build(max_vendor_id=10, vendor_consents=(11,))

    def test_zero_max_vendor_rejected(self):
        with pytest.raises(ValueError):
            build(max_vendor_id=0)

    def test_language_length(self):
        with pytest.raises(ValueError):
            build(consent_language="ENG")


class TestDecodeErrors:
    def test_bad_base64(self):
        with pytest.raises(ConsentStringError):
            decode_consent_string("!!!not-base64!!!")

    def test_wrong_version(self):
        # Version 2 in the first six bits.
        data = bytes([2 << 2]) + b"\x00" * 30
        encoded = base64.urlsafe_b64encode(data).decode().rstrip("=")
        with pytest.raises(ConsentStringError, match="version"):
            decode_consent_string(encoded)

    def test_truncated_string(self):
        encoded = build().encode()
        with pytest.raises(ConsentStringError):
            decode_consent_string(encoded[:8])

    def test_empty_string(self):
        with pytest.raises(ConsentStringError):
            decode_consent_string("")


class TestPropertyBased:
    @settings(max_examples=150, deadline=None)
    @given(
        cmp_id=st.integers(min_value=0, max_value=4095),
        vlv=st.integers(min_value=0, max_value=4095),
        max_vendor=st.integers(min_value=1, max_value=400),
        purposes=st.sets(st.integers(min_value=1, max_value=5)),
        data=st.data(),
    )
    def test_roundtrip(self, cmp_id, vlv, max_vendor, purposes, data):
        vendors = data.draw(
            st.sets(st.integers(min_value=1, max_value=max_vendor))
        )
        cs = ConsentString.build(
            cmp_id=cmp_id,
            vendor_list_version=vlv,
            max_vendor_id=max_vendor,
            allowed_purposes=purposes,
            vendor_consents=vendors,
            created=CREATED,
        )
        back = decode_consent_string(cs.encode())
        assert back == cs
        assert back.vendor_consents == frozenset(vendors)
        assert back.allowed_purposes == frozenset(purposes)

    @settings(max_examples=60, deadline=None)
    @given(
        consenting_ratio=st.floats(min_value=0.0, max_value=1.0),
        max_vendor=st.integers(min_value=50, max_value=600),
    )
    def test_encoding_choice_is_lossless(self, consenting_ratio, max_vendor):
        # Whatever encoding the size heuristic picks, decoding recovers
        # the exact consent set.
        consenting = frozenset(
            v
            for v in range(1, max_vendor + 1)
            if (v * 2654435761 % 1000) / 1000.0 < consenting_ratio
        )
        cs = ConsentString.build(
            cmp_id=1,
            vendor_list_version=1,
            max_vendor_id=max_vendor,
            vendor_consents=consenting,
            created=CREATED,
        )
        assert decode_consent_string(cs.encode()).vendor_consents == consenting
