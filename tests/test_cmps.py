"""CMP behaviour models and dialog descriptors."""

import datetime as dt
import random
from collections import Counter

import pytest

from repro.cmps import onetrust, quantcast, trustarc, cookiebot, liveramp, crownpeak
from repro.cmps.base import (
    CMP_KEYS,
    CMPS,
    CmpModel,
    DialogButton,
    DialogDescriptor,
    cmp_by_key,
)

SAMPLERS = {
    "onetrust": onetrust.sample_dialog,
    "quantcast": quantcast.sample_dialog,
    "trustarc": trustarc.sample_dialog,
    "cookiebot": cookiebot.sample_dialog,
    "liveramp": liveramp.sample_dialog,
    "crownpeak": crownpeak.sample_dialog,
}


class TestRegistry:
    def test_all_six_present(self):
        assert set(CMPS.keys()) == set(CMP_KEYS)
        assert len(CMPS) == 6

    def test_lookup(self):
        assert cmp_by_key("quantcast").name == "Quantcast"

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            cmp_by_key("consentinator")

    def test_table_a2_hostnames(self):
        # The unique hostnames verbatim from Table A.2.
        expected = {
            "onetrust": "cdn.cookielaw.org",
            "quantcast": "quantcast.mgr.consensu.org",
            "trustarc": "consent.trustarc.com",
            "cookiebot": "consent.cookiebot.com",
            "liveramp": "cmp.choice.faktor.io",
            "crownpeak": "iabmap.evidon.com",
        }
        for key, host in expected.items():
            assert cmp_by_key(key).fingerprint_host == host

    def test_fingerprint_host_unique(self):
        hosts = [m.fingerprint_host for m in CMPS]
        assert len(hosts) == len(set(hosts))

    def test_liveramp_launch_date(self):
        # LiveRamp launched in December 2019 (Section 3.2).
        model = cmp_by_key("liveramp")
        assert model.launch_date == dt.date(2019, 12, 1)
        assert not model.available_on(dt.date(2019, 6, 1))
        assert model.available_on(dt.date(2020, 1, 1))

    def test_eu_tld_shares_from_paper(self):
        assert cmp_by_key("quantcast").eu_tld_share == pytest.approx(0.383)
        assert cmp_by_key("onetrust").eu_tld_share == pytest.approx(0.163)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            CmpModel(
                key="x", name="X", fingerprint_host="x.com",
                primary_market="MARS",
            )
        with pytest.raises(ValueError):
            CmpModel(
                key="x", name="X", fingerprint_host="x.com", eu_tld_share=1.5
            )


class TestDialogDescriptor:
    def test_button_action_validated(self):
        with pytest.raises(ValueError):
            DialogButton("X", "self-destruct")

    def test_button_page_validated(self):
        with pytest.raises(ValueError):
            DialogButton("X", "accept-all", page=0)

    def test_kind_validated(self):
        with pytest.raises(ValueError):
            DialogDescriptor(cmp_key="onetrust", kind="hologram")

    def test_region_validated(self):
        with pytest.raises(ValueError):
            DialogDescriptor(
                cmp_key="onetrust",
                kind="banner",
                shown_regions=frozenset({"MOON"}),
            )

    def test_first_page_reject(self):
        d = DialogDescriptor(
            cmp_key="quantcast",
            kind="modal",
            buttons=(
                DialogButton("NO", "reject-all"),
                DialogButton("YES", "accept-all"),
            ),
        )
        assert d.has_first_page_reject
        assert d.clicks_to_reject == 1

    def test_two_click_reject(self):
        d = DialogDescriptor(
            cmp_key="quantcast",
            kind="modal",
            buttons=(
                DialogButton("MORE", "more-options"),
                DialogButton("YES", "accept-all"),
                DialogButton("REJECT", "confirm-reject", page=2),
            ),
        )
        assert not d.has_first_page_reject
        assert d.clicks_to_reject == 2

    def test_no_reject_path(self):
        d = DialogDescriptor(
            cmp_key="trustarc",
            kind="banner",
            buttons=(DialogButton("OK", "accept-all"),),
        )
        assert d.clicks_to_reject == 0

    def test_shown_to_region(self):
        d = DialogDescriptor(
            cmp_key="trustarc",
            kind="banner",
            buttons=(DialogButton("OK", "accept-all"),),
            shown_regions=frozenset({"US"}),
        )
        assert d.shown_to("US")
        assert not d.shown_to("EU")

    def test_none_kind_never_shown(self):
        d = DialogDescriptor(cmp_key="onetrust", kind="none",
                             custom_api_only=True)
        assert not d.shown_to("EU")


class TestSamplers:
    @pytest.mark.parametrize("key", CMP_KEYS)
    def test_sampler_emits_own_cmp(self, key):
        rng = random.Random(0)
        for _ in range(50):
            d = SAMPLERS[key](rng)
            assert d.cmp_key == key

    def test_quantcast_direct_reject_share(self):
        rng = random.Random(1)
        dialogs = [quantcast.sample_dialog(rng) for _ in range(4000)]
        visible = [d for d in dialogs if d.kind != "none"]
        direct = sum(1 for d in visible if d.has_first_page_reject)
        # Section 4.1: 55% of Quantcast publishers offer 1-click reject.
        assert 0.50 < direct / len(visible) < 0.60

    def test_quantcast_wording_mix(self):
        from repro.core.customization import is_affirmative_wording

        rng = random.Random(2)
        dialogs = [quantcast.sample_dialog(rng) for _ in range(4000)]
        visible = [d for d in dialogs if d.accept_wording]
        affirmative = sum(
            1 for d in visible if is_affirmative_wording(d.accept_wording)
        )
        # Section 4.1: 87% use a variation of "I agree/consent/accept".
        assert 0.83 < affirmative / len(visible) < 0.91

    def test_onetrust_archetype_shares_sum_to_one(self):
        assert sum(s for _, s in onetrust.ARCHETYPE_SHARES) == pytest.approx(1.0)

    def test_onetrust_conventional_majority(self):
        rng = random.Random(3)
        kinds = Counter()
        for _ in range(3000):
            d = onetrust.sample_dialog(rng)
            kinds[d.kind] += 1
        assert kinds["banner"] > kinds["modal"]

    def test_trustarc_hidden_from_eu_share(self):
        rng = random.Random(4)
        dialogs = [trustarc.sample_dialog(rng) for _ in range(5000)]
        hidden = sum(1 for d in dialogs if "EU" not in d.shown_regions)
        # Section 4.1: 4.4% hide their dialog from EU IPs.
        assert 0.03 < hidden / len(dialogs) < 0.06

    def test_trustarc_waterfall_share(self):
        rng = random.Random(5)
        dialogs = [trustarc.sample_dialog(rng) for _ in range(5000)]
        waterfall = sum(1 for d in dialogs if d.opt_out_waterfall)
        # Section 4.1: 12% have a first-page opt-out with partner sync.
        assert 0.09 < waterfall / len(dialogs) < 0.15
