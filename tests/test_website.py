"""Website model: episodes, geo behaviour, subsites."""

import datetime as dt

import pytest

from repro.cmps.base import DialogButton, DialogDescriptor
from repro.web.website import CmpEpisode, Website


def dialog(cmp_key="quantcast"):
    return DialogDescriptor(
        cmp_key=cmp_key,
        kind="modal",
        buttons=(DialogButton("OK", "accept-all"),),
    )


def episode(cmp_key, start, end=None):
    return CmpEpisode(
        cmp_key=cmp_key,
        start=dt.date.fromisoformat(start),
        end=dt.date.fromisoformat(end) if end else None,
        dialog=dialog(cmp_key),
    )


class TestCmpEpisode:
    def test_active_window(self):
        ep = episode("quantcast", "2019-01-01", "2019-06-01")
        assert not ep.active_on(dt.date(2018, 12, 31))
        assert ep.active_on(dt.date(2019, 1, 1))
        assert ep.active_on(dt.date(2019, 5, 31))
        assert not ep.active_on(dt.date(2019, 6, 1))  # end exclusive

    def test_open_episode(self):
        ep = episode("quantcast", "2019-01-01")
        assert ep.active_on(dt.date(2030, 1, 1))

    def test_empty_episode_rejected(self):
        with pytest.raises(ValueError):
            episode("quantcast", "2019-06-01", "2019-06-01")

    def test_dialog_cmp_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different CMP"):
            CmpEpisode(
                cmp_key="onetrust",
                start=dt.date(2019, 1, 1),
                end=None,
                dialog=dialog("quantcast"),
            )


class TestWebsite:
    def site(self, episodes=()):
        return Website(rank=100, domain="example-2s.com", episodes=episodes)

    def test_cmp_on(self):
        site = self.site(
            (
                episode("cookiebot", "2018-06-01", "2019-06-01"),
                episode("onetrust", "2019-06-15"),
            )
        )
        assert site.cmp_on(dt.date(2018, 7, 1)) == "cookiebot"
        assert site.cmp_on(dt.date(2019, 6, 10)) is None  # the gap
        assert site.cmp_on(dt.date(2020, 1, 1)) == "onetrust"
        assert site.cmp_on(dt.date(2018, 1, 1)) is None

    def test_switches_detected(self):
        site = self.site(
            (
                episode("cookiebot", "2018-06-01", "2019-06-01"),
                episode("onetrust", "2019-06-15"),
            )
        )
        assert site.switches == (("cookiebot", "onetrust"),)

    def test_gap_too_large_is_not_a_switch(self):
        site = self.site(
            (
                episode("cookiebot", "2018-06-01", "2019-01-01"),
                episode("onetrust", "2019-06-01"),
            )
        )
        assert site.switches == ()

    def test_overlapping_episodes_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            self.site(
                (
                    episode("cookiebot", "2018-06-01", "2019-06-01"),
                    episode("onetrust", "2019-01-01"),
                )
            )

    def test_embeds_cmp_for_region(self):
        site = Website(
            rank=1,
            domain="x-1.com",
            episodes=(episode("quantcast", "2019-01-01"),),
            embed_regions=frozenset({"EU"}),
        )
        when = dt.date(2020, 1, 1)
        assert site.embeds_cmp_for("EU", when)
        assert not site.embeds_cmp_for("US", when)

    def test_no_embed_without_episode(self):
        site = self.site()
        assert not site.embeds_cmp_for("EU", dt.date(2020, 1, 1))
        assert not site.ever_used_cmp

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            Website(rank=0, domain="x.com")

    def test_reachability_validation(self):
        with pytest.raises(ValueError):
            Website(rank=1, domain="x.com", reachability="quantum")

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            Website(rank=1, domain="x.com", cmp_subsite_coverage=1.5)


class TestSubsites:
    def test_landing_page_path(self):
        site = Website(rank=1, domain="x.com", n_subsites=5)
        assert site.subsite_path(0) == "/"

    def test_article_paths(self):
        site = Website(rank=1, domain="x.com", n_subsites=5)
        assert site.subsite_path(3) == "/articles/3"

    def test_privacy_policy_path(self):
        site = Website(rank=1, domain="x.com", n_subsites=5)
        assert site.subsite_path(site.privacy_policy_index) == "/privacy-policy"

    def test_privacy_policy_never_embeds(self):
        site = Website(rank=1, domain="x.com", cmp_subsite_coverage=1.0)
        assert not site.subsite_embeds_cmp(site.privacy_policy_index)

    def test_full_coverage(self):
        site = Website(rank=1, domain="x.com", cmp_subsite_coverage=1.0)
        assert all(site.subsite_embeds_cmp(i) for i in range(site.n_subsites))

    def test_partial_coverage_is_deterministic(self):
        site = Website(rank=1, domain="x.com", cmp_subsite_coverage=0.5,
                       n_subsites=40)
        first = [site.subsite_embeds_cmp(i) for i in range(40)]
        second = [site.subsite_embeds_cmp(i) for i in range(40)]
        assert first == second
        assert any(first) and not all(first)

    def test_zero_coverage(self):
        site = Website(rank=1, domain="x.com", cmp_subsite_coverage=0.0)
        assert not any(site.subsite_embeds_cmp(i) for i in range(8))


class TestTlds:
    def test_eu_tld(self):
        assert Website(rank=1, domain="x.de").is_eu_uk_tld
        assert Website(rank=1, domain="x.co.uk").is_eu_uk_tld

    def test_non_eu_tld(self):
        assert not Website(rank=1, domain="x.com").is_eu_uk_tld
        assert not Website(rank=1, domain="x.co.jp").is_eu_uk_tld
