"""Statistics: Mann-Whitney U validated against scipy, descriptive stats."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.descriptive import (
    bootstrap_ci,
    five_number_summary,
    median,
    quantile,
)
from repro.stats.mannwhitney import _rankdata, mann_whitney_u

scipy_stats = pytest.importorskip("scipy.stats")


class TestRankdata:
    def test_no_ties(self):
        assert _rankdata([30, 10, 20]) == [3.0, 1.0, 2.0]

    def test_ties_get_midranks(self):
        assert _rankdata([1, 2, 2, 3]) == [1.0, 2.5, 2.5, 4.0]

    def test_all_equal(self):
        assert _rankdata([5, 5, 5]) == [2.0, 2.0, 2.0]

    def test_matches_scipy(self):
        rng = random.Random(0)
        data = [rng.randrange(10) for _ in range(50)]
        ours = _rankdata(data)
        theirs = scipy_stats.rankdata(data).tolist()
        assert ours == pytest.approx(theirs)


class TestMannWhitney:
    def test_clear_difference(self):
        a = [1.0, 1.1, 1.2, 1.3] * 10
        b = [5.0, 5.1, 5.2, 5.3] * 10
        result = mann_whitney_u(a, b)
        assert result.significant(0.001)
        assert result.u1 == 0.0

    def test_identical_distributions_not_significant(self):
        rng = random.Random(1)
        a = [rng.gauss(0, 1) for _ in range(100)]
        b = [rng.gauss(0, 1) for _ in range(100)]
        result = mann_whitney_u(a, b)
        assert result.p_value > 0.01

    def test_empty_sample_degenerate(self):
        # Regression: used to raise (ZeroDivisionError before the guard,
        # then ValueError); an empty side carries no evidence, so the
        # test reports the null outcome instead of dying.
        for a, b in ([], [1.0]), ([1.0], []), ([], []):
            result = mann_whitney_u(a, b)
            assert result.z == 0.0
            assert result.p_value == 1.0
            assert result.u1 == result.u2 == 0.0
            assert not result.significant()

    def test_all_identical_degenerate(self):
        # Regression: all-ties samples (zero tie-corrected variance)
        # are indistinguishable, not an error.
        result = mann_whitney_u([2.0, 2.0], [2.0, 2.0])
        assert result.z == 0.0
        assert result.p_value == 1.0
        # All ranks are the shared midrank: U1 = U2 = n1*n2/2.
        assert result.u1 == result.u2 == 2.0
        assert not result.significant()

    def test_all_ties_across_unequal_sizes_degenerate(self):
        result = mann_whitney_u([7.0] * 5, [7.0] * 3)
        assert result.p_value == 1.0
        assert result.u1 + result.u2 == 15.0

    def test_u1_plus_u2(self):
        a, b = [1.0, 3.0, 5.0], [2.0, 4.0]
        result = mann_whitney_u(a, b)
        assert result.u1 + result.u2 == len(a) * len(b)

    @settings(max_examples=60, deadline=None)
    @given(
        n1=st.integers(min_value=3, max_value=60),
        n2=st.integers(min_value=3, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
        ties=st.booleans(),
    )
    def test_matches_scipy_property(self, n1, n2, seed, ties):
        rng = random.Random(seed)
        if ties:
            a = [float(rng.randrange(6)) for _ in range(n1)]
            b = [float(rng.randrange(6)) for _ in range(n2)]
        else:
            a = [rng.gauss(0, 1) for _ in range(n1)]
            b = [rng.gauss(0.5, 1) for _ in range(n2)]
        if len(set(a) | set(b)) < 2:
            return
        ours = mann_whitney_u(a, b)
        theirs = scipy_stats.mannwhitneyu(
            a, b, alternative="two-sided", method="asymptotic"
        )
        assert ours.u1 == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6, abs=1e-9)

    def test_paper_style_report(self):
        # Shapes like the paper's U(N1=1344, N2=279), z=-2.93.
        rng = random.Random(7)
        accept = [3.2 * math.exp(rng.gauss(0, 0.5)) for _ in range(1344)]
        reject = [3.9 * math.exp(rng.gauss(0, 0.5)) for _ in range(279)]
        result = mann_whitney_u(accept, reject)
        assert result.n1 == 1344 and result.n2 == 279
        assert result.z < 0
        assert result.significant(0.01)


class TestQuantiles:
    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_quantile_bounds(self):
        data = [1.0, 2.0, 3.0]
        assert quantile(data, 0.0) == 1.0
        assert quantile(data, 1.0) == 3.0

    def test_quantile_matches_numpy(self):
        import numpy as np

        rng = random.Random(3)
        data = [rng.random() for _ in range(37)]
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert quantile(data, q) == pytest.approx(
                float(np.quantile(data, q))
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_five_number_summary(self):
        summary = five_number_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.minimum == 1.0
        assert summary.median == 3.0
        assert summary.maximum == 5.0
        assert summary.iqr == pytest.approx(2.0)


class TestBootstrap:
    def test_ci_contains_true_median(self):
        rng = random.Random(5)
        data = [rng.gauss(10.0, 2.0) for _ in range(300)]
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo < 10.0 < hi
        assert hi - lo < 1.5

    def test_deterministic(self):
        data = [1.0, 2.0, 3.0, 4.0, 100.0]
        assert bootstrap_ci(data, seed=2) == bootstrap_ci(data, seed=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)
