"""Flat-RSS scale-out invariants: bounded caches, spills, lazy shards.

The scale-out contract has two halves. Correctness: bounding the world
memo caches, spilling full capture segments to disk, and regenerating
shard events lazily are all *bit-invisible* -- every digest and every
resolution is identical to the unbounded in-memory run, across all
executor backends. Capacity: memory actually stays bounded -- the
negative host cache cannot outgrow its cap, and the spilling store's
footprint is set by the row budget, not the row count.
"""

import datetime as dt
import itertools
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import Study, StudyConfig
from repro.crawler.columnar import CaptureStore
from repro.crawler.executor import world_ref_for_backend
from repro.crawler.platform import (
    NetographPlatform,
    PlatformConfig,
    SocialShardSpec,
)
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.crawler.spill import SpillSettings, SpillingCaptureStore
from repro.crawler.storage import store_digest
from repro.obs import Observability
from repro.web.lru import MISSING, BoundedLRU
from repro.web.worldgen import (
    UNBOUNDED_CACHE_LIMITS,
    CacheLimits,
    World,
    WorldConfig,
)

WINDOW = (dt.date(2020, 3, 1), dt.date(2020, 3, 8))

#: Small enough to force constant eviction on a 300-domain world.
TINY_LIMITS = CacheLimits(
    sites=8, hosts=8, negative_hosts=4, visit_plans=8, share_urls=8
)


def small_config(**overrides):
    base = dict(
        seed=13,
        n_domains=700,
        toplist_size=60,
        events_per_day=25,
        study_start=WINDOW[0],
        study_end=WINDOW[1],
    )
    base.update(overrides)
    return StudyConfig(**base)


# ----------------------------------------------------------------------
# BoundedLRU: the eviction primitive under everything else
# ----------------------------------------------------------------------
class TestBoundedLRU:
    def test_evicts_least_recently_used(self):
        lru = BoundedLRU(maxsize=2)
        lru["a"] = 1
        lru["b"] = 2
        assert lru.get("a") == 1  # refresh "a"; "b" is now oldest
        lru["c"] = 3
        assert lru.get("b", MISSING) is MISSING
        assert lru.get("a") == 1
        assert lru.evictions == 1

    def test_unbounded_mode_never_evicts(self):
        lru = BoundedLRU(maxsize=None)
        for i in range(1000):
            lru[i] = i
        assert len(lru) == 1000
        assert lru.evictions == 0

    def test_on_evict_callback_sees_evicted_pair(self):
        evicted = []
        lru = BoundedLRU(maxsize=1, on_evict=lambda k, v: evicted.append((k, v)))
        lru["a"] = 1
        lru["b"] = 2
        assert evicted == [("a", 1)]

    def test_resize_trims_oldest(self):
        lru = BoundedLRU(maxsize=None)
        for i in range(10):
            lru[i] = i
        lru.resize(3)
        assert sorted(lru) == [7, 8, 9]
        lru.resize(None)  # back to unbounded keeps survivors
        assert len(lru) == 3

    def test_setdefault_matches_dict_semantics(self):
        lru = BoundedLRU(maxsize=4)
        assert lru.setdefault("a", 1) == 1
        assert lru.setdefault("a", 2) == 1
        assert lru["a"] == 1


# ----------------------------------------------------------------------
# Bounded world caches are bit-invisible
# ----------------------------------------------------------------------
class TestBoundedWorldBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 30),
        ranks=st.lists(st.integers(1, 300), min_size=1, max_size=50),
    )
    def test_sites_identical_under_tiny_caches(self, seed, ranks):
        """Eviction + regenerate-on-miss returns value-identical sites."""
        bounded = World(
            WorldConfig(seed=seed, n_domains=300), cache_limits=TINY_LIMITS
        )
        unbounded = World(
            WorldConfig(seed=seed, n_domains=300),
            cache_limits=UNBOUNDED_CACHE_LIMITS,
        )
        # Forward pass populates; the reversed pass revisits ranks the
        # tiny cache has long evicted (Website is a frozen dataclass,
        # so == is full value equality).
        for rank in itertools.chain(ranks, reversed(ranks)):
            assert bounded.site(rank) == unbounded.site(rank)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 20), hosts=st.data())
    def test_host_resolution_identical_under_tiny_caches(self, seed, hosts):
        bounded = World(
            WorldConfig(seed=seed, n_domains=200), cache_limits=TINY_LIMITS
        )
        unbounded = World(
            WorldConfig(seed=seed, n_domains=200),
            cache_limits=UNBOUNDED_CACHE_LIMITS,
        )
        candidates = [f"www.{bounded.site(r).domain}" for r in (1, 5, 40)]
        candidates += [f"ghost-{i}.external.test" for i in range(6)]
        picks = hosts.draw(
            st.lists(st.sampled_from(candidates), min_size=1, max_size=40)
        )
        for host in picks:
            a = bounded.host_to_site(host)
            b = unbounded.host_to_site(host)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.rank == b.rank

    def test_study_digest_identical_with_bounded_worker_worlds(self):
        baseline = Study(small_config()).run_social_crawl()
        study = Study(small_config())
        limits = CacheLimits(
            sites=64, hosts=64, negative_hosts=16, visit_plans=64,
            share_urls=64,
        )
        # Same platform wiring as Study.run_social_crawl, plus the
        # world-cache bounds knob.
        config = study.config
        platform = NetographPlatform(
            study.world,
            stream=SocialShareStream(
                study.world,
                StreamConfig(
                    seed=config.seed + 1,
                    events_per_day=config.events_per_day,
                ),
            ),
            config=PlatformConfig(
                seed=config.seed + 2, world_cache_limits=limits
            ),
        )
        bounded = platform.run(*WINDOW)
        assert store_digest(bounded) == store_digest(baseline)
        info = study.world.cache_info()
        assert len(info["sites"]) <= 64
        assert info["sites"].evictions > 0


# ----------------------------------------------------------------------
# Spilling store: bit-identical, cacheable, bounded
# ----------------------------------------------------------------------
class TestSpillBitIdentity:
    @pytest.mark.parametrize(
        "backend,parallelism",
        [("serial", 1), ("thread", 3), ("process", 2)],
    )
    def test_spill_digest_matches_plain(self, backend, parallelism):
        plain = Study(
            small_config(backend=backend, parallelism=parallelism)
        ).run_social_crawl()
        spilled = Study(
            small_config(
                backend=backend, parallelism=parallelism, memory_budget=40
            )
        ).run_social_crawl()
        try:
            assert isinstance(spilled, SpillingCaptureStore)
            if backend == "serial":
                assert spilled.n_segments > 0
            assert store_digest(spilled) == store_digest(plain)
        finally:
            spilled.cleanup()

    def test_spill_cold_warm_cache_round_trip(self, tmp_path):
        reference = Study(small_config()).run_social_crawl()
        config = small_config(
            cache_dir=str(tmp_path / "cache"), memory_budget=40
        )
        cold = Study(config).run_social_crawl()
        try:
            cold_digest = store_digest(cold)
        finally:
            cold.cleanup()
        warm = Study(config).run_social_crawl()
        assert store_digest(warm) == cold_digest == store_digest(reference)

    def test_spilling_store_peak_is_set_by_budget_not_rows(self, tmp_path):
        """tracemalloc smoke: same feed, ~unbounded vs budgeted peaks."""
        n_rows = 40_000

        def feed(store):
            for i in range(n_rows):
                store.append_row(
                    f"domain-{i % 20_000}.example",
                    730_000 + (i % 90),
                    ("onetrust", "quantcast", None)[i % 3],
                    i % 4,
                    1,
                )

        tracemalloc.start()
        plain = CaptureStore()
        feed(plain)
        plain_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        tracemalloc.start()
        spilling = SpillingCaptureStore(
            SpillSettings(row_budget=2_000, directory=str(tmp_path))
        )
        feed(spilling)
        spill_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        assert spilling.n_rows == plain.n_rows == n_rows
        assert spilling.n_segments >= n_rows // 2_000 - 1
        assert spill_peak < plain_peak / 2
        # Bounded observation did not corrupt anything: byte-identical.
        assert store_digest(spilling) == store_digest(plain)
        spilling.cleanup()


class TestSpillStoreAPI:
    """The facade's full surface, against plain-store ground truth."""

    def _fill(self, store, n=10):
        for i in range(n):
            store.append_row(
                f"site-{i % 4}.example", 737_000 + i, "onetrust" if i % 2 else None, 0, 2
            )

    def test_row_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            SpillSettings(row_budget=0)

    def test_add_paths_spill_like_append(self, tmp_path):
        import repro.crawler.capture as cap
        from repro.net.url import URL

        store = SpillingCaptureStore(
            SpillSettings(row_budget=2, directory=str(tmp_path))
        )
        when = dt.datetime(2020, 3, 1, 12, 0, 0)
        for i in range(3):
            url = URL(scheme="https", host=f"s{i}.example", path="/")
            store.add(
                cap.Capture(
                    capture_id=i,
                    seed_url=url,
                    final_url=url,
                    captured_at=when,
                    vantage=cap.EU_CLOUD,
                    status=200,
                ),
                "onetrust",
            )
        store.add_observation(
            cap.Observation("s9.example", when.date(), None)
        )
        assert store.n_rows == 4
        assert store.n_captures == 3  # add_observation records no capture
        assert store.n_segments >= 1
        assert store.total_requests == store.fold_in().total_requests

    def test_merge_accepts_plain_and_spilling(self, tmp_path):
        reference = CaptureStore()
        self._fill(reference, 20)

        donor_plain = CaptureStore()
        self._fill(donor_plain, 20)
        donor_spill = SpillingCaptureStore(
            SpillSettings(row_budget=3, directory=str(tmp_path / "donor"))
        )
        self._fill(donor_spill, 20)

        a = SpillingCaptureStore(
            SpillSettings(row_budget=3, directory=str(tmp_path / "a"))
        )
        a.merge(donor_plain)
        b = SpillingCaptureStore(
            SpillSettings(row_budget=3, directory=str(tmp_path / "b"))
        )
        b.merge(donor_spill)
        assert store_digest(a) == store_digest(b) == store_digest(reference)

    def test_streaming_reads_cross_segment_boundaries(self, tmp_path):
        plain = CaptureStore()
        self._fill(plain, 17)
        spilling = SpillingCaptureStore(
            SpillSettings(row_budget=5, directory=str(tmp_path))
        )
        self._fill(spilling, 17)
        assert list(spilling.iter_rows()) == list(plain.iter_rows())
        for cursor in (0, 4, 5, 12, 17):
            assert spilling.rows_since(cursor) == plain.rows_since(cursor)
        with pytest.raises(ValueError):
            spilling.rows_since(-1)

    def test_whole_store_views_delegate_to_fold(self, tmp_path):
        plain = CaptureStore()
        self._fill(plain, 12)
        spilling = SpillingCaptureStore(
            SpillSettings(row_budget=4, directory=str(tmp_path))
        )
        self._fill(spilling, 12)
        assert spilling.captures == []
        assert spilling.unique_domains == plain.unique_domains
        assert spilling.by_domain() == plain.by_domain()
        assert spilling.observations_for("site-1.example") == (
            plain.observations_for("site-1.example")
        )
        assert spilling.domains_with_cmp() == plain.domains_with_cmp()
        assert spilling.domain_day_rows() == plain.domain_day_rows()
        assert spilling.observations == plain.observations

    def test_pickle_round_trip_drops_fold_cache(self, tmp_path):
        import pickle

        spilling = SpillingCaptureStore(
            SpillSettings(row_budget=4, directory=str(tmp_path))
        )
        self._fill(spilling, 12)
        digest = store_digest(spilling)  # populates the fold cache
        clone = pickle.loads(pickle.dumps(spilling))
        assert clone._fold_cache is None
        assert store_digest(clone) == digest

    def test_cleanup_tolerates_missing_files_and_shared_dirs(self, tmp_path):
        import pathlib

        spilling = SpillingCaptureStore(
            SpillSettings(row_budget=2, directory=str(tmp_path))
        )
        self._fill(spilling, 6)
        paths = [pathlib.Path(p) for p in spilling.segment_paths()]
        assert paths and all(p.exists() for p in paths)
        paths[0].unlink()  # already-gone segment must not raise
        (tmp_path / "unrelated.txt").write_text("keep")
        spilling.cleanup()
        assert not any(p.exists() for p in paths)
        assert (tmp_path / "unrelated.txt").exists()  # shared dir kept

    def test_empty_store_never_spills(self, tmp_path):
        spilling = SpillingCaptureStore(
            SpillSettings(row_budget=1, directory=str(tmp_path))
        )
        spilling.merge(CaptureStore())  # triggers the empty-spill check
        assert spilling.n_segments == 0
        assert spilling.n_rows == 0


class TestBoundedLRUSurface:
    """The rest of the dict drop-in surface (worldgen uses it all)."""

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            BoundedLRU(maxsize=0)
        with pytest.raises(ValueError):
            BoundedLRU(maxsize=4).resize(0)

    def test_contains_delete_pop_clear_views(self):
        lru = BoundedLRU(maxsize=4)
        lru["a"] = 1
        lru["b"] = 2
        assert "a" in lru and "z" not in lru
        assert lru.pop("a") == 1
        assert lru.pop("z", "fallback") == "fallback"
        with pytest.raises(KeyError):
            lru.pop("z")
        del lru["b"]
        lru["c"] = 3
        assert list(lru.values()) == [3]
        assert list(lru.items()) == [("c", 3)]
        lru.clear()
        assert len(lru) == 0

    def test_touch_of_concurrently_evicted_key_is_benign(self):
        lru = BoundedLRU(maxsize=2)
        lru._touch("never-inserted")  # the racing-eviction code path

    def test_resize_reports_evictions_through_callback(self):
        evicted = []
        lru = BoundedLRU(
            maxsize=None, on_evict=lambda k, v: evicted.append(k)
        )
        for i in range(5):
            lru[i] = i
        lru.resize(2)
        assert evicted == [0, 1, 2]
        assert lru.evictions == 3


# ----------------------------------------------------------------------
# Negative host cache: bounded, still correct after eviction
# ----------------------------------------------------------------------
class TestNegativeHostCache:
    def test_unknown_hosts_cannot_grow_the_cache_past_its_cap(self):
        world = World(
            WorldConfig(seed=3, n_domains=200),
            cache_limits=CacheLimits(negative_hosts=16),
        )
        misses = [f"gone-{i}.external.test" for i in range(100)]
        for host in misses:
            assert world.host_to_site(host) is None
        negative = world.cache_info()["negative_hosts"]
        assert len(negative) <= 16
        assert negative.evictions >= len(misses) - 16
        # Evicted misses re-resolve to the same answer...
        assert world.host_to_site(misses[0]) is None
        # ...and positive resolution is untouched by the churn.
        site = world.site(7)
        resolved = world.host_to_site(f"www.{site.domain}")
        assert resolved is not None and resolved.rank == 7


# ----------------------------------------------------------------------
# Lazy shard regeneration: same events, same order, same ids
# ----------------------------------------------------------------------
class TestLazyShardEquality:
    def _spec(self, world, stream):
        runs = []
        for offset in range(3):
            day = WINDOW[0] + dt.timedelta(days=offset)
            n = len(stream.events_for_day(day))
            # Every 3rd emitted event, plus one empty day run shape
            # exercised by offset 2 taking nothing early on.
            indices = tuple(range(offset, n, 3))
            runs.append((day.toordinal(), indices))
        return SocialShardSpec(
            shard_id=0,
            world_ref=world_ref_for_backend(world, "serial"),
            config=PlatformConfig(),
            stream_config=stream.config,
            runs=tuple(runs),
            first_capture_id=17,
        )

    def test_iter_day_chunks_matches_materialize(self):
        world = World(WorldConfig(seed=5, n_domains=300))
        stream = SocialShareStream(world)
        spec = self._spec(world, stream)
        lazy = tuple(itertools.chain.from_iterable(spec.iter_day_chunks(world)))
        assert lazy == spec.materialize(world)

    def test_iter_events_matches_eager_day_lists(self):
        world = World(WorldConfig(seed=5, n_domains=300))
        stream = SocialShareStream(world)
        start, end = WINDOW[0], WINDOW[0] + dt.timedelta(days=3)
        eager = []
        day = start
        while day < end:
            eager.extend(stream.events_for_day(day))
            day += dt.timedelta(days=1)
        assert list(stream.iter_events(start, end)) == eager


# ----------------------------------------------------------------------
# Gauges: the memory story is observable
# ----------------------------------------------------------------------
class TestScaleGauges:
    def test_platform_run_exports_world_cache_and_rss_gauges(self):
        study = Study(small_config())
        obs = Observability()
        platform = NetographPlatform(study.world, obs=obs)
        platform.run(WINDOW[0], WINDOW[0] + dt.timedelta(days=2))
        names = {record["metric"] for record in obs.metrics.snapshot()}
        assert "world_cache_hits" in names
        assert "world_cache_entries" in names
        assert "world_cache_evictions" in names
        assert "process_peak_rss_mb" in names
