"""The post-cutover GVL v2 evolution."""

import datetime as dt

import pytest

from repro.core.gvl_analysis import GvlAnalysis
from repro.tcf.gvlgen import GvlGenConfig, generate_gvl_history
from repro.tcf.v2.gvl2gen import Gvl2GenConfig, generate_gvl2_history
from repro.tcf.v2.purposes import PURPOSE_IDS_V2


@pytest.fixture(scope="module")
def v2_history():
    v1 = generate_gvl_history(
        GvlGenConfig(seed=6, initial_vendors=80,
                     last_date=dt.date(2018, 9, 1))
    )
    return generate_gvl2_history(
        v1[-1],
        Gvl2GenConfig(seed=21, last_date=dt.date(2021, 2, 1)),
    )


class TestGeneration:
    def test_starts_at_cutover_with_migrated_list(self, v2_history):
        first = v2_history[0]
        assert first.version == 1
        assert first.last_updated == dt.date(2020, 8, 15)
        assert len(first) > 0

    def test_weekly_cadence(self, v2_history):
        gaps = {
            (b.last_updated - a.last_updated).days
            for a, b in zip(v2_history, v2_history[1:])
        }
        assert gaps == {7}

    def test_deterministic(self):
        v1 = generate_gvl_history(
            GvlGenConfig(seed=6, initial_vendors=30,
                         last_date=dt.date(2018, 7, 1))
        )
        cfg = Gvl2GenConfig(seed=3, last_date=dt.date(2020, 11, 1))
        a = generate_gvl2_history(v1[-1], cfg)
        b = generate_gvl2_history(v1[-1], cfg)
        assert [v.to_json() for v in a] == [v.to_json() for v in b]

    def test_vendors_valid(self, v2_history):
        for vendor in v2_history[-1].vendors:
            assert vendor.flexible_purpose_ids <= vendor.declared_purposes
            assert not vendor.purpose_ids & vendor.leg_int_purpose_ids

    def test_list_keeps_growing(self, v2_history):
        assert len(v2_history[-1]) >= len(v2_history[0])


class TestV2Dynamics:
    def test_purpose_10_gets_adopted(self, v2_history):
        first_hist = v2_history[0].purpose_histogram("any")
        last_hist = v2_history[-1].purpose_histogram("any")
        # Migrated lists start with nobody on P10; adoption follows.
        assert first_hist[10] == 0
        assert last_hist[10] > 0

    def test_flexible_purposes_emerge(self, v2_history):
        flexible_last = sum(
            len(v.flexible_purpose_ids) for v in v2_history[-1].vendors
        )
        flexible_first = sum(
            len(v.flexible_purpose_ids) for v in v2_history[0].vendors
        )
        assert flexible_last > flexible_first

    def test_analysis_over_v2(self, v2_history):
        analysis = GvlAnalysis(
            list(v2_history), purpose_ids=PURPOSE_IDS_V2
        )
        assert analysis.most_declared_purpose() == 1
        assert analysis.net_li_to_consent() >= 0
        series = analysis.purpose_series()
        assert set(series) == set(PURPOSE_IDS_V2)

    def test_continuity_with_v1_figure7(self, v2_history):
        # The v2 curve picks up where v1 left off: same vendor ids on
        # the first v2 version as on the migrated v1 list.
        v1 = generate_gvl_history(
            GvlGenConfig(seed=6, initial_vendors=80,
                         last_date=dt.date(2018, 9, 1))
        )
        assert v2_history[0].vendor_ids == v1[-1].vendor_ids
