"""Differential parity: graph queries vs the `core/` references.

Every query in :mod:`repro.graph.query` that shadows an existing
analysis must produce **byte-identical** payloads to the original
derivation -- over the default study fixtures, over a faulted/retried
run, and on the serial and process executor backends. Parity is always
asserted on canonical JSON bytes, never on floats with tolerance.
"""

import dataclasses
import datetime as dt
import json

import pytest

from repro.core.adoption import AdoptionSeries
from repro.core.gvl_analysis import GvlAnalysis
from repro.core.marketshare import (
    default_sizes,
    marketshare_by_toplist_size,
    observed_marketshare,
)
from repro.core.pipeline import Study, StudyConfig
from repro.core.vantage import VantageTable
from repro.crawler.columnar import VANTAGE_STRS
from repro.crawler.storage import store_digest
from repro.faults import FaultSpec, FaultSchedule
from repro.faults.retry import FAST_TEST_POLICY
from repro.graph import (
    adoption_series,
    build_study_graph,
    country_fig5,
    fig5_curve,
    graph_countries,
    gvl_churn,
    observed_curve,
    observes_degree,
    toplist_ranks,
    vantage_table,
)
from repro.tcf.purposes import PURPOSE_IDS
from repro.toplist.providers import per_country_toplists

MAY_2020 = dt.date(2020, 5, 15)

#: Transient faults the retry policy always recovers (same shape as the
#: chaos invariants), so the faulted run exercises the retry machinery
#: while staying deterministic.
TRANSIENT = FaultSchedule(
    seed=13,
    specs=(
        FaultSpec("dns-error", rate=0.15, attempts=1),
        FaultSpec("connection-reset", rate=0.12, attempts=2),
    ),
)


def canon(payload) -> str:
    """Canonical JSON bytes -- the unit of every parity assertion."""
    return json.dumps(payload, sort_keys=True)


def reference_gvl_churn(versions) -> dict:
    """The `core/` GVL derivation, re-encoded in the graph payload shape."""
    ana = GvlAnalysis(versions)
    return {
        "vendor_counts": [
            [d.isoformat(), n] for d, n in ana.vendor_count_series()
        ],
        "purpose_series": {
            basis: [
                [pid, [[d.isoformat(), n] for d, n in series[pid]]]
                for pid in PURPOSE_IDS
            ]
            for basis, series in sorted(
                (b, ana.purpose_series(b))
                for b in ("any", "consent", "legitimate-interest")
            )
        },
        "membership": [
            [d.isoformat(), j, l] for d, j, l in ana.membership_series()
        ],
        "change_series": [
            [d.isoformat(), [[k, c[k]] for k in sorted(c)]]
            for d, c in ana.change_series()
        ],
        "events": [[k, n] for k, n in sorted(ana.change_events().items())],
        "net_li_to_consent": ana.net_li_to_consent(),
    }


def store_rows_for_vantage(store):
    return (
        (VANTAGE_STRS[vantage], domain, cmp_key)
        for domain, _ordinal, cmp_key, vantage in store.iter_rows()
    )


@pytest.fixture(scope="module")
def graph(study, social_store, gvl_history):
    """The default study's graph, through the `Study` facade."""
    return study.build_graph(social_store, gvl_versions=gvl_history)


class TestDefaultStudyParity:
    def test_adoption_series_bit_identical(self, graph, social_store):
        ref = AdoptionSeries.from_columnar(social_store)
        assert canon(adoption_series(graph).to_payload()) == canon(
            ref.to_payload()
        )

    def test_adoption_series_restricted_bit_identical(
        self, graph, study, social_store
    ):
        restrict = study.toplist_domains[:100]
        ref = AdoptionSeries.from_columnar(social_store, set(restrict))
        got = adoption_series(graph, restrict)
        assert canon(got.to_payload()) == canon(ref.to_payload())

    def test_vantage_table_bit_identical(self, graph, social_store):
        ref = VantageTable.from_stream_rows(
            store_rows_for_vantage(social_store)
        )
        assert canon(vantage_table(graph).to_payload()) == canon(
            ref.to_payload()
        )

    def test_observed_marketshare_bit_identical(
        self, graph, study, social_store
    ):
        depth = study.config.toplist_size
        ranks = {
            domain: position
            for position, domain in enumerate(
                study.tranco.top(depth), start=1
            )
        }
        assert toplist_ranks(graph) == ranks
        sizes = default_sizes(depth)
        ref = observed_marketshare(
            AdoptionSeries.from_columnar(social_store), ranks, MAY_2020, sizes
        )
        got = observed_curve(graph, MAY_2020, sizes)
        assert canon(got.to_payload()) == canon(ref.to_payload())

    def test_fig5_exact_path_bit_identical(self, graph, study):
        # The graph holds RANK/ADOPTED edges to the study's toplist
        # depth; evaluate the reference over the same prefixes.
        sizes = default_sizes(study.config.toplist_size)
        ref = marketshare_by_toplist_size(
            study.world, study.tranco, MAY_2020, sizes
        )
        got = fig5_curve(graph, MAY_2020, sizes)
        assert canon(got.to_payload()) == canon(ref.to_payload())

    def test_fig5_sampling_path_bit_identical(self, study):
        # Force the seeded-sampling strata with a tiny exact limit; the
        # graph query must replay the reference's exact rng sequence.
        graph = build_study_graph(
            world=study.world, tranco=study.tranco, ranking_depth=None
        )
        sizes = [100, 2_000, len(study.tranco)]
        kwargs = dict(exact_limit=150, samples_per_stratum=50)
        ref = marketshare_by_toplist_size(
            study.world, study.tranco, MAY_2020, sizes, **kwargs
        )
        got = fig5_curve(graph, MAY_2020, sizes, **kwargs)
        assert canon(got.to_payload()) == canon(ref.to_payload())

    def test_gvl_churn_bit_identical(self, graph, gvl_history):
        assert canon(gvl_churn(graph)) == canon(
            reference_gvl_churn(gvl_history)
        )

    def test_observes_degree_matches_store(self, graph, social_store):
        seen = {}
        for domain, _ordinal, cmp_key, _vantage in social_store.iter_rows():
            if cmp_key is not None:
                seen.setdefault(cmp_key, set()).add(domain)
        degrees = observes_degree(graph)
        for cmp_key, domains in seen.items():
            assert degrees[cmp_key] == len(domains)


class TestPerCountryFig5:
    def test_at_least_three_countries_end_to_end(self, graph, study):
        countries = graph_countries(graph)
        assert len(countries) >= 3
        toplists = per_country_toplists(
            study.world, study.tranco, max_rank=study.config.toplist_size
        )
        # Ground truth per country: walk the bucketed prefixes directly
        # against the synthetic world's episode state.
        depth = study.config.toplist_size
        site_of = {
            domain: study.world.site(int(rank))
            for domain, rank in zip(
                study.tranco.top(depth),
                study.tranco.top_true_ranks(depth).tolist(),
            )
        }
        checked = 0
        for country in countries:
            curve = country_fig5(graph, country, MAY_2020)
            toplist = toplists[country]
            assert curve.sizes == [
                len(toplist.domains_within(b)) for b in toplist.buckets()
            ]
            for i, bucket in enumerate(toplist.buckets()):
                expected = {}
                for domain in toplist.domains_within(bucket):
                    cmp_key = site_of[domain].cmp_on(MAY_2020)
                    if cmp_key is not None:
                        expected[cmp_key] = expected.get(cmp_key, 0) + 1
                for cmp_key, series in curve.counts.items():
                    assert series[i] == float(expected.get(cmp_key, 0))
            checked += 1
        assert checked >= 3

    def test_unknown_country_lists_available(self, graph):
        from repro.graph import GraphError

        with pytest.raises(GraphError, match="XX"):
            country_fig5(graph, "XX", MAY_2020)


class TestStudyGraphCache:
    def test_warm_rebuild_is_bit_identical(self, tmp_path, gvl_history):
        config = StudyConfig(
            seed=5,
            n_domains=1_000,
            toplist_size=100,
            events_per_day=40,
            study_start=dt.date(2020, 3, 1),
            study_end=dt.date(2020, 3, 15),
            cache_dir=str(tmp_path),
        )
        cold = Study(config)
        graph = cold.build_graph(
            cold.run_social_crawl(), gvl_versions=gvl_history
        )
        warm = Study(config)
        rebuilt = warm.build_graph(
            warm.run_social_crawl(), gvl_versions=gvl_history
        )
        assert rebuilt.digest() == graph.digest()
        assert canon(rebuilt.to_payload()) == canon(graph.to_payload())


class TestFaultedAndBackendParity:
    """Parity must survive fault injection/retries and executor choice."""

    WINDOW = (dt.date(2020, 3, 1), dt.date(2020, 4, 1))

    def faulted_config(self, **overrides):
        return StudyConfig(
            seed=11,
            n_domains=1_500,
            toplist_size=150,
            events_per_day=60,
            study_start=self.WINDOW[0],
            study_end=self.WINDOW[1],
            faults=TRANSIENT,
            retry=FAST_TEST_POLICY,
            **overrides,
        )

    @pytest.fixture(scope="class")
    def serial_run(self):
        study = Study(self.faulted_config())
        store = study.run_social_crawl()
        return study, store

    def assert_query_parity(self, study, store):
        graph = study.build_graph(store)
        ref = AdoptionSeries.from_columnar(store)
        assert canon(adoption_series(graph).to_payload()) == canon(
            ref.to_payload()
        )
        ref_table = VantageTable.from_stream_rows(store_rows_for_vantage(store))
        assert canon(vantage_table(graph).to_payload()) == canon(
            ref_table.to_payload()
        )
        depth = study.config.toplist_size
        ranks = {
            domain: position
            for position, domain in enumerate(
                study.tranco.top(depth), start=1
            )
        }
        date = self.WINDOW[1]
        sizes = default_sizes(depth)
        ref_curve = observed_marketshare(ref, ranks, date, sizes)
        assert canon(observed_curve(graph, date, sizes).to_payload()) == canon(
            ref_curve.to_payload()
        )
        return graph

    def test_faulted_serial_parity(self, serial_run):
        self.assert_query_parity(*serial_run)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_faulted_parallel_backend_parity(self, serial_run, backend):
        _, serial_store = serial_run
        study = Study(
            dataclasses.replace(
                self.faulted_config(), parallelism=2, backend=backend
            )
        )
        store = study.run_social_crawl()
        # The determinism contract: backends produce the same store...
        assert store_digest(store) == store_digest(serial_store)
        # ...and therefore the same graph and the same query bytes.
        graph = self.assert_query_parity(study, store)
        serial_graph = serial_run[0].build_graph(serial_store)
        assert graph.digest() == serial_graph.digest()
