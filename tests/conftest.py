"""Shared fixtures.

Expensive artefacts (worlds, crawl stores, GVL histories) are built once
per session; tests treat them as read-only.
"""

import datetime as dt

import pytest

from repro.core.pipeline import Study, StudyConfig
from repro.tcf.gvlgen import GvlGenConfig, generate_gvl_history
from repro.web.worldgen import World, WorldConfig

MAY_2020 = dt.date(2020, 5, 15)
JAN_2020 = dt.date(2020, 1, 15)


@pytest.fixture(scope="session")
def world():
    """A small deterministic world shared by read-only tests."""
    return World(WorldConfig(seed=7, n_domains=5_000))


@pytest.fixture(scope="session")
def study():
    """A wired study over a small world."""
    return Study(
        StudyConfig(seed=7, n_domains=5_000, toplist_size=400, events_per_day=150)
    )


@pytest.fixture(scope="session")
def social_store(study):
    """A three-month social-media crawl (a few thousand captures)."""
    return study.run_social_crawl(dt.date(2020, 3, 1), dt.date(2020, 6, 1))


@pytest.fixture(scope="session")
def gvl_history():
    """A shortened GVL history (fast to generate, same dynamics)."""
    return generate_gvl_history(
        GvlGenConfig(seed=20, initial_vendors=60, last_date=dt.date(2019, 6, 1))
    )


@pytest.fixture(scope="session")
def full_gvl_history():
    """The full 215-version history used by the calibration tests."""
    return generate_gvl_history()
