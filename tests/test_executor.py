"""The sharded crawl executor and its determinism contract.

The load-bearing guarantee: for a fixed seed, the platform produces the
*identical* observation sequence no matter the worker count, backend, or
shard layout. This is what makes the parallel substrate trustworthy for
longitudinal analyses -- a re-run on different hardware can never shift a
figure.
"""

import datetime as dt

import pytest

from repro.core.pipeline import Study, StudyConfig
from repro.crawler.executor import (
    CrawlExecutor,
    ExecutorConfig,
    partition,
    partition_grouped,
)
from repro.crawler.platform import (
    CaptureStore,
    NetographPlatform,
    PlatformConfig,
)
from repro.crawler.capture import EU_CLOUD, US_CLOUD, Observation
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.crawler.toplist_crawl import ToplistCrawler

START = dt.date(2020, 4, 1)
END = dt.date(2020, 4, 7)
MAY = dt.date(2020, 5, 15)


def _fresh_platform(study):
    return NetographPlatform(
        study.world,
        stream=SocialShareStream(
            study.world, StreamConfig(seed=11, events_per_day=150)
        ),
        config=PlatformConfig(seed=23),
    )


def _run(study, executor=None):
    platform = _fresh_platform(study)
    store = platform.run(START, END, executor=executor)
    return platform, store


def _keys(store):
    """Fully comparable projection of the observation sequence."""
    return [
        (o.domain, o.date, o.cmp_key, o.vantage.region, o.vantage.address_space)
        for o in store.observations
    ]


@pytest.fixture(scope="module")
def serial_run(study):
    return _run(study)


class TestDeterminism:
    """Serial == threads == processes, observation for observation."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_matches_serial(self, study, serial_run, backend):
        serial_platform, serial_store = serial_run
        executor = CrawlExecutor(ExecutorConfig(workers=4, backend=backend))
        platform, store = _run(study, executor=executor)

        assert _keys(store) == _keys(serial_store)
        assert store.n_captures == serial_store.n_captures
        assert store.total_requests == serial_store.total_requests
        assert store.unique_domains == serial_store.unique_domains
        assert sorted(store.domains_with_cmp()) == sorted(
            serial_store.domains_with_cmp()
        )
        assert platform.stats.events == serial_platform.stats.events
        assert platform.stats.crawls == serial_platform.stats.crawls
        assert platform.stats.failures == serial_platform.stats.failures
        assert (
            platform.queue.stats.skip_rate
            == serial_platform.queue.stats.skip_rate
        )

    def test_serial_backend_config_stays_serial(self, study, serial_run):
        _, serial_store = serial_run
        executor = CrawlExecutor(ExecutorConfig(workers=4, backend="serial"))
        platform, store = _run(study, executor=executor)
        assert _keys(store) == _keys(serial_store)
        # No fan-out happened, so no executor stats are recorded.
        assert platform.stats.executor is None

    def test_executor_stats_populated(self, study, serial_run):
        executor = CrawlExecutor(ExecutorConfig(workers=4, backend="thread"))
        platform, store = _run(study, executor=executor)
        stats = platform.stats.executor
        assert stats is not None
        assert stats.backend == "thread"
        assert stats.workers == 4
        assert 1 <= stats.n_shards <= 4 * executor.config.shards_per_worker
        assert stats.crawls == platform.stats.crawls == store.n_captures
        assert stats.failures == platform.stats.failures
        assert sum(s.tasks for s in stats.shards) == store.n_captures
        assert stats.wall_seconds > 0
        assert stats.merge_seconds >= 0
        assert all(s.seconds >= 0 for s in stats.shards)

    def test_store_continuation_across_parallel_runs(self, study):
        executor = CrawlExecutor(ExecutorConfig(workers=2, backend="thread"))
        platform = _fresh_platform(study)
        store = platform.run(START, dt.date(2020, 4, 3), executor=executor)
        n_first = store.n_captures
        platform.run(
            dt.date(2020, 4, 3), dt.date(2020, 4, 5),
            store=store, executor=executor,
        )
        assert store.n_captures > n_first

        serial = _fresh_platform(study)
        serial_store = serial.run(START, dt.date(2020, 4, 5))
        assert _keys(store) == _keys(serial_store)

    def test_vantage_independent_of_history(self, study):
        """An event's vantage must not depend on how many crawls ran
        before it: a run over a superset window assigns the same vantage
        to the shared days."""
        short = _fresh_platform(study).run(START, dt.date(2020, 4, 2))
        long = _fresh_platform(study).run(START, dt.date(2020, 4, 4))
        n = len(short.observations)
        assert _keys(short) == _keys(long)[:n]


class TestToplistExecutor:
    @pytest.fixture(scope="class")
    def domains(self, study):
        return study.tranco.top(60)

    def test_parallel_matches_serial(self, study, domains):
        configs = ("us-cloud", "eu-univ-default")
        serial = ToplistCrawler(study.world).run(domains, MAY, configs)
        executor = CrawlExecutor(ExecutorConfig(workers=4, backend="thread"))
        parallel = ToplistCrawler(study.world).run(
            domains, MAY, configs, executor=executor
        )
        assert serial.probes == parallel.probes
        assert serial.captures == parallel.captures
        # Insertion order (toplist order) is preserved by the merge.
        for name in configs:
            assert list(serial.captures[name]) == list(parallel.captures[name])
        stats = parallel.executor_stats
        assert stats is not None
        assert stats.crawls >= sum(
            len(caps) for caps in parallel.captures.values()
        )

    def test_process_backend_matches_serial(self, study, domains):
        configs = ("eu-cloud",)
        serial = ToplistCrawler(study.world).run(domains[:20], MAY, configs)
        executor = CrawlExecutor(ExecutorConfig(workers=2, backend="process"))
        parallel = ToplistCrawler(study.world).run(
            domains[:20], MAY, configs, executor=executor
        )
        assert serial.captures == parallel.captures


class TestCaptureStoreMerge:
    def _obs(self, domain, day, cmp_key=None, vantage=EU_CLOUD):
        return Observation(
            domain=domain, date=dt.date(2020, 4, day),
            cmp_key=cmp_key, vantage=vantage,
        )

    def test_merge_combines_counts_and_buckets(self):
        a, b = CaptureStore(), CaptureStore()
        a.add_observation(self._obs("x.com", 1))
        a.add_observation(self._obs("y.com", 2, "onetrust"))
        b.add_observation(self._obs("x.com", 3))
        b.add_observation(self._obs("z.com", 1, "quantcast", US_CLOUD))
        a.total_requests, b.total_requests = 10, 7
        a.n_captures, b.n_captures = 2, 2
        a.merge(b)
        assert a.n_captures == 4
        assert a.total_requests == 17
        assert len(a.observations) == 4
        assert a.unique_domains == 3
        assert [o.date.day for o in a.by_domain()["x.com"]] == [1, 3]
        assert sorted(a.domains_with_cmp()) == ["y.com", "z.com"]

    def test_merge_resorts_out_of_order_dates(self):
        a, b = CaptureStore(), CaptureStore()
        a.add_observation(self._obs("x.com", 5))
        b.add_observation(self._obs("x.com", 2))
        b.add_observation(self._obs("x.com", 9))
        a.merge(b)
        assert [o.date.day for o in a.by_domain()["x.com"]] == [2, 5, 9]

    def test_in_order_appends_keep_insertion_order(self):
        store = CaptureStore()
        for day in (1, 2, 3):
            store.add_observation(self._obs("x.com", day))
        assert [o.date.day for o in store.by_domain()["x.com"]] == [1, 2, 3]

    def test_snapshots_are_immutable(self):
        store = CaptureStore()
        store.add_observation(self._obs("x.com", 1))
        first = store.by_domain()
        store.add_observation(self._obs("x.com", 2))
        store.add_observation(self._obs("y.com", 1))
        second = store.by_domain()
        assert first is not second
        assert len(first["x.com"]) == 1
        assert "y.com" not in first
        assert len(second["x.com"]) == 2
        # Unchanged between queries -> the same snapshot is reused.
        assert store.by_domain() is second

    def test_merge_respects_snapshot_immutability(self):
        a, b = CaptureStore(), CaptureStore()
        a.add_observation(self._obs("x.com", 1))
        snapshot = a.by_domain()
        b.add_observation(self._obs("x.com", 2))
        a.merge(b)
        assert len(snapshot["x.com"]) == 1
        assert len(a.by_domain()["x.com"]) == 2


class TestShardDerivation:
    def test_partition_balanced_and_ordered(self):
        chunks = partition(list(range(10)), 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert partition([], 4) == []
        assert partition([1], 5) == [[1]]

    def test_partition_grouped_splits_at_day_edges(self):
        items = [(d, i) for d in range(4) for i in range(5)]
        chunks = partition_grouped(items, 2, key=lambda item: item[0])
        assert [item for chunk in chunks for item in chunk] == items
        assert len(chunks) == 2
        for chunk in chunks:
            days = [d for d, _ in chunk]
            # No day is split across chunks.
            assert days == sorted(days)
        boundary_days = {chunk[0][0] for chunk in chunks[1:]}
        for chunk in chunks[:-1]:
            assert chunk[-1][0] not in boundary_days

    def test_partition_grouped_falls_back_for_few_groups(self):
        items = [(0, i) for i in range(8)]
        chunks = partition_grouped(items, 4, key=lambda item: item[0])
        assert len(chunks) == 4
        assert [item for chunk in chunks for item in chunk] == items


class TestExecutorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutorConfig(workers=0)
        with pytest.raises(ValueError):
            ExecutorConfig(backend="quantum")
        with pytest.raises(ValueError):
            ExecutorConfig(shards_per_worker=0)

    def test_parallel_property(self):
        assert not ExecutorConfig(workers=1).parallel
        assert not ExecutorConfig(workers=8, backend="serial").parallel
        assert ExecutorConfig(workers=2, backend="thread").parallel
        assert ExecutorConfig(workers=2, backend="process").parallel

    def test_n_shards(self):
        config = ExecutorConfig(workers=4, backend="thread",
                                shards_per_worker=4)
        assert config.n_shards(1000) == 16
        assert config.n_shards(5) == 5
        assert config.n_shards(0) == 1
        assert ExecutorConfig(workers=1).n_shards(1000) == 1


class TestStudyWiring:
    def test_parallel_study_matches_serial_study(self):
        base = dict(seed=7, n_domains=1_000, toplist_size=100,
                    events_per_day=80)
        serial = Study(StudyConfig(**base))
        parallel = Study(
            StudyConfig(**base, parallelism=3, backend="thread")
        )
        window = (dt.date(2020, 4, 1), dt.date(2020, 4, 5))
        s_store = serial.run_social_crawl(*window)
        p_store = parallel.run_social_crawl(*window)
        assert _keys(p_store) == _keys(s_store)
        assert parallel.last_crawl_stats.executor is not None
        assert serial.last_crawl_stats.executor is None

    def test_executor_property(self):
        assert Study(StudyConfig(n_domains=1_000)).executor is None
        study = Study(
            StudyConfig(n_domains=1_000, parallelism=2, backend="process")
        )
        assert study.executor is not None
        assert study.executor.config.workers == 2
        assert study.executor.config.backend == "process"
