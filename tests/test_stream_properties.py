"""Hypothesis equivalence properties for the streaming path.

Random row feeds, random watermark cuts: the incremental accumulators
and the live expiring state must be byte-identical to the batch
derivations over the same prefix -- including after a checkpoint
save/restore cycle at the engine level.
"""

import datetime as dt
import json
import tempfile
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adoption import AdoptionAccumulator, AdoptionSeries, DomainTimeline
from repro.core.marketshare import MarketShareAccumulator
from repro.core.vantage import VantageAccumulator, VantageTable
from repro.crawler.columnar import CaptureStore
from repro.stream.state import LiveAdoptionState

DOMAINS = [f"d{i}.example" for i in range(8)]
CMPS = [None, "onetrust", "quantcast", "cookiebot"]
CONFIGS = ["eu-univ", "us-univ", "eu-univ-extended"]
BASE = dt.date(2020, 1, 1).toordinal()

rows_st = st.lists(
    st.tuples(
        st.sampled_from(DOMAINS),
        st.integers(min_value=0, max_value=45),
        st.sampled_from(CMPS),
    ),
    max_size=120,
)


def _payload_bytes(payload) -> str:
    return json.dumps(payload, sort_keys=True)


@settings(max_examples=60, deadline=None)
@given(rows=rows_st, cuts=st.tuples(st.floats(0, 1), st.floats(0, 1)))
def test_adoption_accumulator_matches_batch_at_any_cut(rows, cuts):
    """Incremental series == from_columnar over the same prefix, with a
    mid-feed snapshot to exercise the dirty-domain rebuild path."""
    mid, end = sorted(int(c * len(rows)) for c in cuts)
    acc = AdoptionAccumulator()
    for i, (domain, off, cmp_key) in enumerate(rows[:end]):
        acc.add(domain, BASE + off, cmp_key)
        if i + 1 == mid:
            acc.series()  # snapshot mid-feed; must not perturb later ones
    store = CaptureStore()
    for domain, off, cmp_key in rows[:end]:
        store.append_row(domain, BASE + off, cmp_key, 0, 1)
    batch = AdoptionSeries.from_columnar(store)
    assert _payload_bytes(acc.series().to_payload()) == _payload_bytes(
        batch.to_payload()
    )


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.sampled_from(CONFIGS),
            st.sampled_from(DOMAINS),
            st.sampled_from(CMPS),
        ),
        max_size=100,
    ),
    cut=st.floats(0, 1),
)
def test_vantage_accumulator_matches_batch_at_any_cut(rows, cut):
    prefix = rows[: int(cut * len(rows))]
    acc = VantageAccumulator()
    for config, domain, cmp_key in prefix:
        acc.add(config, domain, cmp_key)
    batch = VantageTable.from_stream_rows(prefix)
    assert _payload_bytes(acc.table().to_payload()) == _payload_bytes(
        batch.to_payload()
    )


@settings(max_examples=60, deadline=None)
@given(rows=rows_st, watermark=st.integers(min_value=0, max_value=50))
def test_live_state_matches_batch_timeline_at_watermark(rows, watermark):
    """The expiring-state view at watermark W equals, for every domain,
    the batch interpolated timeline built from the rows finalized by W."""
    live = LiveAdoptionState()
    for domain, off, cmp_key in rows:
        live.buffer_row(domain, BASE + off, cmp_key)
    live.finalize_through(BASE + watermark)

    when = dt.date.fromordinal(BASE + watermark)
    expected = Counter()
    for domain in DOMAINS:
        final = [
            (BASE + off, cmp_key)
            for d, off, cmp_key in rows
            if d == domain and off <= watermark
        ]
        state = DomainTimeline.from_day_rows(domain, final).state_on(when)
        assert live.state_of(domain) == state
        if state is not None:
            expected[state] += 1
    assert live.counts == expected


@settings(max_examples=40, deadline=None)
@given(
    rows=rows_st,
    w1=st.integers(min_value=0, max_value=50),
    w2=st.integers(min_value=0, max_value=50),
)
def test_live_state_watermark_cut_invariance(rows, w1, w2):
    """Finalizing in two steps (random interior cut) is identical to
    finalizing once -- the watermark is a pure cut point."""
    w1, w2 = sorted((w1, w2))
    stepped = LiveAdoptionState()
    direct = LiveAdoptionState()
    for domain, off, cmp_key in rows:
        stepped.buffer_row(domain, BASE + off, cmp_key)
        direct.buffer_row(domain, BASE + off, cmp_key)
    transitions = stepped.finalize_through(BASE + w1)
    transitions += stepped.finalize_through(BASE + w2)
    assert direct.finalize_through(BASE + w2) == transitions
    assert stepped.counts == direct.counts
    for domain in DOMAINS:
        assert stepped.state_of(domain) == direct.state_of(domain)
    assert stepped.n_pending_days == direct.n_pending_days


@settings(max_examples=40, deadline=None)
@given(rows=rows_st, watermark=st.integers(min_value=0, max_value=50))
def test_marketshare_accumulator_tracks_live_state(rows, watermark):
    """Feeding the live state's transitions into the O(1) accumulator
    reproduces the per-prefix counts computed from scratch."""
    ranks = {domain: i + 1 for i, domain in enumerate(DOMAINS)}
    sizes = [2, 5, len(DOMAINS)]
    live = LiveAdoptionState()
    acc = MarketShareAccumulator(ranks, sizes)
    for domain, off, cmp_key in rows:
        live.buffer_row(domain, BASE + off, cmp_key)
    for domain, old, new in live.finalize_through(BASE + watermark):
        acc.transition(domain, old, new)

    curve = acc.curve(dt.date.fromordinal(BASE + watermark))
    for i, size in enumerate(sizes):
        expected = Counter()
        for domain, rank in ranks.items():
            state = live.state_of(domain)
            if state is not None and rank <= size:
                expected[state] += 1
        for cmp_key, series in curve.counts.items():
            assert series[i] == expected.get(cmp_key, 0)


# ----------------------------------------------------------------------
# Engine-level: random checkpoint/resume cuts stay byte-identical
# ----------------------------------------------------------------------
_CTX: dict = {}


def _ctx():
    """Shared world/cache for the engine-level property (built lazily so
    collection stays cheap). One persistent cache dir serves every
    example: checkpoints are keyed by watermark, so re-writing one is a
    deterministic overwrite."""
    if not _CTX:
        import dataclasses

        from repro.core.pipeline import Study, StudyConfig

        tmp = tempfile.mkdtemp(prefix="stream-prop-")
        cfg = StudyConfig(
            seed=23,
            n_domains=800,
            toplist_size=200,
            events_per_day=60,
            study_start=dt.date(2020, 3, 1),
            study_end=dt.date(2020, 3, 11),
        )
        _CTX.update(
            Study=Study,
            replace=dataclasses.replace,
            cfg=dataclasses.replace(cfg, cache_dir=tmp),
            batch_study=Study(cfg),
            batch_refs={},
            checkpoints={},
        )
    return _CTX


def _batch_reference(ctx, end):
    ref = ctx["batch_refs"].get(end)
    if ref is None:
        from repro.crawler.storage import store_digest

        store = ctx["batch_study"].run_social_crawl(ctx["cfg"].study_start, end)
        series = ctx["batch_study"].adoption_series(store)
        ref = (store_digest(store), _payload_bytes(series.to_payload()))
        ctx["batch_refs"][end] = ref
    return ref


@settings(max_examples=6, deadline=None)
@given(cut=st.integers(min_value=1, max_value=8), extra=st.integers(1, 4))
def test_engine_checkpoint_resume_byte_identity(cut, extra):
    """Checkpoint at a random day, resume in a fresh engine, run to a
    random later day: store digest and adoption payload match a batch
    run over the same window."""
    from repro.crawler.storage import store_digest

    ctx = _ctx()
    start = ctx["cfg"].study_start
    checkpoint_day = start + dt.timedelta(days=cut)
    end = min(
        start + dt.timedelta(days=cut + extra), ctx["cfg"].study_end
    )

    if cut not in ctx["checkpoints"]:
        cold = ctx["Study"](ctx["cfg"]).streaming_engine()
        cold.run_until(checkpoint_day)
        assert cold.checkpoint() is not None
        ctx["checkpoints"][cut] = True

    resumed = ctx["Study"](ctx["cfg"]).streaming_engine(
        resume=True, watermark=checkpoint_day - dt.timedelta(days=1)
    )
    resumed.run_until(end)

    digest, adoption = _batch_reference(ctx, end)
    assert store_digest(resumed.store) == digest
    assert _payload_bytes(resumed.adoption_series().to_payload()) == adoption
