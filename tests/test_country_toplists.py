"""Per-country CrUX-shaped toplists (`repro.toplist.providers`).

Includes the regression test for the deterministic tie-break bugfix:
equal-rank (same-bucket) domains must order by ``(bucket, domain)``,
never by aggregate-list/dict insertion order -- and a DET004
lint-cleanliness check over the new modules.
"""

from pathlib import Path

import pytest

from repro.toplist.providers import (
    COUNTRY_OF_TLD,
    EU_COUNTRIES,
    RANK_BUCKETS,
    CountryToplist,
    country_of_domain,
    per_country_toplists,
    rank_bucket,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class FakeTranco:
    """A toplist with a fully controlled aggregate order."""

    def __init__(self, domains):
        self._domains = list(domains)

    def __len__(self):
        return len(self._domains)

    def top(self, n):
        return self._domains[:n]


class TestCountryAttribution:
    def test_cctld_maps_to_country(self):
        assert country_of_domain("example.de") == "DE"
        assert country_of_domain("shop.fr") == "FR"

    def test_generic_tlds_attribute_to_us(self):
        assert country_of_domain("example.com") == "US"
        assert country_of_domain("example.org") == "US"

    def test_unknown_tld_falls_into_zz(self):
        assert country_of_domain("example.unknown-tld") == "ZZ"

    def test_eu_countries_all_have_a_tld(self):
        assert set(EU_COUNTRIES) <= set(COUNTRY_OF_TLD.values())


class TestRankBucket:
    def test_smallest_covering_magnitude(self):
        assert rank_bucket(1) == 1_000
        assert rank_bucket(1_000) == 1_000
        assert rank_bucket(1_001) == 10_000
        assert rank_bucket(999_999_999) == RANK_BUCKETS[-1]

    def test_custom_buckets(self):
        assert rank_bucket(3, buckets=(2, 4, 8)) == 4

    def test_rejects_non_positive_rank(self):
        with pytest.raises(ValueError, match="1-based"):
            rank_bucket(0)


class TestPerCountryToplists:
    def test_buckets_assigned_by_country_rank(self):
        # Three .de domains with buckets (2, 4): country ranks 1-2 land
        # in bucket 2, rank 3 in bucket 4 -- positions are *within* the
        # country, not aggregate positions.
        tranco = FakeTranco(
            ["a.com", "b.de", "c.de", "d.com", "e.de"]
        )
        lists = per_country_toplists(None, tranco, buckets=(2, 4))
        assert lists["DE"].entries == (
            (2, "b.de"),
            (2, "c.de"),
            (4, "e.de"),
        )
        assert lists["US"].entries == ((2, "a.com"), (2, "d.com"))

    def test_regression_equal_rank_ties_break_by_domain(self):
        # The bugfix: zz.de and aa.de share a bucket; the published
        # entries must sort by name, not by aggregate-list order.
        tranco = FakeTranco(["zz.de", "aa.de", "mm.de"])
        toplist = per_country_toplists(None, tranco, buckets=(10,))["DE"]
        assert toplist.entries == ((10, "aa.de"), (10, "mm.de"), (10, "zz.de"))
        assert toplist.entries == tuple(sorted(toplist.entries))

    def test_countries_returned_sorted_and_complete(self):
        tranco = FakeTranco(["a.de", "b.fr", "c.com", "d.unknown-tld"])
        lists = per_country_toplists(None, tranco)
        assert list(lists) == sorted(lists)
        assert set(lists) == {"DE", "FR", "US", "ZZ"}

    def test_max_rank_truncates_the_walk(self):
        tranco = FakeTranco(["a.de", "b.de", "c.de"])
        lists = per_country_toplists(None, tranco, max_rank=2)
        assert len(lists["DE"]) == 2

    def test_real_study_lists_are_canonical(self, study):
        lists = per_country_toplists(
            study.world, study.tranco, max_rank=study.config.toplist_size
        )
        assert len(lists) >= 3
        total = 0
        for country, toplist in lists.items():
            assert toplist.country == country
            assert toplist.entries == tuple(sorted(toplist.entries))
            total += len(toplist)
        # Every aggregate-toplist domain lands in exactly one country.
        assert total == study.config.toplist_size


class TestCountryToplistAccessors:
    TOPLIST = CountryToplist(
        country="DE",
        entries=((2, "a.de"), (2, "b.de"), (4, "c.de"), (8, "d.de")),
    )

    def test_domains_within_bucket_prefix(self):
        assert self.TOPLIST.domains_within(2) == ["a.de", "b.de"]
        assert self.TOPLIST.domains_within(4) == ["a.de", "b.de", "c.de"]

    def test_buckets_ascending(self):
        assert self.TOPLIST.buckets() == [2, 4, 8]


class TestLintCleanliness:
    def test_new_modules_are_det004_clean(self):
        """The per-country provider and the graph package iterate no
        unordered collections (DET004) and carry no other findings."""
        from repro.lint import DEFAULT_CONFIG, lint_paths

        result = lint_paths(
            [
                REPO_ROOT / "src" / "repro" / "toplist" / "providers.py",
                REPO_ROOT / "src" / "repro" / "graph",
            ],
            DEFAULT_CONFIG,
            root=REPO_ROOT,
        )
        assert [f.rule for f in result.findings] == []
