"""The one-command reproduction report."""

import datetime as dt

import pytest

from repro.core.pipeline import Study, StudyConfig
from repro.core.report import ReportOptions, generate_report


@pytest.fixture(scope="module")
def report_text():
    study = Study(
        StudyConfig(seed=7, n_domains=3_000, toplist_size=600,
                    events_per_day=120)
    )
    options = ReportOptions(
        longitudinal_start=dt.date(2020, 2, 1),
        longitudinal_end=dt.date(2020, 5, 1),
    )
    return generate_report(study, options)


class TestReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "Table 1",
            "Figure 5",
            "Section 4.1",
            "Section 7",
            "Figure 6",
            "Figure 4",
            "Figures 7/8",
            "Figures 9/10",
            "Section 5.2",
        ):
            assert heading in report_text

    def test_contains_vantage_table(self, report_text):
        assert "us-cloud" in report_text
        assert "Coverage" in report_text

    def test_markdown_tables_wellformed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_sections_can_be_disabled(self):
        study = Study(
            StudyConfig(seed=7, n_domains=3_000, toplist_size=400)
        )
        text = generate_report(
            study,
            ReportOptions(
                include_longitudinal=False,
                include_gvl=False,
                include_timing=False,
            ),
        )
        assert "Figure 6" not in text
        assert "Figures 7/8" not in text
        assert "Table 1" in text

    def test_deterministic(self):
        def build():
            study = Study(
                StudyConfig(seed=9, n_domains=3_000, toplist_size=400)
            )
            return generate_report(
                study,
                ReportOptions(
                    include_longitudinal=False,
                    include_gvl=False,
                    include_timing=False,
                ),
            )

        assert build() == build()
