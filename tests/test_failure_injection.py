"""Failure injection: the pipeline under hostile conditions.

The estimators and platform must degrade gracefully -- never crash, and
fail in the *conservative* direction (undercounting, not inventing CMP
presence) -- when the world misbehaves.
"""

import dataclasses
import datetime as dt

import pytest

from repro.core.adoption import AdoptionSeries, DomainTimeline
from repro.crawler.browser import crawl_url
from repro.crawler.capture import EU_CLOUD, EU_UNIVERSITY, Observation
from repro.crawler.executor import CrawlExecutor, ExecutorConfig
from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.net.url import URL
from repro.web.worldgen import World, WorldConfig

MAY = dt.date(2020, 5, 15)
NOON = dt.datetime(2020, 5, 15, 12)


class TestDeadWorld:
    """A world where every crawled site has been killed."""

    @pytest.fixture()
    def dead_world(self):
        world = World(WorldConfig(seed=7, n_domains=500))
        for rank in range(1, 501):
            site = world.site(rank)
            world._cache[rank] = dataclasses.replace(
                site, reachability="unreachable", redirects_to=None
            )
        return world

    @pytest.mark.parametrize(
        "backend,workers",
        [("serial", 1), ("thread", 3), ("process", 2)],
    )
    def test_platform_survives(self, dead_world, backend, workers):
        # Hostile conditions must not crash any executor backend; the
        # process backend sees the patched world via the fork-inherited
        # worker world cache.
        platform = NetographPlatform(
            dead_world,
            stream=SocialShareStream(
                dead_world, StreamConfig(seed=1, events_per_day=100)
            ),
            config=PlatformConfig(seed=2),
        )
        executor = CrawlExecutor(
            ExecutorConfig(workers=workers, backend=backend)
        )
        store = platform.run(
            dt.date(2020, 4, 1), dt.date(2020, 4, 4), executor=executor
        )
        assert platform.stats.crawls > 0
        assert platform.stats.failure_rate == 1.0
        # Nothing is detected; nothing crashes.
        assert store.domains_with_cmp() == ()

    def test_series_over_failed_captures(self, dead_world):
        platform = NetographPlatform(dead_world)
        store = platform.run(dt.date(2020, 4, 1), dt.date(2020, 4, 3))
        series = AdoptionSeries.from_store(store.by_domain())
        assert series.total_on(MAY) == 0


class TestHostileObservations:
    def test_contradictory_same_day_observations(self):
        # Three CMPs claimed for one domain on one day: the daily vote
        # settles it without crashing.
        observations = [
            Observation("x.com", MAY, "quantcast", EU_CLOUD),
            Observation("x.com", MAY, "onetrust", EU_CLOUD),
            Observation("x.com", MAY, "onetrust", EU_CLOUD),
            Observation("x.com", MAY, None, EU_CLOUD),
        ]
        tl = DomainTimeline.from_observations("x.com", observations)
        assert tl.state_on(MAY) == "onetrust"

    def test_unordered_observations(self):
        observations = [
            Observation("x.com", dt.date(2020, 3, 1), "quantcast", EU_CLOUD),
            Observation("x.com", dt.date(2020, 1, 1), "quantcast", EU_CLOUD),
            Observation("x.com", dt.date(2020, 2, 1), "quantcast", EU_CLOUD),
        ]
        tl = DomainTimeline.from_observations("x.com", observations)
        assert tl.state_on(dt.date(2020, 2, 15)) == "quantcast"

    def test_duplicate_observations(self):
        obs = Observation("x.com", MAY, "quantcast", EU_CLOUD)
        tl = DomainTimeline.from_observations("x.com", [obs] * 50)
        assert tl.state_on(MAY) == "quantcast"

    def test_single_none_observation(self):
        tl = DomainTimeline.from_observations(
            "x.com", [Observation("x.com", MAY, None, EU_CLOUD)]
        )
        assert tl.state_on(MAY) is None
        assert tl.cmp_stints == ()


class TestCrawlEdgeCases:
    def test_crawl_of_public_suffix_host(self, world):
        # A URL whose host is a bare public suffix must not crash the
        # final-domain normalization.
        cap = crawl_url(
            world,
            URL.parse("https://github.io/"),
            when=NOON,
            vantage=EU_UNIVERSITY,
        )
        assert cap.final_domain == "github.io"
        assert not cap.succeeded

    def test_crawl_with_tiny_cutoff(self, world):
        from repro.crawler.browser import CrawlProfile

        site = world.site(5)
        cap = crawl_url(
            world,
            URL.parse(f"https://www.{site.domain}/"),
            when=NOON,
            vantage=EU_UNIVERSITY,
            profile=CrawlProfile(name="instant", cutoff=0.001),
        )
        # Almost everything times out; the capture is still well-formed.
        assert cap.timed_out
        assert all(tx.started_at < 0.001 for tx in cap.transactions)
        assert cap.storage_records == ()

    def test_fragment_heavy_seed(self, world):
        site = world.site(8)
        cap = crawl_url(
            world,
            URL.parse(f"https://www.{site.domain}/#some-fragment"),
            when=NOON,
            vantage=EU_UNIVERSITY,
        )
        assert cap.final_domain == site.domain
