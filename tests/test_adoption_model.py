"""The calibrated adoption model."""

import datetime as dt
import random

import pytest

from repro.cmps.base import CMP_KEYS, cmp_by_key
from repro.web.adoption import (
    AdoptionModel,
    first_cmp_weights,
    p_cmp_may2020,
    p_ever_adopter,
    sample_adoption_date,
)


class TestPrevalenceCurve:
    def test_top_sites_near_zero(self):
        assert p_cmp_may2020(1) < 0.005
        assert p_cmp_may2020(10) < 0.02

    def test_peak_in_mid_market(self):
        peak = p_cmp_may2020(1_000)
        assert peak > p_cmp_may2020(50)
        assert peak > p_cmp_may2020(100_000)
        assert peak > 0.12

    def test_long_tail_never_vanishes(self):
        assert 0.0 < p_cmp_may2020(1_000_000) < 0.02

    def test_monotone_decline_after_peak(self):
        values = [p_cmp_may2020(r) for r in (1_000, 5_000, 10_000, 100_000, 1_000_000)]
        assert values == sorted(values, reverse=True)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            p_cmp_may2020(0)

    def test_ever_adopter_exceeds_snapshot(self):
        for rank in (100, 1_000, 10_000):
            assert p_ever_adopter(rank) > p_cmp_may2020(rank)


class TestMixes:
    def test_quantcast_dominates_top100(self):
        mix = first_cmp_weights(50)
        assert mix["quantcast"] > sum(
            v for k, v in mix.items() if k != "quantcast"
        ) - mix["quantcast"] * 0.1  # more than the others combined (approx)
        assert mix["quantcast"] >= 0.5

    def test_onetrust_leads_mid_market(self):
        mix = first_cmp_weights(5_000)
        assert mix["onetrust"] == max(mix.values())

    def test_quantcast_leads_long_tail(self):
        mix = first_cmp_weights(500_000)
        assert mix["quantcast"] == max(mix.values())

    def test_all_cmps_in_every_mix(self):
        for rank in (50, 300, 5_000, 100_000):
            assert set(first_cmp_weights(rank)) == set(CMP_KEYS)


class TestAdoptionDates:
    def test_dates_respect_windows(self):
        rng = random.Random(0)
        for key in CMP_KEYS:
            launch = cmp_by_key(key).launch_date
            for _ in range(200):
                date = sample_adoption_date(rng, key)
                assert date >= min(launch, dt.date(2017, 6, 1))
                assert date <= dt.date(2020, 9, 30)

    def test_liveramp_never_before_launch(self):
        rng = random.Random(1)
        for _ in range(300):
            assert sample_adoption_date(rng, "liveramp") >= dt.date(2019, 12, 1)

    def test_quantcast_gdpr_concentration(self):
        rng = random.Random(2)
        dates = [sample_adoption_date(rng, "quantcast") for _ in range(3000)]
        in_2018 = sum(1 for d in dates if d.year == 2018)
        assert in_2018 / len(dates) > 0.45


class TestHistorySampling:
    def test_deterministic_per_rng(self):
        model = AdoptionModel()
        a = model.sample_history(random.Random("x"), 1_000)
        b = model.sample_history(random.Random("x"), 1_000)
        assert a == b

    def test_non_adopters_common_in_tail(self):
        model = AdoptionModel()
        histories = [
            model.sample_history(random.Random(i), 500_000)
            for i in range(300)
        ]
        adopters = sum(1 for h in histories if h.ever_adopted)
        assert adopters < 30

    def test_stints_are_ordered(self):
        model = AdoptionModel()
        for i in range(2000):
            h = model.sample_history(random.Random(i), 2_000)
            for (k1, s1, e1), (k2, s2, e2) in zip(h.stints, h.stints[1:]):
                assert e1 is not None and e1 <= s2
                assert k1 != k2

    def test_stints_respect_launch_dates(self):
        model = AdoptionModel()
        for i in range(3000):
            h = model.sample_history(random.Random(i), 2_000)
            for key, start, _ in h.stints:
                assert start >= cmp_by_key(key).launch_date

    def test_cmp_on_queries_history(self):
        model = AdoptionModel()
        h = next(
            h
            for i in range(500)
            if (h := model.sample_history(random.Random(i), 1_000)).ever_adopted
        )
        key, start, end = h.stints[0]
        assert h.cmp_on(start) == key
        assert h.cmp_on(start - dt.timedelta(days=1)) != key or True
        assert h.cmp_on(dt.date(2015, 1, 1)) is None
