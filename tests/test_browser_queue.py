"""Browser simulator (timeouts, capture assembly) and the capture queue."""

import datetime as dt

import pytest

from repro.crawler.browser import (
    DEFAULT_PROFILE,
    EXTENDED_PROFILE,
    CrawlProfile,
    crawl_url,
)
from repro.crawler.capture import EU_UNIVERSITY, US_CLOUD, Vantage
from repro.crawler.queue import CaptureQueue
from repro.detect.engine import detect_cmp
from repro.detect.fingerprints import fingerprint_for
from repro.net.url import URL

MAY = dt.date(2020, 5, 15)
NOON = dt.datetime(2020, 5, 15, 12, 0)


def find_site(world, predicate, limit=5000):
    for rank in range(1, limit + 1):
        site = world.site(rank)
        if predicate(site):
            return site
    raise AssertionError("no matching site")


class TestVantage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Vantage("ASIA", "cloud")
        with pytest.raises(ValueError):
            Vantage("EU", "submarine")

    def test_str(self):
        assert str(US_CLOUD) == "US-cloud"


class TestCrawl:
    def test_basic_capture(self, world):
        site = find_site(
            world,
            lambda s: s.reachability == "https"
            and not s.is_infrastructure
            and s.redirects_to is None,
        )
        cap = crawl_url(
            world,
            URL.parse(f"https://www.{site.domain}/"),
            when=NOON,
            vantage=EU_UNIVERSITY,
        )
        assert cap.succeeded
        assert cap.final_domain == site.domain
        assert cap.n_requests > 0
        assert cap.captured_at == NOON

    def test_timeout_cuts_slow_cmp(self, world):
        site = find_site(
            world,
            lambda s: s.slow_loader
            and s.cmp_on(MAY) is not None
            and s.cmp_on_landing
            and not s.behind_antibot_cdn
            and s.redirects_to is None,
        )
        url = URL.parse(f"https://www.{site.domain}/")
        fast = crawl_url(
            world, url, when=NOON, vantage=EU_UNIVERSITY,
            profile=DEFAULT_PROFILE,
        )
        slow = crawl_url(
            world, url, when=NOON, vantage=EU_UNIVERSITY,
            profile=EXTENDED_PROFILE,
        )
        assert fast.timed_out
        assert detect_cmp(fast).cmp_key is None
        assert detect_cmp(slow).cmp_key == site.cmp_on(MAY)

    def test_dom_only_stored_when_requested(self, world):
        site = find_site(
            world,
            lambda s: s.cmp_on(MAY) is not None
            and s.cmp_on_landing
            and not s.behind_antibot_cdn
            and not s.slow_loader
            and s.redirects_to is None,
        )
        url = URL.parse(f"https://www.{site.domain}/")
        without = crawl_url(world, url, when=NOON, vantage=EU_UNIVERSITY)
        with_dom = crawl_url(
            world, url, when=NOON, vantage=EU_UNIVERSITY,
            profile=EXTENDED_PROFILE,
        )
        assert without.dom_dialog is None
        assert with_dom.dom_dialog is not None

    def test_final_domain_follows_redirects(self, world):
        alias = find_site(world, lambda s: s.redirects_to is not None)
        cap = crawl_url(
            world,
            URL.parse(f"https://www.{alias.domain}/"),
            when=NOON,
            vantage=EU_UNIVERSITY,
        )
        assert cap.final_domain == alias.redirects_to

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            CrawlProfile(name="bad", cutoff=0.0)


class TestQueue:
    URL_A = URL.parse("https://a.com/x")
    URL_B = URL.parse("https://a.com/y")
    URL_C = URL.parse("https://b.org/x")
    T0 = dt.datetime(2020, 1, 1, 12, 0)

    def test_first_submission_accepted(self):
        q = CaptureQueue()
        assert q.submit(self.URL_A, self.T0)

    def test_same_url_within_48h_skipped(self):
        q = CaptureQueue()
        q.submit(self.URL_A, self.T0)
        assert not q.submit(self.URL_A, self.T0 + dt.timedelta(hours=47))
        assert q.stats.skipped_url == 1

    def test_same_url_after_48h_accepted(self):
        q = CaptureQueue()
        q.submit(self.URL_A, self.T0)
        assert q.submit(self.URL_A, self.T0 + dt.timedelta(hours=49))

    def test_same_domain_within_1h_skipped(self):
        q = CaptureQueue()
        q.submit(self.URL_A, self.T0)
        assert not q.submit(self.URL_B, self.T0 + dt.timedelta(minutes=30))
        assert q.stats.skipped_domain == 1

    def test_same_domain_after_1h_accepted(self):
        q = CaptureQueue()
        q.submit(self.URL_A, self.T0)
        assert q.submit(self.URL_B, self.T0 + dt.timedelta(minutes=61))

    def test_other_domain_unaffected(self):
        q = CaptureQueue()
        q.submit(self.URL_A, self.T0)
        assert q.submit(self.URL_C, self.T0)

    def test_domain_cooldown_uses_etld1(self):
        q = CaptureQueue()
        q.submit(URL.parse("https://a.example.com/1"), self.T0)
        assert not q.submit(URL.parse("https://b.example.com/2"), self.T0)

    def test_fragment_ignored_for_dedup(self):
        q = CaptureQueue()
        q.submit(URL.parse("https://a.com/x#one"), self.T0)
        assert not q.submit(
            URL.parse("https://a.com/x#two"), self.T0 + dt.timedelta(hours=2)
        )

    def test_skip_rate(self):
        q = CaptureQueue()
        q.submit(self.URL_A, self.T0)
        q.submit(self.URL_A, self.T0)
        assert q.stats.skip_rate == pytest.approx(0.5)

    def test_prune_keeps_behaviour(self):
        q = CaptureQueue()
        q.submit(self.URL_A, self.T0)
        q.prune(self.T0 + dt.timedelta(hours=2))
        # URL cooldown (48h) must survive the prune.
        assert not q.submit(self.URL_A, self.T0 + dt.timedelta(hours=3))
        # Domain cooldown (1h) has expired and may be dropped.
        assert q.submit(self.URL_B, self.T0 + dt.timedelta(hours=3))
