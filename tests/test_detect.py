"""CMP detection: fingerprints, engine, outlier exclusion, phrases."""

import datetime as dt

import pytest

from repro.cmps.base import CMP_KEYS
from repro.crawler.capture import Capture, EU_UNIVERSITY
from repro.detect.engine import (
    QUANTCAST_OUTLIER_WINDOW,
    DetectionEngine,
    detect_cmp,
)
from repro.detect.fingerprints import (
    FINGERPRINTS,
    fingerprint_for,
    verify_against_models,
)
from repro.detect.phrases import contains_gdpr_phrase, find_gdpr_phrases
from repro.net.http import HttpRequest, HttpResponse, HttpTransaction
from repro.net.url import URL


def capture_with_hosts(hosts, when=dt.datetime(2020, 5, 15, 12)):
    txs = tuple(
        HttpTransaction(
            request=HttpRequest(url=URL.parse(f"https://{h}/x")),
            response=HttpResponse(status=200),
        )
        for h in hosts
    )
    return Capture(
        capture_id=1,
        seed_url=URL.parse("https://site.com/"),
        final_url=URL.parse("https://site.com/"),
        captured_at=when,
        vantage=EU_UNIVERSITY,
        status=200,
        transactions=txs,
    )


class TestFingerprints:
    def test_one_per_cmp(self):
        assert {fp.cmp_key for fp in FINGERPRINTS} == set(CMP_KEYS)

    def test_lookup(self):
        assert fingerprint_for("onetrust").unique_hostname == "cdn.cookielaw.org"
        with pytest.raises(KeyError):
            fingerprint_for("nope")

    def test_host_matching_subdomains(self):
        fp = fingerprint_for("quantcast")
        assert fp.matches_host("quantcast.mgr.consensu.org")
        assert fp.matches_host("static.quantcast.mgr.consensu.org")
        assert not fp.matches_host("notquantcast.mgr.consensu.org.evil.com")
        assert not fp.matches_host("mgr.consensu.org")

    def test_url_pattern_matching(self):
        fp = fingerprint_for("onetrust")
        assert fp.matches_url("https://cdn.cookielaw.org/consent/otSDKStub.js")
        assert fp.matches_url("https://x.com/onetrust/sdk.js")
        assert not fp.matches_url("https://x.com/other.js")

    def test_models_agree_with_fingerprints(self):
        verify_against_models()


class TestDetection:
    def test_single_cmp(self):
        cap = capture_with_hosts(["site.com", "cdn.cookielaw.org"])
        result = detect_cmp(cap)
        assert result.cmp_key == "onetrust"
        assert not result.overcounted

    def test_no_cmp(self):
        cap = capture_with_hosts(["site.com", "cdn.sharedassets.net"])
        assert detect_cmp(cap).cmp_key is None

    def test_two_cmps_overcount(self):
        cap = capture_with_hosts(
            ["cdn.cookielaw.org", "consent.cookiebot.com"]
        )
        result = detect_cmp(cap)
        assert result.overcounted
        assert set(result.matched) == {"onetrust", "cookiebot"}

    def test_detection_without_dialog(self):
        # Network-based detection needs no dialog, DOM, or text.
        cap = capture_with_hosts(["consent.trustarc.com"])
        assert detect_cmp(cap).cmp_key == "trustarc"


class TestOutlierExclusion:
    IN_WINDOW = dt.datetime.combine(
        QUANTCAST_OUTLIER_WINDOW[0], dt.time(12)
    )

    def test_quantcast_excluded_in_window(self):
        cap = capture_with_hosts(
            ["quantcast.mgr.consensu.org"], when=self.IN_WINDOW
        )
        result = detect_cmp(cap)
        assert result.cmp_key is None
        assert result.excluded == ("quantcast",)

    def test_other_cmps_unaffected_in_window(self):
        cap = capture_with_hosts(["cdn.cookielaw.org"], when=self.IN_WINDOW)
        assert detect_cmp(cap).cmp_key == "onetrust"

    def test_quantcast_detected_outside_window(self):
        cap = capture_with_hosts(
            ["quantcast.mgr.consensu.org"],
            when=dt.datetime(2018, 7, 20, 12),
        )
        assert detect_cmp(cap).cmp_key == "quantcast"

    def test_exclusion_can_be_disabled(self):
        cap = capture_with_hosts(
            ["quantcast.mgr.consensu.org"], when=self.IN_WINDOW
        )
        result = detect_cmp(cap, apply_outlier_exclusion=False)
        assert result.cmp_key == "quantcast"


class TestEngine:
    def test_overcount_rate(self):
        engine = DetectionEngine()
        engine.detect(capture_with_hosts(["cdn.cookielaw.org"]))
        engine.detect(
            capture_with_hosts(
                ["cdn.cookielaw.org", "consent.cookiebot.com"]
            )
        )
        assert engine.captures_seen == 2
        assert engine.overcount_rate == pytest.approx(0.5)

    def test_empty_engine(self):
        assert DetectionEngine().overcount_rate == 0.0


class TestPhrases:
    def test_positive(self):
        assert contains_gdpr_phrase("We value your privacy. Click below.")

    def test_case_insensitive(self):
        assert contains_gdpr_phrase("WE USE COOKIES to improve the site")

    def test_negative(self):
        assert not contains_gdpr_phrase("Welcome to our homepage!")

    def test_find_returns_all(self):
        found = find_gdpr_phrases(
            "This website uses cookies. See our cookie policy."
        )
        assert "this website uses cookies" in found
        assert "cookie policy" in found
