"""Whole-program analyzer (phase 2) tests.

Covers, per the contract of :mod:`repro.lint`:

* the phase-1 index: module naming, normalized digests (docstring/
  comment/position-invariant, body-sensitive);
* XMOD cross-module taint with fixture packages -- a known taint chain
  caught with its full call chain, and sanctioned variants (same-line
  DET suppression at the source, sorted() wrapping, barrier modules);
* RACE worker-reachability -- a seeded worker-reachable global write
  and a class-attribute write, plus the justified-suppression path;
* the CACHE001/CACHE002 lock workflow on a fixture project and the
  mutation test on the real tree: edit a fingerprinted stage's code
  without bumping CODE_VERSIONS and the guard must fail, naming the
  stage and the changed module;
* PARSE001 hardening (a broken file is a finding, not a crash);
* repo-root-relative path resolution: the CLI gives identical results
  from any cwd.
"""

from __future__ import annotations

import ast
import io
import json
import shutil
from pathlib import Path

from repro.lint import DEFAULT_CONFIG, LintConfig, lint_paths
from repro.lint.cli import find_repo_root, main
from repro.lint.engine import PARSE_ERROR, analyze_paths
from repro.lint.index import Program, module_name_for, normalized_digest
from repro.lint.rules.cachecheck import LOCK_FILENAME, build_lock

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Config whose XMOD entry points / barriers match the fixture trees.
FIXTURE_CONFIG = LintConfig(
    entry_points=("pipeline.Study.*",),
    barrier_modules=("obs", "obs.*"),
)


def run_cli(args, cwd=None, monkeypatch=None):
    if cwd is not None:
        monkeypatch.chdir(cwd)
    out, err = io.StringIO(), io.StringIO()
    code = main(args, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


def rules_of(result):
    return [f.rule for f in result.findings]


# ---------------------------------------------------------------------------
# Phase-1 index: naming and normalized digests
# ---------------------------------------------------------------------------


class TestModuleNaming:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/lint/engine.py") == (
            "repro.lint.engine"
        )

    def test_init_names_the_package(self):
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"

    def test_scripts_keep_their_root(self):
        assert module_name_for("scripts/cache_smoke.py") == (
            "scripts.cache_smoke"
        )


class TestNormalizedDigest:
    BODY = "def f(x):\n    return x + 1\n"

    def digest(self, source):
        return normalized_digest(ast.parse(source))

    def test_docstrings_do_not_count(self):
        with_doc = 'def f(x):\n    """Doc."""\n    return x + 1\n'
        assert self.digest(self.BODY) == self.digest(with_doc)

    def test_comments_and_positions_do_not_count(self):
        shifted = "\n\n# a comment\ndef f(x):\n    return x + 1\n"
        assert self.digest(self.BODY) == self.digest(shifted)

    def test_code_changes_count(self):
        changed = "def f(x):\n    return x + 2\n"
        assert self.digest(self.BODY) != self.digest(changed)

    def test_module_docstring_does_not_count(self):
        assert self.digest('"""Mod."""\n' + self.BODY) == self.digest(
            self.BODY
        )


# ---------------------------------------------------------------------------
# Fixture builders
# ---------------------------------------------------------------------------


def write_tree(root: Path, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def taint_fixture(tmp_path: Path, helper_source: str) -> Path:
    """A two-module package with a Study entry point calling a helper."""
    return write_tree(
        tmp_path,
        {
            "pipeline.py": (
                "import helpers\n\n\n"
                "class Study:\n"
                "    def adoption_series(self, store):\n"
                "        return helpers.summarize(store)\n"
            ),
            "helpers.py": helper_source,
        },
    )


# ---------------------------------------------------------------------------
# XMOD: cross-module taint
# ---------------------------------------------------------------------------


class TestCrossModuleTaint:
    def test_value_taint_caught_with_chain(self, tmp_path):
        root = taint_fixture(
            tmp_path,
            "import time\n\n\n"
            "def summarize(store):\n"
            "    return stamp()\n\n\n"
            "def stamp():\n"
            "    return time.time()\n",
        )
        result = lint_paths([root], FIXTURE_CONFIG, root=root)
        assert "XMOD001" in rules_of(result)
        finding = next(f for f in result.findings if f.rule == "XMOD001")
        assert finding.path == "helpers.py"
        assert "time.time()" in finding.message
        # The full explanatory chain, entry point first.
        assert (
            "pipeline.Study.adoption_series -> helpers.summarize "
            "-> helpers.stamp" in finding.message
        )

    def test_order_taint_caught(self, tmp_path):
        root = taint_fixture(
            tmp_path,
            "import os\n\n\n"
            "def summarize(store):\n"
            "    return list(os.listdir(store))\n",
        )
        result = lint_paths([root], FIXTURE_CONFIG, root=root)
        assert "XMOD002" in rules_of(result)

    def test_det_suppression_at_source_sanctions_the_chain(self, tmp_path):
        root = taint_fixture(
            tmp_path,
            "import time\n\n\n"
            "def summarize(store):\n"
            "    return stamp()\n\n\n"
            "def stamp():\n"
            "    # timing metadata only, never folded into results\n"
            "    return time.time()  # repro-lint: disable=DET002\n",
        )
        result = lint_paths([root], FIXTURE_CONFIG, root=root)
        assert rules_of(result) == []  # neither DET002 nor XMOD001

    def test_xmod_suppression_at_source_line(self, tmp_path):
        # Suppressing only XMOD001 keeps the per-file DET002 finding:
        # phase-2 findings go through the same directive machinery.
        root = taint_fixture(
            tmp_path,
            "import time\n\n\n"
            "def summarize(store):\n"
            "    return stamp()\n\n\n"
            "def stamp():\n"
            "    return time.time()  # repro-lint: disable=XMOD001\n",
        )
        result = lint_paths([root], FIXTURE_CONFIG, root=root)
        assert rules_of(result) == ["DET002"]
        assert result.suppressed == 1

    def test_sorted_wrapping_sanctions_order_source(self, tmp_path):
        root = taint_fixture(
            tmp_path,
            "import os\n\n\n"
            "def summarize(store):\n"
            "    return sorted(os.listdir(store))\n",
        )
        result = lint_paths([root], FIXTURE_CONFIG, root=root)
        assert "XMOD002" not in rules_of(result)

    def test_barrier_module_does_not_seed(self, tmp_path):
        # The same clock read inside a barrier module is sanctioned.
        root = write_tree(
            tmp_path,
            {
                "pipeline.py": (
                    "import obs\n\n\n"
                    "class Study:\n"
                    "    def adoption_series(self, store):\n"
                    "        return obs.stamp()\n"
                ),
                "obs.py": (
                    "import time\n\n\n"
                    "def stamp():\n"
                    "    return time.time()  # repro-lint: disable=DET002\n"
                ),
            },
        )
        result = lint_paths([root], FIXTURE_CONFIG, root=root)
        assert "XMOD001" not in rules_of(result)

    def test_unreachable_source_not_flagged(self, tmp_path):
        # A clock read nothing on an entry path calls: DET002 only.
        root = taint_fixture(
            tmp_path,
            "import time\n\n\n"
            "def summarize(store):\n"
            "    return len(store)\n\n\n"
            "def unrelated():\n"
            "    return time.time()\n",
        )
        result = lint_paths([root], FIXTURE_CONFIG, root=root)
        assert rules_of(result) == ["DET002"]


# ---------------------------------------------------------------------------
# RACE: worker-reachable shared-state writes
# ---------------------------------------------------------------------------


def race_fixture(tmp_path: Path, worker_body: str, extra: str = "") -> Path:
    return write_tree(
        tmp_path,
        {
            "executor.py": (
                "class Executor:\n"
                "    def map_shards(self, fn, payloads):\n"
                "        return [fn(p) for p in payloads]\n"
            ),
            "driver.py": (
                "from executor import Executor\n\n"
                "_SEEN = {}\n\n\n"
                f"{extra}"
                "def worker(task):\n"
                f"{worker_body}"
                "    return task\n\n\n"
                "def run_all(tasks):\n"
                "    ex = Executor()\n"
                "    return ex.map_shards(worker, tasks)\n"
            ),
        },
    )


class TestWorkerSharedWrites:
    def test_global_write_caught_with_chain(self, tmp_path):
        root = race_fixture(tmp_path, "    _SEEN[task] = 1\n")
        result = lint_paths([root], DEFAULT_CONFIG, root=root)
        assert rules_of(result) == ["RACE001"]
        finding = result.findings[0]
        assert finding.path == "driver.py"
        assert "_SEEN" in finding.message
        assert "driver.worker" in finding.message
        assert "spawned by driver.run_all" in finding.message

    def test_global_statement_rebinding_caught(self, tmp_path):
        root = race_fixture(
            tmp_path,
            "    global _SEEN\n    _SEEN = {task: 1}\n",
        )
        result = lint_paths([root], DEFAULT_CONFIG, root=root)
        assert rules_of(result) == ["RACE001"]

    def test_transitive_write_caught(self, tmp_path):
        root = race_fixture(
            tmp_path,
            "    note(task)\n",
            extra="def note(task):\n    _SEEN[task] = 1\n\n\n",
        )
        result = lint_paths([root], DEFAULT_CONFIG, root=root)
        assert rules_of(result) == ["RACE001"]
        assert "driver.worker -> driver.note" in result.findings[0].message

    def test_mutating_method_call_caught(self, tmp_path):
        root = race_fixture(tmp_path, "    _SEEN.update({task: 1})\n")
        result = lint_paths([root], DEFAULT_CONFIG, root=root)
        assert rules_of(result) == ["RACE001"]

    def test_class_attribute_write_is_race002(self, tmp_path):
        root = race_fixture(
            tmp_path,
            "    Tally.count += 1\n",
            extra="class Tally:\n    count = 0\n\n\n",
        )
        result = lint_paths([root], DEFAULT_CONFIG, root=root)
        assert rules_of(result) == ["RACE002"]
        assert "class attribute 'count'" in result.findings[0].message

    def test_local_and_instance_state_not_flagged(self, tmp_path):
        root = race_fixture(
            tmp_path,
            "    seen = {}\n    seen[task] = 1\n",
        )
        result = lint_paths([root], DEFAULT_CONFIG, root=root)
        assert rules_of(result) == []

    def test_non_worker_write_not_flagged(self, tmp_path):
        # The same write outside any worker path is out of scope.
        root = write_tree(
            tmp_path,
            {
                "driver.py": (
                    "_SEEN = {}\n\n\n"
                    "def not_a_worker(task):\n"
                    "    _SEEN[task] = 1\n"
                ),
            },
        )
        result = lint_paths([root], DEFAULT_CONFIG, root=root)
        assert rules_of(result) == []

    def test_justified_suppression_is_honored(self, tmp_path):
        root = race_fixture(
            tmp_path,
            "    _SEEN[task] = 1  # repro-lint: disable=RACE001\n",
        )
        result = lint_paths([root], DEFAULT_CONFIG, root=root)
        assert rules_of(result) == []
        assert result.suppressed == 1


# ---------------------------------------------------------------------------
# CACHE: the staleness guard and the lock workflow
# ---------------------------------------------------------------------------


def cache_project(tmp_path: Path) -> Path:
    return write_tree(
        tmp_path,
        {
            "pyproject.toml": "[project]\nname = 'fixture'\n",
            "src/cachemod.py": (
                'CODE_VERSIONS = {"stage-a": 1}\n'
                'STAGE_CLOSURES = {"stage-a": ["stagea"]}\n'
            ),
            "src/stagea.py": "def compute(x):\n    return x + 1\n",
        },
    )


class TestCacheGuard:
    def lint(self, project):
        return lint_paths(
            [project / "src"], DEFAULT_CONFIG, root=project
        )

    def update_lock(self, project, monkeypatch):
        code, out, err = run_cli(
            ["src", "--update-lock"], cwd=project, monkeypatch=monkeypatch
        )
        assert code == 0, err
        return project / LOCK_FILENAME

    def test_missing_lock_is_cache002(self, tmp_path):
        project = cache_project(tmp_path)
        result = self.lint(project)
        assert rules_of(result) == ["CACHE002"]
        assert "--update-lock" in result.findings[0].message

    def test_update_lock_then_clean(self, tmp_path, monkeypatch):
        project = cache_project(tmp_path)
        lock = self.update_lock(project, monkeypatch)
        document = json.loads(lock.read_text())
        assert document["stages"]["stage-a"]["code_version"] == 1
        assert "stagea" in document["stages"]["stage-a"]["modules"]
        assert rules_of(self.lint(project)) == []

    def test_editing_stage_code_without_bump_is_cache001(
        self, tmp_path, monkeypatch
    ):
        project = cache_project(tmp_path)
        self.update_lock(project, monkeypatch)
        (project / "src" / "stagea.py").write_text(
            "def compute(x):\n    return x + 2\n"
        )
        result = self.lint(project)
        assert rules_of(result) == ["CACHE001"]
        message = result.findings[0].message
        assert "stage-a" in message and "stagea" in message
        assert result.findings[0].path == "src/cachemod.py"

    def test_docstring_edit_does_not_trip_the_guard(
        self, tmp_path, monkeypatch
    ):
        project = cache_project(tmp_path)
        self.update_lock(project, monkeypatch)
        (project / "src" / "stagea.py").write_text(
            '"""Now documented."""\n\n\n'
            "def compute(x):\n"
            "    # with a comment\n"
            "    return x + 1\n"
        )
        assert rules_of(self.lint(project)) == []

    def test_bump_without_update_lock_is_cache002(
        self, tmp_path, monkeypatch
    ):
        project = cache_project(tmp_path)
        self.update_lock(project, monkeypatch)
        (project / "src" / "cachemod.py").write_text(
            'CODE_VERSIONS = {"stage-a": 2}\n'
            'STAGE_CLOSURES = {"stage-a": ["stagea"]}\n'
        )
        result = self.lint(project)
        assert rules_of(result) == ["CACHE002"]
        assert "--update-lock" in result.findings[0].message
        # ...and --update-lock resolves it.
        self.update_lock(project, monkeypatch)
        assert rules_of(self.lint(project)) == []

    def test_undeclared_stage_is_cache001(self, tmp_path, monkeypatch):
        project = cache_project(tmp_path)
        self.update_lock(project, monkeypatch)
        (project / "src" / "cachemod.py").write_text(
            'CODE_VERSIONS = {"stage-a": 1, "stage-b": 1}\n'
            'STAGE_CLOSURES = {"stage-a": ["stagea"]}\n'
        )
        result = self.lint(project)
        assert "CACHE001" in rules_of(result)
        assert any("stage-b" in f.message for f in result.findings)


# ---------------------------------------------------------------------------
# The real tree: mutation test against the committed lock
# ---------------------------------------------------------------------------


def copy_repo_tree(tmp_path: Path) -> Path:
    clone = tmp_path / "clone"
    clone.mkdir()
    shutil.copytree(
        REPO_ROOT / "src",
        clone / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    shutil.copy(REPO_ROOT / "pyproject.toml", clone / "pyproject.toml")
    shutil.copy(REPO_ROOT / LOCK_FILENAME, clone / LOCK_FILENAME)
    return clone


class TestRealTreeMutation:
    def test_committed_lock_matches_head(self):
        result = lint_paths(
            [REPO_ROOT / "src"],
            LintConfig(select=frozenset({"CACHE"})),
            root=REPO_ROOT,
        )
        formatted = "\n".join(f.format() for f in result.findings)
        assert result.clean, f"stale cache lock:\n{formatted}"

    def test_editing_platform_without_bump_fails_guard(self, tmp_path):
        clone = copy_repo_tree(tmp_path)
        platform = clone / "src" / "repro" / "crawler" / "platform.py"
        platform.write_text(
            platform.read_text() + "\n\n_MUTATION_PROBE = 1\n"
        )
        result = lint_paths(
            [clone / "src"],
            LintConfig(select=frozenset({"CACHE"})),
            root=clone,
        )
        cache001 = [f for f in result.findings if f.rule == "CACHE001"]
        assert cache001, "mutation escaped the staleness guard"
        # The finding names the stage and the changed module.
        assert any(
            "social-crawl" in f.message
            and "repro.crawler.platform" in f.message
            for f in cache001
        )


# ---------------------------------------------------------------------------
# PARSE001 hardening
# ---------------------------------------------------------------------------


class TestParseHardening:
    def test_broken_file_is_a_finding_not_a_crash(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "broken.py": "def f(:\n    pass\n",
                "dirty.py": "import random\nrng = random.Random()\n",
            },
        )
        result = lint_paths([root], DEFAULT_CONFIG, root=root)
        assert sorted(rules_of(result)) == ["DET001", PARSE_ERROR]
        parse = next(f for f in result.findings if f.rule == PARSE_ERROR)
        assert parse.path == "broken.py"
        assert parse.line >= 1
        assert "does not parse" in parse.message

    def test_broken_file_excluded_from_phase2(self, tmp_path):
        root = write_tree(tmp_path, {"broken.py": "def f(:\n"})
        result, program, _ = analyze_paths(
            [root], DEFAULT_CONFIG, root=root
        )
        assert rules_of(result) == [PARSE_ERROR]
        assert program.modules == {}


# ---------------------------------------------------------------------------
# Repo-root-relative resolution: identical results from any cwd
# ---------------------------------------------------------------------------


class TestCwdIndependence:
    def test_repo_root_found_from_anywhere(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert find_repo_root() == REPO_ROOT

    def test_cli_from_tmp_cwd_matches_repo_cwd(self, tmp_path, monkeypatch):
        code_repo, out_repo, _ = run_cli(
            [], cwd=REPO_ROOT, monkeypatch=monkeypatch
        )
        code_tmp, out_tmp, _ = run_cli(
            [], cwd=tmp_path, monkeypatch=monkeypatch
        )
        assert (code_repo, out_repo) == (code_tmp, out_tmp)
        assert code_repo == 0

    def test_phase_timings_are_recorded(self):
        result, _, _ = analyze_paths(
            [REPO_ROOT / "src" / "repro" / "lint"],
            DEFAULT_CONFIG,
            root=REPO_ROOT,
        )
        assert set(result.timings) == {"phase1", "phase2"}
        assert all(value >= 0.0 for value in result.timings.values())


# ---------------------------------------------------------------------------
# Program-level odds and ends
# ---------------------------------------------------------------------------


class TestProgramResolution:
    def test_build_lock_round_trip(self, tmp_path):
        project = cache_project(tmp_path)
        _, program, _ = analyze_paths(
            [project / "src"], DEFAULT_CONFIG, root=project
        )
        lock, problems = build_lock(program)
        assert problems == []
        assert set(lock["stages"]) == {"stage-a"}
        # Rebuilding from an identical tree gives identical digests.
        _, program2, _ = analyze_paths(
            [project / "src"], DEFAULT_CONFIG, root=project
        )
        lock2, _ = build_lock(program2)
        assert lock == lock2

    def test_worker_entries_resolved_on_real_tree(self):
        _, program, _ = analyze_paths(
            [REPO_ROOT / "src"], DEFAULT_CONFIG, root=REPO_ROOT
        )
        workers = {worker for worker, _ in program.worker_entries()}
        assert "repro.crawler.platform.crawl_social_shard" in workers
        assert "repro.crawler.toplist_crawl.crawl_toplist_shard" in workers

    def test_method_resolution_through_instance_attr(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "engine.py": (
                    "import time\n\n\n"
                    "class Clock:\n"
                    "    def read(self):\n"
                    "        return time.time()\n\n\n"
                    "class Runner:\n"
                    "    def __init__(self):\n"
                    "        self.clock = Clock()\n\n"
                    "    def tick(self):\n"
                    "        return self.clock.read()\n"
                ),
            },
        )
        config = LintConfig(entry_points=("engine.Runner.tick",))
        result = lint_paths([root], config, root=root)
        assert "XMOD001" in rules_of(result)
        finding = next(f for f in result.findings if f.rule == "XMOD001")
        assert (
            "engine.Runner.tick -> engine.Clock.read" in finding.message
        )
