"""Tranco robustness properties (Le Pochat et al.'s design goals).

The paper picks Tranco because it is "hardened against manipulation,
less susceptible to daily fluctuations, and emphasizes reproducibility".
These tests verify our aggregation inherits those properties.
"""

import datetime as dt

import numpy as np
import pytest

from repro.toplist.providers import provider_ranking
from repro.toplist.tranco import TrancoList, build_tranco
from repro.web.worldgen import World, WorldConfig


@pytest.fixture(scope="module")
def small_world():
    return World(WorldConfig(seed=13, n_domains=3_000))


def _top_set(order, n=500):
    return set(order[:n].tolist())


class TestManipulationResistance:
    def test_single_provider_manipulation_dampened(self, small_world):
        """Injecting a fake domain at a top spot of ONE provider list
        must not put it in the Tranco top."""
        tranco = build_tranco(small_world)
        target_true_rank = 2_900  # a deep, unpopular site

        # Manipulate: craft a fake "alexa" order with the target first.
        rankings = {
            name: provider_ranking(small_world, name)
            for name in ("alexa", "umbrella", "majestic", "quantcast")
        }
        manipulated = rankings["alexa"].order.copy()
        manipulated = manipulated[manipulated != target_true_rank]
        manipulated = np.concatenate(([target_true_rank], manipulated))

        # Recompute the Dowdall aggregation by hand with the forged list.
        n = small_world.n_domains
        scores = np.zeros(n)
        for name, ranking in rankings.items():
            order = manipulated if name == "alexa" else ranking.order
            pos = np.zeros(n)
            pos[order - 1] = np.arange(1, len(order) + 1)
            listed = pos > 0
            scores[listed] += 1.0 / pos[listed]
        forged_order = np.argsort(-scores, kind="stable") + 1
        forged_rank = int(np.nonzero(forged_order == target_true_rank)[0][0]) + 1

        honest_rank = tranco.tranco_rank_of_true(target_true_rank)
        # The forgery helps (rank 1 on one list is worth a lot) but the
        # domain cannot reach the very top on one list alone.
        assert forged_rank > 1
        assert forged_rank <= honest_rank

    def test_aggregate_more_accurate_than_any_single_list(self, small_world):
        tranco = build_tranco(small_world)

        def top200_accuracy(order):
            return sum(1 for r in order[:200] if r <= 200) / 200

        tranco_acc = top200_accuracy(tranco.order)
        for name in ("alexa", "umbrella", "majestic"):
            provider_acc = top200_accuracy(
                provider_ranking(small_world, name).order
            )
            assert tranco_acc >= provider_acc - 0.02


class TestReproducibility:
    def test_same_world_same_list(self, small_world):
        a = build_tranco(small_world)
        b = build_tranco(small_world)
        assert np.array_equal(a.order, b.order)

    def test_provider_subset_changes_list(self, small_world):
        full = build_tranco(small_world)
        partial = build_tranco(small_world, providers=("alexa",))
        assert not np.array_equal(full.order, partial.order)

    def test_stability_against_noise(self, small_world):
        """The aggregate top set overlaps heavily with itself under a
        different noise draw (different world seed, same structure)."""
        other = World(WorldConfig(seed=14, n_domains=3_000))
        a = build_tranco(small_world)
        b = build_tranco(other)
        # Different worlds, but both top-500 sets must consist mostly of
        # genuinely popular (low true rank) sites.
        for tranco in (a, b):
            top = tranco.top_true_ranks(500)
            assert np.median(top) < 700
