"""Global Vendor List model and version diffing."""

import datetime as dt

import pytest

from repro.tcf.gvl import (
    GlobalVendorList,
    PurposeChange,
    Vendor,
    diff_history,
    diff_versions,
)


def vendor(vid, consent=(), li=(), features=()):
    return Vendor(
        id=vid,
        name=f"Vendor {vid}",
        policy_url=f"https://v{vid}.example/privacy",
        purpose_ids=frozenset(consent),
        leg_int_purpose_ids=frozenset(li),
        feature_ids=frozenset(features),
    )


def gvl(version, *vendors, date=dt.date(2019, 1, 1)):
    return GlobalVendorList(
        version=version, last_updated=date, vendors=tuple(vendors)
    )


class TestVendor:
    def test_declared_purposes(self):
        v = vendor(1, consent=(1, 2), li=(3,))
        assert v.declared_purposes == frozenset({1, 2, 3})

    def test_basis_for(self):
        v = vendor(1, consent=(1,), li=(3,))
        assert v.basis_for(1) == "consent"
        assert v.basis_for(3) == "legitimate-interest"
        assert v.basis_for(5) is None

    def test_overlapping_bases_rejected(self):
        with pytest.raises(ValueError, match="both"):
            vendor(1, consent=(1,), li=(1,))

    def test_unknown_purpose_rejected(self):
        with pytest.raises(ValueError):
            vendor(1, consent=(42,))

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError):
            vendor(1, features=(9,))

    def test_zero_id_rejected(self):
        with pytest.raises(ValueError):
            vendor(0)


class TestGlobalVendorList:
    def test_lookup(self):
        lst = gvl(1, vendor(1), vendor(7))
        assert 7 in lst
        assert lst.get(7).id == 7
        assert lst.get(9) is None
        assert len(lst) == 2

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            gvl(1, vendor(1), vendor(1))

    def test_max_vendor_id(self):
        assert gvl(1, vendor(3), vendor(11)).max_vendor_id == 11

    def test_purpose_histogram_any(self):
        lst = gvl(1, vendor(1, consent=(1,)), vendor(2, li=(1, 2)))
        hist = lst.purpose_histogram("any")
        assert hist[1] == 2 and hist[2] == 1 and hist[5] == 0

    def test_purpose_histogram_by_basis(self):
        lst = gvl(1, vendor(1, consent=(1,)), vendor(2, li=(1,)))
        assert lst.purpose_histogram("consent")[1] == 1
        assert lst.purpose_histogram("legitimate-interest")[1] == 1

    def test_purpose_histogram_unknown_basis(self):
        with pytest.raises(ValueError):
            gvl(1, vendor(1)).purpose_histogram("vibes")

    def test_json_roundtrip(self):
        lst = gvl(
            42,
            vendor(1, consent=(1, 3), li=(5,), features=(2,)),
            vendor(2, consent=(2,)),
        )
        back = GlobalVendorList.from_json(lst.to_json())
        assert back == lst


class TestDiff:
    def test_join_and_leave(self):
        old = gvl(1, vendor(1), vendor(2))
        new = gvl(2, vendor(2), vendor(3))
        d = diff_versions(old, new)
        assert d.joined == frozenset({3})
        assert d.left == frozenset({1})

    def test_li_to_consent(self):
        old = gvl(1, vendor(1, li=(2,)))
        new = gvl(2, vendor(1, consent=(2,)))
        d = diff_versions(old, new)
        assert [c.kind for c in d.purpose_changes] == ["li-to-consent"]
        assert d.net_li_to_consent == 1

    def test_consent_to_li(self):
        old = gvl(1, vendor(1, consent=(2,)))
        new = gvl(2, vendor(1, li=(2,)))
        d = diff_versions(old, new)
        assert d.net_li_to_consent == -1

    def test_new_and_dropped(self):
        old = gvl(1, vendor(1, consent=(1,)))
        new = gvl(2, vendor(1, consent=(1, 2), li=()))
        d = diff_versions(old, new)
        assert [c.kind for c in d.purpose_changes] == ["new-consent"]

        d2 = diff_versions(new, old)
        assert [c.kind for c in d2.purpose_changes] == ["dropped-consent"]

    def test_joiners_produce_no_purpose_changes(self):
        # Purpose changes are only tracked for existing members.
        old = gvl(1, vendor(1, consent=(1,)))
        new = gvl(2, vendor(1, consent=(1,)), vendor(2, consent=(1, 2)))
        d = diff_versions(old, new)
        assert d.purpose_changes == ()

    def test_changes_of_kind_filter(self):
        old = gvl(1, vendor(1, li=(1, 2)))
        new = gvl(2, vendor(1, consent=(1,), li=(2,)))
        d = diff_versions(old, new)
        assert len(d.changes_of_kind("li-to-consent")) == 1
        assert len(d.changes_of_kind("consent-to-li")) == 0

    def test_diff_history_sorts_and_pairs(self):
        a = gvl(1, vendor(1))
        b = gvl(2, vendor(1), vendor(2))
        c = gvl(3, vendor(2))
        diffs = diff_history([c, a, b])  # intentionally unsorted
        assert [(d.from_version, d.to_version) for d in diffs] == [
            (1, 2),
            (2, 3),
        ]

    def test_purpose_change_kind_table_complete(self):
        # Every legal (before, after) pair maps to a kind.
        legal = [
            (None, "consent"),
            (None, "legitimate-interest"),
            ("consent", None),
            ("legitimate-interest", None),
            ("consent", "legitimate-interest"),
            ("legitimate-interest", "consent"),
        ]
        kinds = {PurposeChange(1, 1, b, a).kind for b, a in legal}
        assert len(kinds) == 6
