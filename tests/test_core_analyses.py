"""Marketshare, switching, vantage, GVL analysis, timing, timeline."""

import datetime as dt
from collections import Counter

import pytest

from repro.core.adoption import DomainTimeline
from repro.core.gvl_analysis import GvlAnalysis
from repro.core.marketshare import (
    default_sizes,
    marketshare_by_toplist_size,
    peak_band,
)
from repro.core.relatedwork import (
    comparison_rows,
    figure1_series,
    this_paper_dominates,
)
from repro.core.switching import SwitchingFlows
from repro.core.timing import OptOutStudy, TimingStudy
from repro.crawler.capture import EU_CLOUD, Observation
from repro.users.behavior import DialogConfig
from repro.users.experiment import run_quantcast_experiment

MAY = dt.date(2020, 5, 15)


def obs(domain, day, cmp_key):
    return Observation(
        domain=domain,
        date=dt.date.fromisoformat(day),
        cmp_key=cmp_key,
        vantage=EU_CLOUD,
    )


class TestMarketshare:
    def test_default_sizes_log_spaced(self):
        sizes = default_sizes(10_000)
        assert sizes[0] == 100
        assert sizes[-1] == 10_000
        assert sizes == sorted(sizes)

    def test_curve_shape(self, study):
        curve = study.marketshare_curve(MAY)
        # The mid-market hump: share at ~1000 exceeds share at 100.
        assert curve.total_share(1_000) > curve.total_share(100)

    def test_counts_are_cumulative(self, study):
        curve = study.marketshare_curve(MAY)
        for series in curve.counts.values():
            assert series == sorted(series)

    def test_sampling_approximates_exact(self, study):
        exact = marketshare_by_toplist_size(
            study.world, study.tranco, MAY, sizes=[5_000],
            exact_limit=5_000,
        )
        sampled = marketshare_by_toplist_size(
            study.world, study.tranco, MAY, sizes=[5_000],
            exact_limit=100, samples_per_stratum=1_500,
        )
        assert sampled.total_share(5_000) == pytest.approx(
            exact.total_share(5_000), rel=0.3
        )

    def test_peak_band_in_mid_market(self, study):
        curve = study.marketshare_curve(MAY)
        lo, hi = peak_band(curve)
        assert lo >= 50 and hi <= 10_000

    def test_bad_sizes_rejected(self, study):
        with pytest.raises(ValueError):
            marketshare_by_toplist_size(
                study.world, study.tranco, MAY, sizes=[0]
            )


class TestSwitching:
    def make_flows(self):
        timelines = {}
        specs = [
            ("a.com", [("cookiebot", "2019-01-01"), ("onetrust", "2019-03-01")]),
            ("b.com", [("cookiebot", "2019-01-01"), ("quantcast", "2019-03-01")]),
            ("c.com", [("quantcast", "2019-01-01"), ("onetrust", "2019-02-10")]),
            ("d.com", [("onetrust", "2019-01-01")]),
        ]
        for domain, stints in specs:
            observations = []
            for cmp_key, start in stints:
                d0 = dt.date.fromisoformat(start)
                observations.append(obs(domain, str(d0), cmp_key))
                observations.append(
                    obs(domain, str(d0 + dt.timedelta(days=20)), cmp_key)
                )
            timelines[domain] = DomainTimeline.from_observations(
                domain, observations
            )
        return SwitchingFlows.from_timelines(timelines)

    def test_flows_counted(self):
        flows = self.make_flows()
        assert flows.flows[("cookiebot", "onetrust")] == 1
        assert flows.flows[("cookiebot", "quantcast")] == 1

    def test_gained_lost_net(self):
        flows = self.make_flows()
        assert flows.lost("cookiebot") == 2
        assert flows.gained("cookiebot") == 0
        assert flows.net("cookiebot") == -2
        assert flows.gained("onetrust") == 2

    def test_loss_ratio_infinite_when_nothing_gained(self):
        flows = self.make_flows()
        assert flows.loss_ratio("cookiebot") == float("inf")

    def test_loss_ratio_zero_for_uninvolved(self):
        flows = self.make_flows()
        assert flows.loss_ratio("crownpeak") == 0.0

    def test_rows_cover_all_cmps(self):
        rows = self.make_flows().rows()
        assert len(rows) == 6

    def test_matrix_view(self):
        matrix = self.make_flows().matrix()
        assert matrix["cookiebot"]["onetrust"] == 1

    def test_distant_episodes_not_switches(self):
        observations = [
            obs("x.com", "2019-01-01", "cookiebot"),
            obs("x.com", "2019-01-10", "cookiebot"),
            # Long dark gap, then a different CMP: drop + re-adopt.
            obs("x.com", "2020-05-01", "onetrust"),
        ]
        tl = DomainTimeline.from_observations("x.com", observations)
        flows = SwitchingFlows.from_timelines({"x.com": tl})
        assert flows.total_switches == 0


class TestVantageTable:
    @pytest.fixture(scope="class")
    def table(self, study):
        return study.vantage_table(MAY, size=300)

    def test_eu_sees_more_than_us(self, table):
        assert table.total("eu-cloud") >= table.total("us-cloud")

    def test_university_sees_more_than_cloud(self, table):
        assert table.total("eu-univ-extended") >= table.total("eu-cloud")

    def test_coverage_ordering(self, table):
        assert table.coverage("us-cloud") <= table.coverage("eu-cloud")
        assert table.coverage(table.best_config) == 1.0

    def test_language_has_no_big_effect(self, table):
        de = table.total("eu-univ-de")
        gb = table.total("eu-univ-en-gb")
        assert abs(de - gb) <= max(2, int(0.05 * max(de, gb)))

    def test_format_table_renders(self, table):
        text = table.format_table()
        assert "OneTrust" in text and "Coverage" in text


class TestGvlAnalysisUnit:
    def test_needs_two_versions(self, gvl_history):
        with pytest.raises(ValueError):
            GvlAnalysis(gvl_history[:1])

    def test_vendor_series_monotone_dates(self, gvl_history):
        analysis = GvlAnalysis(gvl_history)
        series = analysis.vendor_count_series()
        dates = [d for d, _ in series]
        assert dates == sorted(dates)

    def test_purpose_series_shapes(self, gvl_history):
        analysis = GvlAnalysis(gvl_history)
        per_purpose = analysis.purpose_series()
        assert set(per_purpose) == {1, 2, 3, 4, 5}
        assert all(
            len(s) == len(gvl_history) for s in per_purpose.values()
        )

    def test_most_declared_purpose_is_one(self, gvl_history):
        assert GvlAnalysis(gvl_history).most_declared_purpose() == 1

    def test_membership_series(self, gvl_history):
        analysis = GvlAnalysis(gvl_history)
        series = analysis.membership_series()
        assert len(series) == len(gvl_history) - 1
        assert all(j >= 0 and l >= 0 for _, j, l in series)


class TestTimingStudies:
    @pytest.fixture(scope="class")
    def timing(self):
        return TimingStudy(run_quantcast_experiment(n_visitors=2910, seed=42))

    def test_reject_slower_without_direct_button(self, timing):
        direct = timing.median_time(DialogConfig.DIRECT_REJECT, "reject")
        options = timing.median_time(DialogConfig.MORE_OPTIONS, "reject")
        assert options > 1.5 * direct

    def test_consent_rate_rises_with_friction(self, timing):
        assert (
            timing.consent_rate(DialogConfig.MORE_OPTIONS)
            > timing.consent_rate(DialogConfig.DIRECT_REJECT)
        )

    def test_tests_significant(self, timing):
        t1 = timing.accept_vs_reject_test(DialogConfig.DIRECT_REJECT)
        t2 = timing.accept_vs_reject_test(DialogConfig.MORE_OPTIONS)
        assert t1.significant(0.01)
        assert t2.significant(0.001)
        assert abs(t2.z) > abs(t1.z)

    def test_summary_keys(self, timing):
        summary = timing.summary()
        assert set(summary) >= {
            "direct/accept-median",
            "options/reject-median",
            "direct/consent-rate",
            "options/z",
        }

    def test_optout_study_rows(self):
        study = OptOutStudy.run(n_runs=40, seed=9)
        rows = dict(study.rows())
        assert rows["median clicks to opt out"] >= 7
        assert rows["median opt-out duration (s)"] > 25
        assert rows["median accept duration (s)"] < 2


class TestRelatedWork:
    def test_rows(self):
        rows = comparison_rows()
        assert len(rows) == 6

    def test_snapshots_flagged(self):
        rows = comparison_rows()
        snapshot_names = {
            r.study.name for r in rows if r.is_snapshot
        }
        assert "Utz et al." in snapshot_names
        assert "Hils et al. (this paper)" not in snapshot_names

    def test_figure1_series(self):
        series = figure1_series()
        assert any(n == 4_200_000 for _, n, _ in series)

    def test_dominance(self):
        assert this_paper_dominates()
