"""Global consent cookies and cross-site consent sharing."""

import datetime as dt

import pytest

from repro.net.http import Cookie
from repro.tcf.consentstring import ConsentString
from repro.tcf.globalcookie import (
    CONSENSU_SUFFIX,
    GLOBAL_COOKIE_NAME,
    CookieAccessEndpoint,
    GlobalConsentStore,
    consent_coalition,
    shared_consent_reach,
)

MAY = dt.date(2020, 5, 15)


def consent(purposes=(1, 2, 3, 4, 5)):
    return ConsentString.build(
        cmp_id=10,
        vendor_list_version=100,
        max_vendor_id=50,
        allowed_purposes=purposes,
        vendor_consents=range(1, 51) if purposes else (),
    )


class TestGlobalConsentStore:
    def test_record_and_retrieve(self):
        store = GlobalConsentStore()
        c = consent()
        store.record_decision("quantcast", c)
        assert store.stored_consent("quantcast") == c
        assert "quantcast" in store

    def test_scoped_per_cmp(self):
        store = GlobalConsentStore()
        store.record_decision("quantcast", consent())
        assert store.stored_consent("onetrust") is None

    def test_cookie_shape(self):
        store = GlobalConsentStore()
        cookie = store.record_decision("quantcast", consent())
        assert cookie.name == GLOBAL_COOKIE_NAME
        assert cookie.domain == f".quantcast.{CONSENSU_SUFFIX}"
        assert cookie.secure
        assert cookie.is_persistent

    def test_unknown_cmp_rejected(self):
        with pytest.raises(KeyError):
            GlobalConsentStore().record_decision("acme", consent())

    def test_clear(self):
        store = GlobalConsentStore()
        store.record_decision("quantcast", consent())
        store.record_decision("onetrust", consent())
        store.clear("quantcast")
        assert "quantcast" not in store and "onetrust" in store
        store.clear()
        assert len(store) == 0

    def test_roundtrip_through_cookie_jar(self):
        store = GlobalConsentStore()
        c = consent(purposes=(1, 3))
        cookie = store.record_decision("quantcast", c)
        rebuilt = GlobalConsentStore.from_cookies(
            [
                cookie,
                Cookie(name="session", value="x", domain="site.com"),
                Cookie(name=GLOBAL_COOKIE_NAME, value="junk",
                       domain=".unrelated.com"),
            ]
        )
        assert rebuilt.stored_consent("quantcast") == c
        assert len(rebuilt) == 1


class TestCookieAccess:
    def test_repeat_visitor_detected(self):
        store = GlobalConsentStore()
        store.record_decision("quantcast", consent())
        endpoint = CookieAccessEndpoint(store)
        result = endpoint.fetch("quantcast")
        assert result.is_repeat_visitor
        assert result.consent is not None

    def test_fresh_visitor(self):
        endpoint = CookieAccessEndpoint(GlobalConsentStore())
        result = endpoint.fetch("quantcast")
        assert not result.is_repeat_visitor
        assert result.consent is None


class TestCoalitions:
    def test_coalition_members_use_the_cmp(self, world):
        members = consent_coalition(world, "onetrust", MAY, max_rank=3_000)
        assert members
        for domain in members[:20]:
            assert world.site_by_domain(domain).cmp_on(MAY) == "onetrust"

    def test_reach_matches_coalitions(self, world):
        reach = shared_consent_reach(world, MAY, max_rank=3_000)
        for key, n in reach.items():
            assert n == len(
                consent_coalition(world, key, MAY, max_rank=3_000)
            )

    def test_reach_ordering(self, world):
        reach = shared_consent_reach(world, MAY, max_rank=5_000)
        # The market leaders have the widest consent reach.
        assert reach["onetrust"] > reach.get("crownpeak", 0)
