"""TCF v2: TC-string codec and the __tcfapi surface."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcf.consentstring import ConsentStringError
from repro.tcf.v2.cmpapi import EventStatus, TcfApi, TcfApiError
from repro.tcf.v2.purposes import (
    FEATURES_V2,
    PURPOSES_V2,
    SPECIAL_FEATURES,
    SPECIAL_PURPOSES,
)
from repro.tcf.v2.tcstring import (
    RESTRICTION_NOT_ALLOWED,
    RESTRICTION_REQUIRE_CONSENT,
    PublisherRestriction,
    PublisherTC,
    TCString,
    decode_tc_string,
)

CREATED = dt.datetime(2020, 8, 20, 9, 0, tzinfo=dt.timezone.utc)


def build(**kwargs):
    defaults = dict(
        cmp_id=10,
        vendor_list_version=50,
        created=CREATED,
        purposes_consent=(1, 2, 3),
        vendor_consents=(1, 7, 9, 10, 11, 12),
        vendor_li=(2, 3),
    )
    defaults.update(kwargs)
    return TCString.build(**defaults)


class TestDefinitions:
    def test_ten_purposes(self):
        assert [p.id for p in PURPOSES_V2] == list(range(1, 11))

    def test_two_special_purposes(self):
        assert len(SPECIAL_PURPOSES) == 2

    def test_features(self):
        assert len(FEATURES_V2) == 3
        assert len(SPECIAL_FEATURES) == 2


class TestCoreRoundtrip:
    def test_basic(self):
        tc = build()
        assert decode_tc_string(tc.encode()) == tc

    def test_metadata_fields(self):
        tc = build(
            cmp_version=4,
            consent_screen=3,
            consent_language="DE",
            publisher_cc="FR",
            is_service_specific=True,
            purpose_one_treatment=True,
            use_non_standard_stacks=True,
            special_feature_opt_ins=(1,),
        )
        back = decode_tc_string(tc.encode())
        assert back.consent_language == "DE"
        assert back.publisher_cc == "FR"
        assert back.is_service_specific
        assert back.purpose_one_treatment
        assert back.use_non_standard_stacks
        assert back.special_feature_opt_ins == frozenset({1})

    def test_purposes_and_li(self):
        tc = build(
            purposes_consent=(1, 4, 10),
            purposes_li_transparency=(2, 7),
        )
        back = decode_tc_string(tc.encode())
        assert back.purposes_consent == frozenset({1, 4, 10})
        assert back.purposes_li_transparency == frozenset({2, 7})

    def test_vendor_sections_independent(self):
        tc = build(vendor_consents=(5,), vendor_li=(700,))
        back = decode_tc_string(tc.encode())
        assert back.vendor_consents == frozenset({5})
        assert back.vendor_li == frozenset({700})

    def test_empty_vendor_sections(self):
        tc = build(vendor_consents=(), vendor_li=())
        back = decode_tc_string(tc.encode())
        assert back.vendor_consents == frozenset()
        assert back.vendor_li == frozenset()

    def test_dense_vendors_use_range(self):
        tc = build(vendor_consents=range(1, 1001))
        encoded = tc.encode()
        assert len(encoded) < 300
        assert decode_tc_string(encoded).vendor_consents == frozenset(
            range(1, 1001)
        )

    def test_no_dot_segments_by_default(self):
        assert "." not in build().encode()


class TestRestrictions:
    def test_roundtrip(self):
        tc = build(
            publisher_restrictions=(
                PublisherRestriction(
                    purpose_id=2,
                    restriction_type=RESTRICTION_NOT_ALLOWED,
                    vendor_ids=frozenset({7, 8, 9}),
                ),
                PublisherRestriction(
                    purpose_id=5,
                    restriction_type=RESTRICTION_REQUIRE_CONSENT,
                    vendor_ids=frozenset({100}),
                ),
            )
        )
        back = decode_tc_string(tc.encode())
        assert back.publisher_restrictions == tc.publisher_restrictions

    def test_not_allowed_blocks_permits(self):
        tc = build(
            purposes_consent=(2,),
            vendor_consents=(7, 8),
            publisher_restrictions=(
                PublisherRestriction(
                    purpose_id=2,
                    restriction_type=RESTRICTION_NOT_ALLOWED,
                    vendor_ids=frozenset({7}),
                ),
            ),
        )
        assert not tc.permits(7, 2)
        assert tc.permits(8, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PublisherRestriction(2, 5, frozenset({1}))
        with pytest.raises(ValueError):
            PublisherRestriction(2, 0, frozenset())
        with pytest.raises(ValueError):
            PublisherRestriction(42, 0, frozenset({1}))


class TestOptionalSegments:
    def test_disclosed_vendors(self):
        tc = build(disclosed_vendors=frozenset(range(1, 200)))
        encoded = tc.encode()
        assert encoded.count(".") == 1
        back = decode_tc_string(encoded)
        assert back.disclosed_vendors == frozenset(range(1, 200))

    def test_allowed_vendors(self):
        tc = build(allowed_vendors=frozenset({3, 5, 8}))
        back = decode_tc_string(tc.encode())
        assert back.allowed_vendors == frozenset({3, 5, 8})

    def test_publisher_tc(self):
        pub = PublisherTC(
            purposes_consent=frozenset({1, 2}),
            purposes_li_transparency=frozenset({7}),
            num_custom_purposes=3,
            custom_purposes_consent=frozenset({1, 3}),
            custom_purposes_li=frozenset({2}),
        )
        tc = build(publisher_tc=pub)
        back = decode_tc_string(tc.encode())
        assert back.publisher_tc == pub

    def test_all_segments_together(self):
        tc = build(
            disclosed_vendors=frozenset({1, 2, 3}),
            allowed_vendors=frozenset({2}),
            publisher_tc=PublisherTC(purposes_consent=frozenset({1})),
        )
        encoded = tc.encode()
        assert encoded.count(".") == 3
        assert decode_tc_string(encoded) == tc

    def test_publisher_tc_custom_bounds(self):
        with pytest.raises(ValueError):
            PublisherTC(num_custom_purposes=2,
                        custom_purposes_consent=frozenset({3}))


class TestDecodeErrors:
    def test_v1_string_rejected(self):
        from repro.tcf.consentstring import ConsentString

        v1 = ConsentString.build(
            cmp_id=1, vendor_list_version=1, max_vendor_id=5
        ).encode()
        with pytest.raises(ConsentStringError, match="v2"):
            decode_tc_string(v1)

    def test_empty_rejected(self):
        with pytest.raises(ConsentStringError):
            decode_tc_string("")

    def test_garbage_segment_rejected(self):
        tc = build().encode()
        with pytest.raises(ConsentStringError):
            decode_tc_string(tc + ".!!!")


class TestPropertyBased:
    @settings(max_examples=100, deadline=None)
    @given(
        purposes=st.sets(st.integers(min_value=1, max_value=10)),
        li=st.sets(st.integers(min_value=1, max_value=10)),
        data=st.data(),
        service_specific=st.booleans(),
    )
    def test_roundtrip(self, purposes, li, data, service_specific):
        vendors = data.draw(
            st.sets(st.integers(min_value=1, max_value=900), max_size=60)
        )
        vendor_li = data.draw(
            st.sets(st.integers(min_value=1, max_value=900), max_size=30)
        )
        tc = build(
            purposes_consent=purposes,
            purposes_li_transparency=li,
            vendor_consents=vendors,
            vendor_li=vendor_li,
            is_service_specific=service_specific,
        )
        back = decode_tc_string(tc.encode())
        assert back == tc


class TestTcfApi:
    def make_tc(self):
        return build()

    def test_fresh_visitor_flow(self):
        api = TcfApi(cmp_id=10)
        events = []
        api.add_event_listener(lambda d, ok: events.append(d.event_status))
        api.load(1.0)
        api.complete(self.make_tc(), 4.5)
        assert events[-2:] == [
            EventStatus.CMP_UI_SHOWN,
            EventStatus.USER_ACTION_COMPLETE,
        ]
        assert api.interaction_time == pytest.approx(3.5)
        assert api.get_tc_data().tc_string is not None

    def test_repeat_visitor_flow(self):
        api = TcfApi(cmp_id=10, stored_tc=self.make_tc())
        events = []
        api.add_event_listener(lambda d, ok: events.append(d.event_status))
        api.load(1.0)
        assert events[-1] is EventStatus.TC_LOADED
        with pytest.raises(TcfApiError):
            api.complete(self.make_tc(), 2.0)
        assert api.interaction_time is None

    def test_listener_removal(self):
        api = TcfApi(cmp_id=10)
        calls = []
        lid = api.add_event_listener(lambda d, ok: calls.append(1))
        assert api.remove_event_listener(lid)
        assert not api.remove_event_listener(lid)
        api.load(0.5)
        assert len(calls) == 1  # only the immediate callback

    def test_ping_display_status(self):
        api = TcfApi(cmp_id=10)
        assert api.ping()["cmpLoaded"] is False
        api.load(0.5)
        assert api.ping()["displayStatus"] == "visible"
        api.complete(self.make_tc(), 2.0)
        assert api.ping()["displayStatus"] == "hidden"

    def test_errors(self):
        api = TcfApi(cmp_id=10)
        with pytest.raises(TcfApiError):
            api.get_tc_data()
        with pytest.raises(TcfApiError):
            api.complete(self.make_tc(), 1.0)
        api.load(1.0)
        with pytest.raises(TcfApiError):
            api.load(2.0)
        with pytest.raises(TcfApiError):
            api.complete(self.make_tc(), 0.5)
