"""The compliance-audit extension."""

import datetime as dt
import random

import pytest

from repro.cmps import quantcast, trustarc
from repro.cmps.base import DialogButton, DialogDescriptor
from repro.core.compliance import (
    ComplianceReport,
    Finding,
    audit_captures,
    audit_dialog,
)


def dialog(buttons, kind="banner", **kwargs):
    return DialogDescriptor(
        cmp_key="onetrust", kind=kind, buttons=tuple(buttons), **kwargs
    )


class TestAuditDialog:
    def test_clean_dialog(self):
        d = dialog(
            [
                DialogButton("Accept", "accept-all"),
                DialogButton("Reject All", "reject-all"),
            ]
        )
        assert audit_dialog("a.com", d) == []

    def test_no_reject_path(self):
        d = dialog([DialogButton("Accept", "accept-all")])
        codes = [f.code for f in audit_dialog("a.com", d)]
        assert codes == ["no-reject-path"]

    def test_asymmetric_choice(self):
        d = dialog(
            [
                DialogButton("Accept", "accept-all"),
                DialogButton("More Options", "more-options"),
                DialogButton("Reject All", "confirm-reject", page=2),
            ]
        )
        findings = audit_dialog("a.com", d)
        assert [f.code for f in findings] == ["asymmetric-choice"]
        assert "2" in findings[0].detail

    def test_non_affirmative_wording(self):
        d = dialog(
            [
                DialogButton("Whatever", "accept-all"),
                DialogButton("Reject", "reject-all"),
            ],
            accept_wording="Whatever",
        )
        codes = [f.code for f in audit_dialog("a.com", d)]
        assert codes == ["non-affirmative-wording"]

    def test_hidden_from_eu(self):
        d = dialog(
            [
                DialogButton("Accept", "accept-all"),
                DialogButton("Reject", "reject-all"),
            ],
            shown_regions=frozenset({"US"}),
        )
        codes = [f.code for f in audit_dialog("a.com", d)]
        assert codes == ["hidden-from-eu"]

    def test_multiple_findings(self):
        d = dialog(
            [DialogButton("Sounds good", "accept-all")],
            accept_wording="Sounds good",
            shown_regions=frozenset({"US"}),
        )
        codes = {f.code for f in audit_dialog("a.com", d)}
        assert codes == {
            "no-reject-path",
            "non-affirmative-wording",
            "hidden-from-eu",
        }

    def test_api_only_unauditable(self):
        d = DialogDescriptor(
            cmp_key="onetrust", kind="none", custom_api_only=True
        )
        assert audit_dialog("a.com", d) == []

    def test_bad_code_rejected(self):
        with pytest.raises(ValueError):
            Finding("a.com", "onetrust", "teleportation", "x")


class TestReport:
    def test_against_sampled_dialogs(self):
        rng = random.Random(0)

        class FakeCapture:
            def __init__(self, d):
                self.dom_dialog = d

        captures = {
            f"q{i}.com": FakeCapture(quantcast.sample_dialog(rng))
            for i in range(500)
        }
        captures.update(
            {
                f"t{i}.com": FakeCapture(trustarc.sample_dialog(rng))
                for i in range(500)
            }
        )
        report = audit_captures(captures)
        assert report.sites_audited > 0
        assert report.sites_with_findings > 0
        by_code = report.by_code()
        # The CNIL-flagged asymmetric pattern is widespread (45% of
        # Quantcast's customers, most of TrustArc's).
        assert by_code["asymmetric-choice"] > 100
        # Non-affirmative wordings exist but are a small minority.
        assert 0 < by_code["non-affirmative-wording"] < 150

    def test_rates_and_rows(self, study):
        result = study.run_toplist_crawl(
            dt.date(2020, 5, 15), configs=("eu-univ-extended",), size=300
        )
        report = audit_captures(result.captures_for("eu-univ-extended"))
        rows = report.rows()
        assert len(rows) == 4
        for code, count, rate in rows:
            assert 0 <= rate <= 1
            assert count >= 0

    def test_empty_report_rate_raises(self):
        report = ComplianceReport(findings=[], sites_audited=0)
        with pytest.raises(ValueError):
            report.rate("no-reject-path")
