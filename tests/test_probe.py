"""Toplist seed-URL resolution (the Section 3.2 probe protocol)."""

from repro.net.probe import resolve_seed_url, resolve_toplist


class FakeOracle:
    """Scriptable oracle: maps host -> set of working protocols, with
    optional per-attempt recovery."""

    def __init__(self, tls=(), tcp=(), recover_on_attempt=None):
        self.tls = set(tls)
        self.tcp = set(tcp)
        self.recover_on_attempt = recover_on_attempt or {}

    def tls_ok(self, host, attempt):
        if host in self.recover_on_attempt:
            return attempt >= self.recover_on_attempt[host]
        return host in self.tls

    def tcp80_ok(self, host, attempt):
        return host in self.tcp


class TestResolution:
    def test_https_preferred(self):
        oracle = FakeOracle(tls={"www.a.com"}, tcp={"www.a.com"})
        r = resolve_seed_url("a.com", oracle)
        assert str(r.seed_url) == "https://www.a.com/"
        assert r.method == "https-www"
        assert r.succeeded_on_attempt == 1

    def test_http_www_fallback(self):
        oracle = FakeOracle(tcp={"www.a.com"})
        r = resolve_seed_url("a.com", oracle)
        assert str(r.seed_url) == "http://www.a.com/"
        assert r.method == "http-www"

    def test_bare_domain_fallback(self):
        oracle = FakeOracle(tcp={"a.com"})
        r = resolve_seed_url("a.com", oracle)
        assert str(r.seed_url) == "http://a.com/"
        assert r.method == "http-bare"

    def test_unreachable(self):
        r = resolve_seed_url("a.com", FakeOracle())
        assert r.seed_url is None
        assert not r.reachable
        assert r.method == "unreachable"
        assert r.succeeded_on_attempt == 0

    def test_temporary_unavailability_recovered(self):
        # TLS starts failing, works from attempt 2 on: the three-attempt
        # schedule catches it.
        oracle = FakeOracle(recover_on_attempt={"www.a.com": 2})
        r = resolve_seed_url("a.com", oracle)
        assert r.reachable
        assert r.succeeded_on_attempt == 2

    def test_gives_up_after_attempts(self):
        oracle = FakeOracle(recover_on_attempt={"www.a.com": 9})
        r = resolve_seed_url("a.com", oracle, attempts=3)
        assert not r.reachable

    def test_resolve_toplist_order_preserved(self):
        oracle = FakeOracle(tls={"www.a.com", "www.b.com"})
        results = resolve_toplist(["a.com", "b.com", "c.com"], oracle)
        assert [r.domain for r in results] == ["a.com", "b.com", "c.com"]
        assert [r.reachable for r in results] == [True, True, False]


class TestAgainstWorld:
    def test_world_implements_oracle(self, world):
        site = world.site(10)
        r = resolve_seed_url(site.domain, world)
        if site.reachability == "https":
            assert r.method == "https-www"
        assert r.reachable

    def test_unreachable_site(self, world):
        # Find a dead domain in the world.
        dead = next(
            world.site(r)
            for r in range(1, 3000)
            if world.site(r).reachability == "unreachable"
        )
        r = resolve_seed_url(dead.domain, world)
        assert not r.reachable

    def test_http_only_site_gets_http_seed(self, world):
        http_only = next(
            (
                world.site(r)
                for r in range(1, 4000)
                if world.site(r).reachability == "http-only"
            ),
            None,
        )
        if http_only is None:
            return  # world too small to contain one; not a failure
        r = resolve_seed_url(http_only.domain, world)
        assert r.reachable
        assert r.seed_url.scheme == "http"
