"""URL parsing and canonicalization."""

import pytest

from repro.net.url import URL, UrlError, _normalize_path


class TestParse:
    def test_basic(self):
        u = URL.parse("https://example.com/path?x=1#frag")
        assert u.scheme == "https"
        assert u.host == "example.com"
        assert u.path == "/path"
        assert u.query == "x=1"
        assert u.fragment == "frag"

    def test_scheme_is_lowercased(self):
        assert URL.parse("HTTPS://example.com/").scheme == "https"

    def test_host_is_lowercased(self):
        assert URL.parse("https://EXAMPLE.com/").host == "example.com"

    def test_trailing_dot_stripped(self):
        assert URL.parse("https://example.com./").host == "example.com"

    def test_empty_path_becomes_slash(self):
        assert URL.parse("https://example.com").path == "/"

    def test_default_port_stripped_https(self):
        assert URL.parse("https://example.com:443/").port is None

    def test_default_port_stripped_http(self):
        assert URL.parse("http://example.com:80/").port is None

    def test_explicit_port_kept(self):
        assert URL.parse("https://example.com:8443/").port == 8443

    def test_effective_port(self):
        assert URL.parse("https://example.com/").effective_port == 443
        assert URL.parse("http://example.com/").effective_port == 80
        assert URL.parse("http://example.com:8080/").effective_port == 8080

    def test_whitespace_stripped(self):
        assert URL.parse("  https://example.com/  ").host == "example.com"

    @pytest.mark.parametrize(
        "raw",
        [
            "example.com/path",  # relative
            "ftp://example.com/",  # unsupported scheme
            "mailto:user@example.com",
            "https:/example.com/",  # missing authority
            "https://user@example.com/",  # userinfo
            "https://exa mple.com/",  # bad host
            "https://example.com:0/",  # port out of range
            "https://example.com:99999/",
            "https://example.com:abc/",
            "https://-example.com/",
            "https:///path",
        ],
    )
    def test_rejects_malformed(self, raw):
        with pytest.raises(UrlError):
            URL.parse(raw)

    def test_rejects_non_string(self):
        with pytest.raises(UrlError):
            URL.parse(12345)  # type: ignore[arg-type]


class TestViews:
    def test_origin_without_port(self):
        assert URL.parse("https://example.com/a").origin == "https://example.com"

    def test_origin_with_port(self):
        assert (
            URL.parse("http://example.com:8080/a").origin
            == "http://example.com:8080"
        )

    def test_str_roundtrip(self):
        raw = "https://example.com/path?x=1#f"
        assert str(URL.parse(raw)) == raw

    def test_is_landing_page(self):
        assert URL.parse("https://example.com/").is_landing_page
        assert not URL.parse("https://example.com/a").is_landing_page
        assert not URL.parse("https://example.com/?q=1").is_landing_page

    def test_without_fragment(self):
        u = URL.parse("https://example.com/a#frag")
        assert u.without_fragment().fragment == ""
        # Already-clean URLs are returned as-is.
        clean = URL.parse("https://example.com/a")
        assert clean.without_fragment() is clean

    def test_fragment_not_compared(self):
        a = URL.parse("https://example.com/a#x")
        b = URL.parse("https://example.com/a#y")
        assert a == b
        assert hash(a) == hash(b)

    def test_with_path(self):
        u = URL.parse("https://example.com/a?x=1")
        v = u.with_path("/b", "y=2")
        assert v.path == "/b" and v.query == "y=2"

    def test_with_host(self):
        assert (
            URL.parse("https://a.com/x").with_host("b.org").host == "b.org"
        )

    def test_with_host_rejects_malformed(self):
        with pytest.raises(UrlError):
            URL.parse("https://a.com/").with_host("bad host")

    def test_sibling_scheme(self):
        u = URL.parse("https://example.com:8443/a")
        v = u.sibling("http")
        assert v.scheme == "http" and v.port is None

    def test_sibling_rejects_unknown_scheme(self):
        with pytest.raises(UrlError):
            URL.parse("https://a.com/").sibling("gopher")


class TestResolve:
    BASE = URL.parse("https://example.com/dir/page?q=1")

    def test_absolute(self):
        assert (
            self.BASE.resolve("http://other.org/x").host == "other.org"
        )

    def test_scheme_relative(self):
        r = self.BASE.resolve("//other.org/x")
        assert r.scheme == "https" and r.host == "other.org"

    def test_absolute_path(self):
        assert self.BASE.resolve("/root").path == "/root"

    def test_relative_path(self):
        assert self.BASE.resolve("sub").path == "/dir/sub"

    def test_dotdot(self):
        assert self.BASE.resolve("../top").path == "/top"

    def test_fragment_only(self):
        r = self.BASE.resolve("#sec")
        assert r.path == "/dir/page" and r.fragment == "sec"

    def test_empty_reference(self):
        assert self.BASE.resolve("").path == "/dir/page"

    def test_query_in_reference(self):
        r = self.BASE.resolve("/x?a=2#b")
        assert r.query == "a=2" and r.fragment == "b"


class TestNormalizePath:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/a/b", "/a/b"),
            ("/a//b", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/../b", "/b"),
            ("/../a", "/a"),
            ("/", "/"),
            ("a/b", "/a/b"),
            ("/a/b/", "/a/b/"),
        ],
    )
    def test_cases(self, raw, expected):
        assert _normalize_path(raw) == expected


class TestParseCache:
    def test_parse_cache_is_bounded(self):
        from repro.net.url import PARSE_CACHE_SIZE, parse_cache_info

        assert parse_cache_info().maxsize == PARSE_CACHE_SIZE

    def test_parse_cache_serves_hits(self):
        from repro.net.url import parse_cache_info

        before = parse_cache_info().hits
        URL.parse("https://cache-probe.example.com/x")
        URL.parse("https://cache-probe.example.com/x")
        assert parse_cache_info().hits > before

    def test_cached_instances_are_shared(self):
        a = URL.parse("https://shared.example.com/p?q=1")
        b = URL.parse("https://shared.example.com/p?q=1")
        assert a is b
