"""Regression pins for the analysis-layer boundary bugfix sweep.

Three edge-of-window behaviors the streaming engine leans on, pinned so
they cannot silently regress:

* ``MarketShareCurve.share()``/``total_share()`` for sizes not in the
  recorded list (used to raise ``ValueError`` via ``sizes.index``) --
  interpolate-or-clamp semantics;
* ``DomainTimeline.state_on()``/``AdoptionSeries.counts_on()`` outside
  the materialized window -- documented absence, never stale state,
  mirrored through the streaming expiry path (the 30/31 pin);
* ``CaptureQueue.submit_at`` tie-breaking for colliding integer
  timestamps -- feed order is preserved, which watermark finalization
  depends on.
"""

import datetime as dt
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adoption import AdoptionSeries, DomainTimeline
from repro.core.marketshare import MarketShareCurve
from repro.crawler.queue import CaptureQueue
from repro.net.url import URL
from repro.stream.state import LiveAdoptionState

L = dt.date(2020, 3, 10)  # an observation day used across the pins
_ORD = L.toordinal()


def _curve() -> MarketShareCurve:
    return MarketShareCurve(
        date=L,
        sizes=[100, 1_000, 10_000],
        counts={"onetrust": [4.0, 30.0, 90.0], "quantcast": [1.0, 10.0, 60.0]},
    )


class TestMarketShareBoundaries:
    def test_recorded_sizes_are_exact(self):
        curve = _curve()
        assert curve.share("onetrust", 100) == 4.0 / 100
        assert curve.share("onetrust", 10_000) == 90.0 / 10_000
        assert curve.total_share(1_000) == (30.0 + 10.0) / 1_000

    def test_between_samples_interpolates_counts(self):
        curve = _curve()
        # Halfway between 100 and 1000 in rank space: counts halfway
        # between 4 and 30.
        assert curve.share("onetrust", 550) == pytest.approx(17.0 / 550)
        assert curve.total_share(550) == pytest.approx((17.0 + 5.5) / 550)

    def test_below_min_clamps_to_smallest_prefix_share(self):
        curve = _curve()
        # Density below the first sample is the first sample's share --
        # not a KeyError, not another bucket's value.
        assert curve.share("onetrust", 50) == pytest.approx(4.0 / 100)
        assert curve.share("onetrust", 1) == pytest.approx(4.0 / 100)

    def test_above_max_clamps_counts(self):
        curve = _curve()
        # No adopters are invented beyond the data: counts stay at the
        # last recorded value, share dilutes with size.
        assert curve.share("onetrust", 20_000) == 90.0 / 20_000
        assert curve.total_share(1_000_000) == 150.0 / 1_000_000

    def test_unrecorded_size_no_longer_raises(self):
        curve = _curve()
        for size in (2, 99, 101, 999, 5_000, 10_001):
            curve.share("onetrust", size)
            curve.total_share(size)

    def test_nonpositive_size_rejected(self):
        curve = _curve()
        with pytest.raises(ValueError):
            curve.share("onetrust", 0)
        with pytest.raises(ValueError):
            curve.total_share(-5)

    @settings(max_examples=60, deadline=None)
    @given(size=st.integers(min_value=1, max_value=30_000))
    def test_counts_monotone_between_recorded_sizes(self, size):
        """Interpolated counts never decrease with size (cumulative)."""
        curve = _curve()
        series = curve.counts["onetrust"]
        at = curve._counts_at(series, size)
        assert 0.0 <= at <= series[-1]
        assert curve._counts_at(series, size + 1) >= at - 1e-9


class TestTimelineWindowBoundaries:
    def _timeline(self, **kwargs) -> DomainTimeline:
        rows = [(_ORD, "onetrust"), (_ORD, "onetrust"), (_ORD, "onetrust")]
        return DomainTimeline.from_day_rows("ex.com", rows, **kwargs)

    def test_before_first_observation_is_absent(self):
        tl = self._timeline()
        assert tl.state_on(L - dt.timedelta(days=1)) is None
        assert tl.state_on(dt.date(1999, 1, 1)) is None

    def test_fade_out_day_30_vs_31(self):
        tl = self._timeline()
        assert tl.state_on(L + dt.timedelta(days=30)) == "onetrust"
        assert tl.state_on(L + dt.timedelta(days=31)) is None
        assert tl.state_on(L + dt.timedelta(days=400)) is None

    def test_empty_timeline_always_absent(self):
        tl = DomainTimeline.from_day_rows("ex.com", [])
        assert tl.state_on(L) is None
        assert tl.first_observed is None

    def test_counts_on_outside_window_is_empty(self):
        series = AdoptionSeries(timelines={"ex.com": self._timeline()})
        assert series.counts_on(L - dt.timedelta(days=1)) == Counter()
        assert series.counts_on(L + dt.timedelta(days=31)) == Counter()
        assert series.total_on(L + dt.timedelta(days=31)) == 0
        assert series.counts_on(L + dt.timedelta(days=30)) == Counter(
            {"onetrust": 1}
        )

    def test_streaming_expiry_mirrors_the_30_31_pin(self):
        """The live expiry path fades exactly where the batch fade does."""
        live = LiveAdoptionState()
        live.buffer_row("ex.com", _ORD, "onetrust")
        live.finalize_through(_ORD + 30)
        assert live.state_of("ex.com") == "onetrust"
        assert live.counts == Counter({"onetrust": 1})
        transitions = live.finalize_through(_ORD + 31)
        assert transitions == [("ex.com", "onetrust", None)]
        assert live.state_of("ex.com") is None
        assert live.counts == Counter()

    def test_streaming_unseen_domain_is_absent(self):
        live = LiveAdoptionState()
        assert live.state_of("never.example") is None

    def test_streaming_revote_defers_expiry(self):
        """A fresh vote supersedes the pending heap entry (staleness)."""
        live = LiveAdoptionState()
        live.buffer_row("ex.com", _ORD, "onetrust")
        live.finalize_through(_ORD)
        live.buffer_row("ex.com", _ORD + 20, "onetrust")
        live.finalize_through(_ORD + 20)
        # Old entry (day L+31) pops as stale; state survives to L+50.
        assert live.finalize_through(_ORD + 50) == []
        assert live.state_of("ex.com") == "onetrust"
        transitions = live.finalize_through(_ORD + 51)
        assert transitions == [("ex.com", "onetrust", None)]

    def test_streaming_vote_on_expiry_day_reinstates(self):
        """Expiry at day E and a day-E vote: expiry releases the count
        first, the vote reinstates -- counts stay consistent."""
        live = LiveAdoptionState()
        live.buffer_row("ex.com", _ORD, "onetrust")
        live.finalize_through(_ORD)
        live.buffer_row("ex.com", _ORD + 31, "quantcast")
        transitions = live.finalize_through(_ORD + 31)
        assert transitions == [
            ("ex.com", "onetrust", None),
            ("ex.com", None, "quantcast"),
        ]
        assert live.counts == Counter({"quantcast": 1})


class TestQueueTimestampTies:
    def test_colliding_timestamps_preserve_feed_order(self):
        queue = CaptureQueue()
        midnight = L.toordinal() * 86_400  # exact day boundary
        urls = [
            URL.parse(f"https://sub{i}.site{i}.com/p") for i in range(4)
        ]
        for url in urls:
            assert queue.submit_at(url, midnight)
        # Insertion (== finalization) order is the feed order, even
        # though every timestamp compares equal.
        assert list(queue._last_url_capture) == urls
        assert [ts for ts in queue._last_url_capture.values()] == [
            midnight
        ] * 4

    def test_reaccept_moves_to_tail_on_equal_timestamps(self):
        queue = CaptureQueue()
        ts = L.toordinal() * 86_400
        u1 = URL.parse("https://a.one.com/p")
        u2 = URL.parse("https://b.two.com/p")
        assert queue.submit_at(u1, ts)
        assert queue.submit_at(u2, ts)
        later = ts + 48 * 3_600  # past the URL cooldown
        assert queue.submit_at(u1, later)
        assert list(queue._last_url_capture) == [u2, u1]

    def test_state_roundtrip_preserves_order_and_decisions(self):
        queue = CaptureQueue()
        ts = L.toordinal() * 86_400
        urls = [URL.parse(f"https://s.d{i}.com/x") for i in range(3)]
        for url in urls:
            queue.submit_at(url, ts)
        queue.submit_at(urls[0], ts + 1)  # skipped: URL cooldown
        payload = queue.state_payload()

        restored = CaptureQueue()
        restored.restore_state(payload)
        assert list(restored._last_url_capture) == urls
        assert restored.stats == queue.stats
        # Identical future decisions, including cooldown boundaries.
        for probe in (ts + 10, ts + 3_600, ts + 48 * 3_600):
            fresh = URL.parse("https://s.d1.com/x")
            assert restored.submit_at(
                fresh, probe
            ) == queue.submit_at(fresh, probe)

    def test_restore_requires_fresh_queue(self):
        queue = CaptureQueue()
        queue.submit_at(URL.parse("https://a.b.com/"), 100_000)
        with pytest.raises(ValueError):
            queue.restore_state(queue.state_payload())
