"""The artifact cache: fingerprints, hit/miss/invalidation, bit-identity.

The load-bearing guarantee is that a cache *hit is bit-identical to a
cold compute* -- the end-to-end tests compare persisted exports
byte-for-byte between a cold and a warm study. The failure-mode tests
pin the error taxonomy: absent/corrupt/truncated entries degrade to a
cold compute, stale fingerprints are evicted and recomputed, and only a
fingerprint *schema* bump raises (naming the offending entry).
"""

import datetime as dt
import json

import pytest

import repro.cache as cache_mod
from repro.cache import (
    ArtifactCache,
    CacheError,
    CacheSchemaError,
    Fingerprint,
    digest_domains,
    resolve_cache,
)
from repro.core.pipeline import Study, StudyConfig
from repro.crawler.storage import save_store, store_digest
from repro.obs import Observability

WINDOW = (dt.date(2020, 3, 1), dt.date(2020, 3, 21))


def small_config(tmp_path, **overrides):
    base = dict(
        seed=11,
        n_domains=1_500,
        toplist_size=80,
        events_per_day=30,
        study_start=WINDOW[0],
        study_end=WINDOW[1],
        cache_dir=str(tmp_path / "cache"),
    )
    base.update(overrides)
    return StudyConfig(**base)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_digest_deterministic_and_order_insensitive(self):
        a = Fingerprint.build("adoption", key=("x",), seed=7, n=3)
        b = Fingerprint.build("adoption", key=("x",), n=3, seed=7)
        assert a.digest() == b.digest()
        assert a.slot() == b.slot()

    def test_field_change_changes_digest_not_slot(self):
        a = Fingerprint.build("adoption", key=("x",), seed=7)
        b = Fingerprint.build("adoption", key=("x",), seed=8)
        assert a.slot() == b.slot()
        assert a.digest() != b.digest()

    def test_key_changes_slot(self):
        a = Fingerprint.build("adoption", key=("2020-05-15",))
        b = Fingerprint.build("adoption", key=("2020-06-15",))
        assert a.slot() != b.slot()

    def test_unknown_stage_rejected(self):
        with pytest.raises(CacheError):
            Fingerprint.build("no-such-stage")

    def test_slot_is_filesystem_safe(self):
        fp = Fingerprint.build("vantage", key=("2020-05-15", "top10k/??"))
        assert "/" not in fp.slot()
        assert "?" not in fp.slot()

    def test_code_version_is_fingerprinted(self, monkeypatch):
        fp = Fingerprint.build("adoption", seed=7)
        before = fp.digest()
        monkeypatch.setitem(cache_mod.CODE_VERSIONS, "adoption", 99)
        assert fp.digest() != before

    def test_study_fingerprint_excludes_execution_knobs(self, tmp_path):
        serial = Study(small_config(tmp_path))
        parallel = Study(
            small_config(tmp_path, parallelism=4, backend="process")
        )
        moved = Study(
            small_config(tmp_path, cache_dir=str(tmp_path / "elsewhere"))
        )
        fps = [
            s.fingerprint("social-crawl", key=("a",))
            for s in (serial, parallel, moved)
        ]
        assert fps[0].digest() == fps[1].digest() == fps[2].digest()

    def test_study_fingerprint_covers_scale_knobs(self, tmp_path):
        base = Study(small_config(tmp_path)).fingerprint("social-crawl")
        for override in (
            {"seed": 12},
            {"n_domains": 1_600},
            {"toplist_size": 90},
            {"events_per_day": 31},
            {"study_end": dt.date(2020, 3, 22)},
        ):
            other = Study(small_config(tmp_path, **override)).fingerprint(
                "social-crawl"
            )
            assert other.digest() != base.digest(), override


# ----------------------------------------------------------------------
# Payload entries: taxonomy of absent / stale / corrupt / schema-bumped
# ----------------------------------------------------------------------
class TestPayloadEntries:
    def fp(self, **fields):
        return Fingerprint.build("adoption", key=("t",), **fields)

    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        payload = {"rows": [[1, 2.5], ["x", None]]}
        cache.save_payload(self.fp(seed=1), payload)
        assert cache.load_payload(self.fp(seed=1)) == payload

    def test_absent_entry_is_miss(self, tmp_path):
        obs = Observability()
        cache = ArtifactCache(tmp_path, obs=obs)
        assert cache.load_payload(self.fp(seed=1)) is None
        misses = obs.metrics.counter("cache_misses_total")
        assert misses.value(stage="adoption", reason="absent") == 1

    def test_hit_and_miss_counters(self, tmp_path):
        obs = Observability()
        cache = ArtifactCache(tmp_path, obs=obs)
        cache.load_payload(self.fp(seed=1))
        cache.save_payload(self.fp(seed=1), [1])
        cache.load_payload(self.fp(seed=1))
        metrics = obs.metrics
        assert metrics.counter("cache_hits_total").total == 1
        assert metrics.counter("cache_misses_total").total == 1
        assert metrics.counter("cache_invalidations_total").total == 0

    def test_stale_fingerprint_evicts_and_recomputes(self, tmp_path):
        obs = Observability()
        cache = ArtifactCache(tmp_path, obs=obs)
        cache.save_payload(self.fp(seed=1), ["old"])
        # Same slot, different parameters: the entry is stale.
        assert cache.load_payload(self.fp(seed=2)) is None
        inval = obs.metrics.counter("cache_invalidations_total")
        assert inval.value(stage="adoption") == 1
        # The evicted entry is gone for the old fingerprint too.
        assert cache.load_payload(self.fp(seed=1)) is None
        # Repopulating under the new fingerprint works.
        cache.save_payload(self.fp(seed=2), ["new"])
        assert cache.load_payload(self.fp(seed=2)) == ["new"]

    def test_corrupt_manifest_is_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.save_payload(self.fp(seed=1), [1])
        entry = tmp_path / self.fp(seed=1).slot() / "entry.json"
        entry.write_text("{not json", encoding="utf-8")
        assert cache.load_payload(self.fp(seed=1)) is None

    def test_truncated_artifact_is_miss(self, tmp_path):
        obs = Observability()
        cache = ArtifactCache(tmp_path, obs=obs)
        cache.save_payload(self.fp(seed=1), list(range(100)))
        artifact = tmp_path / self.fp(seed=1).slot() / "artifact.json"
        data = artifact.read_text(encoding="utf-8")
        artifact.write_text(data[: len(data) - 20], encoding="utf-8")
        assert cache.load_payload(self.fp(seed=1)) is None
        misses = obs.metrics.counter("cache_misses_total")
        assert misses.value(stage="adoption", reason="corrupt") == 1
        # Cold compute repopulates over the bad entry.
        cache.save_payload(self.fp(seed=1), list(range(100)))
        assert cache.load_payload(self.fp(seed=1)) == list(range(100))

    def test_schema_bump_raises_naming_entry(self, tmp_path, monkeypatch):
        cache = ArtifactCache(tmp_path)
        cache.save_payload(self.fp(seed=1), [1])
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", 2)
        with pytest.raises(CacheSchemaError) as err:
            cache.load_payload(self.fp(seed=1))
        message = str(err.value)
        assert self.fp(seed=1).slot() in message
        assert "schema" in message

    def test_missed_lookup_does_not_commit(self, tmp_path):
        """A lookup must never create a readable entry by itself."""
        cache = ArtifactCache(tmp_path)
        cache.load_payload(self.fp(seed=1))
        assert not (tmp_path / self.fp(seed=1).slot() / "entry.json").exists()

    def test_resolve_cache_none_propagates(self):
        assert resolve_cache(None) is None


# ----------------------------------------------------------------------
# Store entries (crawl phase)
# ----------------------------------------------------------------------
class TestStoreEntries:
    def fp(self):
        return Fingerprint.build("social-crawl", key=("w",), seed=3)

    def test_store_roundtrip_exact(self, tmp_path, social_store):
        cache = ArtifactCache(tmp_path)
        cache.save_capture_store(self.fp(), social_store)
        loaded = cache.load_capture_store(self.fp())
        assert loaded is not None
        assert store_digest(loaded) == store_digest(social_store)
        assert loaded.n_captures == social_store.n_captures
        assert loaded.total_requests == social_store.total_requests

    def test_truncated_shard_is_miss(self, tmp_path, social_store):
        cache = ArtifactCache(tmp_path)
        cache.save_capture_store(self.fp(), social_store)
        shard = tmp_path / self.fp().slot() / "shard-0000.jsonl"
        data = shard.read_text(encoding="utf-8")
        shard.write_text(data[: len(data) // 2], encoding="utf-8")
        assert cache.load_capture_store(self.fp()) is None

    def test_missing_shard_is_miss(self, tmp_path, social_store):
        cache = ArtifactCache(tmp_path)
        cache.save_capture_store(self.fp(), [social_store, social_store])
        (tmp_path / self.fp().slot() / "shard-0001.jsonl").unlink()
        assert cache.load_capture_store(self.fp()) is None

    def test_artifact_kind_mismatch_is_miss(self, tmp_path):
        """A JSON entry must not satisfy a store lookup (or vice versa)."""
        cache = ArtifactCache(tmp_path)
        cache.save_payload(self.fp(), [1])
        assert cache.load_capture_store(self.fp()) is None


# ----------------------------------------------------------------------
# End to end: warm study runs
# ----------------------------------------------------------------------
class TestWarmStudy:
    def test_warm_rerun_bit_identical_and_skips_crawl(self, tmp_path):
        when = dt.date(2020, 3, 10)
        exports = []
        for run in ("cold", "warm"):
            obs = Observability()
            study = Study(small_config(tmp_path), obs=obs)
            store = study.run_social_crawl()
            series = study.adoption_series(store)
            table = study.vantage_table(when)
            curve = study.marketshare_curve(when)
            out = tmp_path / f"store-{run}.jsonl"
            save_store(store, out)
            exports.append(
                (
                    out.read_bytes(),
                    json.dumps(series.to_payload(), sort_keys=True),
                    json.dumps(table.to_payload(), sort_keys=True),
                    json.dumps(curve.to_payload(), sort_keys=True),
                )
            )
            if run == "cold":
                assert study.last_crawl_stats.crawls > 0
                assert obs.metrics.counter("cache_misses_total").total > 0
            else:
                # The entire crawl phase is skipped on a warm rerun.
                assert study.last_crawl_stats.crawls == 0
                assert study.cache.hits() >= 4
        assert exports[0] == exports[1]

    def test_parallel_entry_serves_serial_run(self, tmp_path):
        parallel = Study(small_config(tmp_path, parallelism=3))
        p_store = parallel.run_social_crawl()
        entry = next(
            d
            for d in (tmp_path / "cache").iterdir()
            if d.name.startswith("social-crawl")
        )
        shards = list(entry.glob("shard-*.jsonl"))
        assert len(shards) > 1  # per-shard granularity preserved
        serial = Study(small_config(tmp_path))
        s_store = serial.run_social_crawl()
        assert serial.last_crawl_stats.crawls == 0
        assert store_digest(s_store) == store_digest(p_store)

    def test_config_change_invalidates(self, tmp_path):
        study = Study(small_config(tmp_path))
        study.run_social_crawl()
        obs = Observability()
        other = Study(small_config(tmp_path, events_per_day=31), obs=obs)
        other.run_social_crawl()
        assert other.last_crawl_stats.crawls > 0
        inval = obs.metrics.counter("cache_invalidations_total")
        assert inval.value(stage="social-crawl") == 1

    def test_retain_captures_bypasses_cache(self, tmp_path):
        study = Study(small_config(tmp_path))
        study.run_social_crawl(retain_captures=True)
        assert not (tmp_path / "cache").exists()

    def test_no_cache_dir_runs_cold(self, tmp_path):
        study = Study(small_config(tmp_path, cache_dir=None))
        assert study.cache is None
        store = study.run_social_crawl()
        assert study.last_crawl_stats.crawls > 0
        assert store.observations

    def test_adoption_content_addressed_on_store(self, tmp_path):
        """A different input store must not be served the cached series."""
        study = Study(small_config(tmp_path))
        full = study.run_social_crawl()
        study.adoption_series(full)
        half = study.run_social_crawl(WINDOW[0], WINDOW[0] + dt.timedelta(days=7))
        series_half = study.adoption_series(half)
        cold = Study(small_config(tmp_path, cache_dir=None))
        half_cold = cold.run_social_crawl(
            WINDOW[0], WINDOW[0] + dt.timedelta(days=7)
        )
        assert (
            series_half.to_payload()
            == cold.adoption_series(half_cold).to_payload()
        )
