"""DOM tree model, selector engine, and DOM-based detection."""

import datetime as dt

import pytest

from repro.cmps.base import CMP_KEYS, DialogButton, DialogDescriptor
from repro.detect.domdetect import (
    detect_cmp_from_dialog,
    detect_cmp_from_dom,
    detect_cmp_from_text,
)
from repro.net.url import URL
from repro.web.dom import (
    DomNode,
    SelectorError,
    build_dialog_dom,
    build_page_dom,
)
from repro.web.serving import VisitSettings, render_page

MAY = dt.date(2020, 5, 15)


def sample_tree():
    html = DomNode(tag="html")
    body = html.append(DomNode(tag="body"))
    dialog = body.append(
        DomNode(tag="div", id="dialog", classes=("modal", "visible"))
    )
    dialog.append(DomNode(tag="button", classes=("btn", "accept"),
                          text="Accept"))
    dialog.append(DomNode(tag="button", classes=("btn", "reject"),
                          text="Reject"))
    body.append(DomNode(tag="footer", text="fine print"))
    return html


class TestSelectorEngine:
    def test_by_id(self):
        assert sample_tree().select_one("#dialog") is not None

    def test_by_class(self):
        assert len(sample_tree().select(".btn")) == 2

    def test_by_tag(self):
        assert len(sample_tree().select("button")) == 2

    def test_tag_and_class(self):
        found = sample_tree().select("button.accept")
        assert len(found) == 1
        assert found[0].text == "Accept"

    def test_multi_class(self):
        assert len(sample_tree().select(".modal.visible")) == 1
        assert sample_tree().select(".modal.hidden") == []

    def test_descendant_combinator(self):
        assert len(sample_tree().select("#dialog .btn")) == 2
        assert sample_tree().select("footer .btn") == []

    def test_no_self_match_in_descendant(self):
        tree = sample_tree()
        # "#dialog #dialog" must not match the node against itself.
        assert tree.select("#dialog #dialog") == []

    def test_unsupported_selector(self):
        with pytest.raises(SelectorError):
            sample_tree().select("div > button")
        with pytest.raises(SelectorError):
            sample_tree().select("")

    def test_all_text(self):
        assert "Accept" in sample_tree().all_text
        assert "fine print" in sample_tree().all_text


class TestDialogDom:
    def dialog(self, cmp_key="quantcast", **kwargs):
        return DialogDescriptor(
            cmp_key=cmp_key,
            kind=kwargs.pop("kind", "modal"),
            buttons=(
                DialogButton("I ACCEPT", "accept-all"),
                DialogButton("I DO NOT ACCEPT", "reject-all"),
            ),
            **kwargs,
        )

    @pytest.mark.parametrize("key", CMP_KEYS)
    def test_stock_markup_detected(self, key):
        node = build_dialog_dom(self.dialog(cmp_key=key))
        assert detect_cmp_from_dom(node) == (key,)

    def test_buttons_rendered(self):
        node = build_dialog_dom(self.dialog())
        assert "I ACCEPT" in node.all_text

    def test_attribution_text_detected(self):
        node = build_dialog_dom(self.dialog())
        assert detect_cmp_from_text(node.all_text) == ("quantcast",)

    def test_custom_ui_is_unrecognizable(self):
        d = DialogDescriptor(
            cmp_key="quantcast", kind="banner", custom_api_only=True
        )
        node = build_dialog_dom(d)
        assert node is not None
        assert detect_cmp_from_dom(node) == ()
        assert detect_cmp_from_text(node.all_text) == ()

    def test_none_dialog_renders_nothing(self):
        d = DialogDescriptor(cmp_key="quantcast", kind="none",
                             custom_api_only=True)
        assert build_dialog_dom(d) is None


class TestDomDetection:
    def test_shown_dialog_detected(self):
        d = DialogDescriptor(
            cmp_key="onetrust",
            kind="banner",
            buttons=(DialogButton("Accept", "accept-all"),),
        )
        assert detect_cmp_from_dialog(d, True) == "onetrust"

    def test_hidden_dialog_missed(self):
        # The DOM detector's first failure mode: geo-gated dialogs.
        d = DialogDescriptor(
            cmp_key="onetrust",
            kind="banner",
            buttons=(DialogButton("Accept", "accept-all"),),
            shown_regions=frozenset({"US"}),
        )
        assert detect_cmp_from_dialog(d, False) is None

    def test_no_dialog(self):
        assert detect_cmp_from_dialog(None, False) is None

    def test_dom_undercounts_vs_network(self, world):
        """The paper's reason for network fingerprints, quantified."""
        from repro.detect.engine import detect_cmp
        from repro.crawler.browser import EXTENDED_PROFILE, crawl_url
        from repro.crawler.capture import EU_UNIVERSITY

        network_hits = dom_hits = 0
        when = dt.datetime(2020, 5, 15, 12)
        for rank in range(1, 2500):
            site = world.site(rank)
            if site.cmp_on(MAY) is None or site.redirects_to is not None:
                continue
            cap = crawl_url(
                world,
                URL.parse(f"https://www.{site.domain}/"),
                when=when,
                vantage=EU_UNIVERSITY,
                profile=EXTENDED_PROFILE,
            )
            if detect_cmp(cap).cmp_key:
                network_hits += 1
            if detect_cmp_from_dialog(cap.dom_dialog, cap.dialog_shown):
                dom_hits += 1
        assert network_hits > 0
        assert dom_hits < network_hits


class TestPageDom:
    def test_full_page_tree(self, world):
        site = next(
            world.site(r)
            for r in range(1, 4000)
            if world.site(r).cmp_on(MAY)
            and not world.site(r).behind_antibot_cdn
            and world.site(r).redirects_to is None
            and world.site(r).episode_on(MAY).dialog.shown_to("EU")
        )
        page = render_page(
            world,
            URL.parse(f"https://www.{site.domain}/"),
            VisitSettings(date=MAY, region="EU", address_space="university"),
        )
        dom = build_page_dom(page)
        assert dom.select_one("header") is not None
        assert dom.select_one("footer .footer-link") is not None
        assert detect_cmp_from_dom(dom) == (site.cmp_on(MAY),)
