"""Market concentration, jurisdictions, and dialog rendering."""

import datetime as dt
import random

import pytest

from repro.cmps import quantcast
from repro.cmps.base import DialogButton, DialogDescriptor
from repro.cmps.render import render_dialog
from repro.core.concentration import (
    cmp_counts,
    hhi,
    hhi_series,
    jurisdiction_report,
)

MAY = dt.date(2020, 5, 15)


class TestHhi:
    def test_monopoly(self):
        assert hhi({"a": 10}) == 1.0

    def test_even_split(self):
        assert hhi({"a": 5, "b": 5}) == pytest.approx(0.5)

    def test_empty_market_rejected(self):
        with pytest.raises(ValueError):
            hhi({})
        with pytest.raises(ValueError):
            hhi({"a": 0})

    def test_bounds(self):
        value = hhi({"a": 7, "b": 2, "c": 1})
        assert 1 / 3 < value < 1.0


class TestWorldConcentration:
    def test_cmp_counts(self, world):
        counts = cmp_counts(world, MAY, max_rank=5_000)
        assert counts  # the market exists
        assert counts["onetrust"] > 0

    def test_hhi_series_over_study(self, world):
        dates = [
            dt.date(2018, 7, 1),
            dt.date(2019, 7, 1),
            dt.date(2020, 7, 1),
        ]
        series = hhi_series(world, dates, max_rank=5_000)
        assert len(series) == 3
        for _, value in series:
            # A handful of firms, none a monopoly.
            assert 0.2 < value < 0.7

    def test_jurisdictions_have_distinct_leaders(self, world):
        report = jurisdiction_report(world, MAY, max_rank=5_000)
        # Quantcast dominates EU+UK TLDs; OneTrust the rest (the
        # paper's "multiple distinct coalitions" observation).
        assert report.eu_uk_leader == "quantcast"
        assert report.other_leader == "onetrust"
        assert report.distinct_coalitions
        assert 0.2 < report.leader_share("eu-uk") <= 1.0

    def test_leader_share_requires_sites(self):
        from collections import Counter
        from repro.core.concentration import JurisdictionReport

        empty = JurisdictionReport(
            date=MAY, eu_uk_counts=Counter({"quantcast": 1}),
            other_counts=Counter(),
        )
        with pytest.raises(ValueError):
            empty.leader_share("other")


class TestRenderDialog:
    def test_direct_reject_box(self):
        rng = random.Random(0)
        dialog = next(
            d
            for d in (quantcast.sample_dialog(rng) for _ in range(100))
            if d.has_first_page_reject
        )
        text = render_dialog(dialog)
        assert "We value your privacy" in text
        assert "Powered by Quantcast" in text
        assert "I DO NOT ACCEPT" in text

    def test_more_options_second_page(self):
        rng = random.Random(1)
        dialog = next(
            d
            for d in (quantcast.sample_dialog(rng) for _ in range(100))
            if not d.has_first_page_reject and d.kind != "none"
        )
        page2 = render_dialog(dialog, page=2)
        assert "REJECT ALL" in page2

    def test_api_only_placeholder(self):
        d = DialogDescriptor(
            cmp_key="quantcast", kind="none", custom_api_only=True
        )
        assert "API only" in render_dialog(d)

    def test_footer_link_rendering(self):
        d = DialogDescriptor(
            cmp_key="onetrust",
            kind="footer-link",
            buttons=(DialogButton("Do Not Sell", "settings-link"),),
        )
        assert "Do Not Sell" in render_dialog(d)

    def test_box_is_rectangular(self):
        d = DialogDescriptor(
            cmp_key="trustarc",
            kind="banner",
            buttons=(DialogButton("Accept All", "accept-all"),),
        )
        lines = render_dialog(d).splitlines()
        widths = {len(line) for line in lines if line.startswith(("|", "+"))}
        assert len(widths) == 1
