"""Tests for ``repro.lint`` -- the determinism & contract linter.

Three layers:

* per-rule positive/negative fixture snippets run through
  :func:`lint_source` with an empty allowlist (so rules apply to the
  virtual fixture path);
* framework behaviour -- suppressions, unused-suppression detection,
  baseline round-trips, reporters, the CLI and its exit codes;
* the meta-test: the repository's own ``src`` and ``scripts`` trees
  are lint-clean against the committed (empty) baseline.
"""

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_CONFIG,
    Baseline,
    LintConfig,
    lint_paths,
    lint_source,
)
from repro.lint.cli import main
from repro.lint.engine import PARSE_ERROR
from repro.lint.rules import RULES, WHOLE_PROGRAM_RULES
from repro.lint.suppress import UNUSED_SUPPRESSION

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Config with no allowlists: fixture snippets always get the rule.
STRICT = LintConfig()


def check(code, path="fixture.py", config=STRICT):
    """Lint a dedented snippet; return the list of rule ids found."""
    result = lint_source(textwrap.dedent(code), path, config)
    return [f.rule for f in result.findings]


# ---------------------------------------------------------------------------
# DET001 -- unseeded randomness
# ---------------------------------------------------------------------------


class TestDet001:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nrng = random.Random()\n",
            "import random\nx = random.random()\n",
            "import random\nx = random.randint(1, 6)\n",
            "import random\nrandom.shuffle(items)\n",
            "import random\nrandom.seed(42)\n",
            "import random\nrng = random.SystemRandom()\n",
        ],
    )
    def test_positive(self, snippet):
        assert check(snippet) == ["DET001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nrng = random.Random(7)\n",
            'import random\nrng = random.Random(f"{seed}:x")\n',
            "import random\nrng = random.Random(seed=seed)\n",
            "x = rng.random()\n",  # instance call, not module-level
            "x = rng.shuffle(items)\n",
        ],
    )
    def test_negative(self, snippet):
        assert check(snippet) == []


# ---------------------------------------------------------------------------
# DET002 -- wall-clock reads
# ---------------------------------------------------------------------------


class TestDet002:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.monotonic()\n",
            "import time\nt = time.perf_counter()\n",
            "import datetime\nnow = datetime.datetime.now()\n",
            "import datetime as dt\ntoday = dt.date.today()\n",
            "from datetime import datetime\nx = datetime.utcnow()\n",
        ],
    )
    def test_positive(self, snippet):
        assert check(snippet) == ["DET002"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import datetime as dt\nd = dt.date(2020, 5, 15)\n",
            "d = window.start\n",
        ],
    )
    def test_negative(self, snippet):
        assert check(snippet) == []

    def test_sleeping_is_not_reading(self):
        # Waiting is DET005's business, never a DET002 wall-clock read.
        rules = check("import time\ntime.sleep(0.1)\n")
        assert "DET002" not in rules

    def test_allowlisted_path_is_skipped(self):
        code = "import time\nt = time.time()\n"
        allowed = LintConfig(allow={"DET002": ("src/repro/obs/trace.py",)})
        assert check(code, path="src/repro/obs/trace.py", config=allowed) == []
        assert check(code, path="src/repro/x.py", config=allowed) == ["DET002"]


# ---------------------------------------------------------------------------
# DET003 -- salted hash()
# ---------------------------------------------------------------------------


class TestDet003:
    def test_positive(self):
        assert check('bucket = hash(domain) % 100\n') == ["DET003"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import zlib\nbucket = zlib.crc32(domain.encode()) % 100\n",
            "import hashlib\nd = hashlib.sha256(b'x').hexdigest()\n",
            "h = obj.hash()\n",  # method, not the builtin
            "def __hash__(self):\n    return 3\n",
        ],
    )
    def test_negative(self, snippet):
        assert check(snippet) == []


# ---------------------------------------------------------------------------
# DET004 -- unordered iteration
# ---------------------------------------------------------------------------


class TestDet004:
    @pytest.mark.parametrize(
        "snippet",
        [
            "for x in {1, 2, 3}:\n    use(x)\n",
            "for x in set(xs):\n    use(x)\n",
            "ys = [f(x) for x in frozenset(xs)]\n",
            "ys = list(set(xs))\n",
            "ys = tuple({x for x in xs})\n",
            "s = ','.join({str(x) for x in xs})\n",
            "import os\nfor name in os.listdir(path):\n    use(name)\n",
            "import glob\nfor p in glob.glob('*.json'):\n    use(p)\n",
            "for p in path.iterdir():\n    use(p)\n",
            "def f(d):\n    return d.keys()\n",
            "def f(d):\n    return list(d.keys())\n",
        ],
    )
    def test_positive(self, snippet):
        assert check(snippet) == ["DET004"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "for x in sorted(set(xs)):\n    use(x)\n",
            "n = len(set(xs))\n",
            "m = max({1, 2, 3})\n",
            "ok = x in {1, 2, 3}\n",
            "def f(xs):\n    return frozenset(xs)\n",  # set-typed API value
            "def f(xs):\n    return {g(x) for x in xs}\n",
            "def f(d):\n    return sorted(d.keys())\n",
            "for k in d:\n    use(k)\n",  # plain dict iteration is ordered
            "import os\nnames = sorted(os.listdir(path))\n",
            "seen = set(xs)\n",  # storing a set is fine; use-sites lint
        ],
    )
    def test_negative(self, snippet):
        assert check(snippet) == []


# ---------------------------------------------------------------------------
# DET005 -- bare time.sleep outside the injectable-clock seam
# ---------------------------------------------------------------------------


class TestDet005:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\ntime.sleep(0.1)\n",
            "import time\ntime.sleep(delay)\n",
            "from time import sleep\nsleep(2)\n",
        ],
    )
    def test_positive(self, snippet):
        assert check(snippet) == ["DET005"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "clock.sleep(0.5)\n",  # the injectable seam
            "self.clock.sleep(delay)\n",
            "await asyncio.sleep(0)\n",  # not the blocking builtin
            "import time\nt = time.perf_counter\n",  # no call
        ],
    )
    def test_negative(self, snippet):
        assert "DET005" not in check(snippet)

    def test_clock_module_is_allowlisted_by_default(self):
        code = "import time\ntime.sleep(seconds)\n"
        path = "src/repro/faults/clock.py"
        assert check(code, path=path, config=DEFAULT_CONFIG) == []
        assert check(code, path="src/repro/crawler/browser.py") == ["DET005"]


# ---------------------------------------------------------------------------
# MUT001 -- mutable defaults
# ---------------------------------------------------------------------------


class TestMut001:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(a=[]):\n    pass\n",
            "def f(a={}):\n    pass\n",
            "def f(a=set()):\n    pass\n",
            "def f(a=dict()):\n    pass\n",
            "def f(*, a=[]):\n    pass\n",
            "import collections\ndef f(a=collections.defaultdict(int)):\n"
            "    pass\n",
            "async def f(a=[]):\n    pass\n",
        ],
    )
    def test_positive(self, snippet):
        assert check(snippet) == ["MUT001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(a=None):\n    pass\n",
            "def f(a=()):\n    pass\n",
            "def f(a='x', b=3):\n    pass\n",
            "def f(a=frozenset()):\n    pass\n",
        ],
    )
    def test_negative(self, snippet):
        assert check(snippet) == []


# ---------------------------------------------------------------------------
# OBS001 -- obs names must be literals
# ---------------------------------------------------------------------------


class TestObs001:
    @pytest.mark.parametrize(
        "snippet",
        [
            "c = metrics.counter(name)\n",
            'c = metrics.counter(f"crawls_{kind}", "help")\n',
            "g = metrics.gauge(prefix + '_depth')\n",
            "h = metrics.histogram(NAME)\n",
            "with obs.span(label):\n    pass\n",
            "obs.event(name, url=url)\n",
        ],
    )
    def test_positive(self, snippet):
        assert check(snippet) == ["OBS001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            'c = metrics.counter("detect_captures_total", "help")\n',
            'with obs.span("platform.run", parallel=True):\n    pass\n',
            'obs.event("shard.done", shard=3)\n',
            "c.inc(cmp=key)\n",  # labels may be variables
        ],
    )
    def test_negative(self, snippet):
        assert check(snippet) == []

    def test_obs_layer_itself_is_allowlisted_by_default(self):
        code = "def span(self, name):\n    return self.tracer.span(name)\n"
        path = "src/repro/obs/__init__.py"
        assert check(code, path=path, config=DEFAULT_CONFIG) == []
        assert check(code, path="src/repro/web/dom.py") == ["OBS001"]


# ---------------------------------------------------------------------------
# Framework: suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_same_line_suppression(self):
        code = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=DET002\n"
        )
        result = lint_source(code, "x.py", STRICT)
        assert result.findings == []
        assert result.suppressed == 1

    def test_suppression_list_and_all(self):
        code = (
            "import time, random\n"
            "t = time.time() + random.random()"
            "  # repro-lint: disable=DET001,DET002\n"
            "u = time.time() + random.random()  # repro-lint: disable=all\n"
        )
        result = lint_source(code, "x.py", STRICT)
        assert result.findings == []
        assert result.suppressed == 4

    def test_unused_suppression_is_reported(self):
        code = "x = 1  # repro-lint: disable=DET002\n"
        result = lint_source(code, "x.py", STRICT)
        assert [f.rule for f in result.findings] == [UNUSED_SUPPRESSION]
        assert result.findings[0].line == 1

    def test_wrong_rule_suppression_keeps_finding(self):
        code = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=DET001\n"
        )
        rules = sorted(f.rule for f in lint_source(code, "x.py", STRICT).findings)
        assert rules == ["DET002", UNUSED_SUPPRESSION]

    def test_directive_on_other_line_does_not_apply(self):
        code = (
            "# repro-lint: disable=DET002\n"
            "import time\n"
            "t = time.time()\n"
        )
        rules = sorted(f.rule for f in lint_source(code, "x.py", STRICT).findings)
        assert rules == ["DET002", UNUSED_SUPPRESSION]

    def test_directive_inside_string_is_ignored(self):
        code = 's = "# repro-lint: disable=DET002"\n'
        assert lint_source(code, "x.py", STRICT).findings == []


# ---------------------------------------------------------------------------
# Framework: parse errors, baseline
# ---------------------------------------------------------------------------


def test_parse_error_is_a_finding():
    result = lint_source("def broken(:\n", "bad.py", STRICT)
    assert [f.rule for f in result.findings] == [PARSE_ERROR]


class TestBaseline:
    def _findings(self):
        code = "import time\nt = time.time()\nu = time.time()\n"
        return lint_source(code, "mod.py", STRICT).findings

    def test_round_trip(self, tmp_path):
        findings = self._findings()
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.write(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert len(loaded) == 2

    def test_written_file_is_deterministic(self, tmp_path):
        baseline = Baseline.from_findings(self._findings())
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        baseline.write(a)
        baseline.write(b)
        assert a.read_text() == b.read_text()

    def test_apply_consumes_counts(self):
        findings = self._findings()
        baseline = Baseline.from_findings(findings[:1])  # budget of 1
        new, baselined = baseline.apply(findings)
        assert baselined == 1
        assert len(new) == 1  # second identical finding is new

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0
        new, baselined = baseline.apply(self._findings())
        assert (len(new), baselined) == (2, 0)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(args):
    out, err = io.StringIO(), io.StringIO()
    code = main(args, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


class TestCli:
    @pytest.fixture
    def project(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "dirty.py").write_text(
            "import random\nrng = random.Random()\n"
        )
        (tmp_path / "pkg" / "clean.py").write_text(
            "import random\nrng = random.Random(7)\n"
        )
        return tmp_path

    def test_findings_exit_1(self, project):
        code, out, _ = run_cli([str(project / "pkg")])
        assert code == 1
        assert "DET001" in out

    def test_clean_exit_0(self, project):
        code, out, _ = run_cli([str(project / "pkg" / "clean.py")])
        assert code == 0
        assert "clean" in out

    def test_write_baseline_then_clean(self, project):
        baseline = project / "baseline.json"
        code, _, _ = run_cli(
            [str(project / "pkg"), "--baseline", str(baseline),
             "--write-baseline"]
        )
        assert code == 0 and baseline.exists()
        code, out, _ = run_cli(
            [str(project / "pkg"), "--baseline", str(baseline)]
        )
        assert code == 0
        assert "1 baselined" in out

    def test_json_format(self, project):
        code, out, _ = run_cli(
            [str(project / "pkg"), "--format", "json"]
        )
        assert code == 1
        document = json.loads(out)
        assert document["clean"] is False
        assert document["counts"] == {"DET001": 1}
        assert document["findings"][0]["rule"] == "DET001"

    def test_select_and_ignore(self, project):
        code, _, _ = run_cli(
            [str(project / "pkg"), "--select", "DET002"]
        )
        assert code == 0
        code, _, _ = run_cli(
            [str(project / "pkg"), "--ignore", "DET001"]
        )
        assert code == 0

    def test_unknown_rule_exit_2(self, project):
        code, _, err = run_cli([str(project), "--select", "NOPE99"])
        assert code == 2
        assert "unknown rule" in err

    def test_missing_path_exit_2(self, tmp_path):
        code, _, err = run_cli([str(tmp_path / "missing")])
        assert code == 2
        assert "no such path" in err

    def test_list_rules(self):
        code, out, _ = run_cli(["--list-rules"])
        assert code == 0
        for rule_id in RULES:
            assert rule_id in out
        for rule_id in WHOLE_PROGRAM_RULES:
            assert rule_id in out

    def test_family_prefix_select(self, project):
        # "DET" selects the whole family; the fixture violation is DET001.
        code, out, _ = run_cli([str(project / "pkg"), "--select", "DET"])
        assert code == 1
        assert "DET001" in out
        # Selecting a different family runs zero matching rules here.
        code, _, _ = run_cli([str(project / "pkg"), "--select", "MUT"])
        assert code == 0

    def test_family_prefix_ignore(self, project):
        code, _, _ = run_cli([str(project / "pkg"), "--ignore", "DET"])
        assert code == 0

    def test_family_prefix_validation(self, project):
        # A prefix matching nothing is rejected like an unknown id.
        code, _, err = run_cli([str(project / "pkg"), "--select", "ZZZ"])
        assert code == 2
        assert "unknown rule" in err

    @pytest.mark.parametrize("rule_id", ["DET001", "XMOD001", "CACHE001"])
    def test_explain_prints_rationale_and_example(self, rule_id):
        code, out, _ = run_cli(["--explain", rule_id])
        assert code == 0
        assert rule_id in out
        assert "Example:" in out
        # The rationale is the rule's docstring: multi-line prose.
        assert len(out.strip().splitlines()) > 3

    def test_explain_every_registered_rule(self):
        for rule_id in list(RULES) + list(WHOLE_PROGRAM_RULES):
            code, out, _ = run_cli(["--explain", rule_id])
            assert code == 0, rule_id
            assert "Example:" in out, rule_id

    def test_explain_unknown_rule_exit_2(self):
        code, _, err = run_cli(["--explain", "NOPE99"])
        assert code == 2
        assert "unknown rule" in err

    def test_unused_suppression_fails_run(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # repro-lint: disable=DET002\n")
        code, out, _ = run_cli([str(target)])
        assert code == 1
        assert UNUSED_SUPPRESSION in out


# ---------------------------------------------------------------------------
# Meta: this repository obeys its own contract
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_committed_baseline_is_empty(self):
        data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert data["findings"] == []

    def test_src_and_scripts_are_lint_clean(self):
        result = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "scripts"],
            DEFAULT_CONFIG,
            root=REPO_ROOT,
        )
        formatted = "\n".join(f.format() for f in result.findings)
        assert result.clean, f"lint findings in tree:\n{formatted}"
        assert result.files >= 90

    def test_seeded_violation_in_src_would_be_caught(self, tmp_path):
        # The acceptance scenario: a random.Random() slips into a
        # pipeline module -> CI's `make lint` run must fail.
        bad = tmp_path / "src" / "repro" / "sneaky.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n_RNG = random.Random()\n")
        result = lint_paths([tmp_path / "src"], DEFAULT_CONFIG, root=tmp_path)
        assert [f.rule for f in result.findings] == ["DET001"]

    def test_report_is_deterministic(self):
        runs = [
            lint_paths(
                [REPO_ROOT / "src" / "repro" / "crawler"],
                DEFAULT_CONFIG,
                root=REPO_ROOT,
            )
            for _ in range(2)
        ]
        assert (
            [f.format() for f in runs[0].findings]
            == [f.format() for f in runs[1].findings]
        )
        assert runs[0].suppressed == runs[1].suppressed
