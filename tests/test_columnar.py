"""Columnar CaptureStore invariants (PR 6 tentpole).

Pins the three contracts the columnar rewrite rests on:

* ``from_captures`` -> ``to_captures`` is an exact identity (the
  struct-of-arrays packing loses nothing);
* merging segment stores in order is bit-identical to serial appends --
  rows, interning tables, digests, and query-view ordering all match;
* the batched detection path returns exactly what the per-capture
  ``detect`` loop returns, counters included.

Plus the vectorized key-derivation parity (`numpy` fold/draw vs the
scalar :mod:`repro.det` reference) and the columnar adoption path.
"""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adoption import AdoptionSeries
from repro.crawler.browser import crawl_url
from repro.crawler.capture import Capture, Observation, Vantage
from repro.crawler.columnar import (
    VANTAGE_IDS,
    VANTAGE_TABLE,
    CaptureStore,
    vantage_id,
)
from repro.crawler.platform import (
    NetographPlatform,
    PlatformConfig,
    _draw_arr,
    _fold64_arr,
)
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.crawler.storage import store_digest
from repro.det import KeyedRand, fold64
from repro.detect.engine import DetectionEngine, hosts_mask
from repro.net.url import URL
from repro.web.worldgen import World, WorldConfig

np = pytest.importorskip("numpy")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_domain = st.from_regex(r"[a-z]{1,8}\.(com|org|de)", fullmatch=True)
_cmp = st.one_of(st.none(), st.sampled_from(["onetrust", "quantcast", "sp"]))
_vantage = st.sampled_from(VANTAGE_TABLE)
_date = st.dates(dt.date(2018, 1, 1), dt.date(2021, 12, 31))


@st.composite
def _captures(draw):
    """Synthetic captures spanning the scalar-packing edge cases."""
    n = draw(st.integers(min_value=0, max_value=12))
    out = []
    for i in range(n):
        host = draw(_domain)
        status = draw(
            st.one_of(st.none(), st.sampled_from([200, 204, 301, 404, 503]))
        )
        out.append(
            Capture(
                capture_id=draw(st.integers(0, 2**40)),
                seed_url=URL.parse(f"https://www.{host}/"),
                final_url=URL.parse(f"https://{host}/landing"),
                captured_at=dt.datetime(2020, 1, 1, 12)
                + dt.timedelta(minutes=i),
                vantage=draw(_vantage),
                status=status,
                page_text=draw(st.text(max_size=20)),
                timed_out=draw(st.booleans()),
                dialog_shown=draw(st.booleans()),
                blocked_by_antibot=draw(st.booleans()),
                fault=draw(st.one_of(st.none(), st.just("net.timeout"))),
            )
        )
    return out


_rows = st.lists(
    st.tuples(
        _domain,
        st.integers(dt.date(2018, 1, 1).toordinal(),
                    dt.date(2021, 12, 31).toordinal()),
        _cmp,
        st.integers(0, len(VANTAGE_TABLE) - 1),
        st.integers(0, 50),
    ),
    max_size=60,
)


def _store_from_rows(rows):
    store = CaptureStore()
    for domain, ordinal, cmp_key, vid, n_req in rows:
        store.append_row(domain, ordinal, cmp_key, vid, n_req)
    return store


# ----------------------------------------------------------------------
# Round-trip identity
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(captures=_captures())
    def test_from_captures_to_captures_identity(self, captures):
        store = CaptureStore.from_captures(captures)
        assert store.to_captures() == captures

    def test_real_crawl_captures_roundtrip(self):
        # Browser-produced captures exercise every reference column
        # (transactions, cookies, screenshots, storage records).
        world = World(WorldConfig(seed=11, n_domains=150))
        captures = [
            crawl_url(
                world,
                URL.parse(f"https://www.{world.site(rank).domain}/"),
                when=dt.datetime(2020, 5, 1 + rank % 20, 9),
                vantage=VANTAGE_TABLE[rank % len(VANTAGE_TABLE)],
            )
            for rank in range(1, 13)
        ]
        store = CaptureStore.from_captures(captures)
        assert store.to_captures() == captures
        assert store.n_captures == len(captures)

    @settings(max_examples=60, deadline=None)
    @given(rows=_rows)
    def test_append_batch_equals_append_row(self, rows):
        serial = _store_from_rows(rows)
        batched = CaptureStore()
        batched.append_batch(
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
            [r[3] for r in rows],
            [r[4] for r in rows],
        )
        assert list(batched.iter_rows()) == list(serial.iter_rows())
        assert batched.observations == serial.observations
        assert batched.n_captures == serial.n_captures
        assert batched.total_requests == serial.total_requests
        assert store_digest(batched) == store_digest(serial)


# ----------------------------------------------------------------------
# Merge-by-concatenation == serial append
# ----------------------------------------------------------------------
class TestMerge:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=_rows,
        cuts=st.lists(st.integers(0, 60), max_size=3),
    )
    def test_merge_segments_equals_serial(self, rows, cuts):
        serial = _store_from_rows(rows)

        bounds = sorted({min(c, len(rows)) for c in cuts})
        segments = []
        prev = 0
        for cut in bounds + [len(rows)]:
            segments.append(_store_from_rows(rows[prev:cut]))
            prev = cut

        merged = CaptureStore()
        for segment in segments:
            merged.merge(segment)

        assert list(merged.iter_rows()) == list(serial.iter_rows())
        assert merged.observations == serial.observations
        # Interning tables are first-appearance ordered either way --
        # the canonical-encoding argument behind digest_parts.
        assert merged._domains == serial._domains
        assert merged._cmp_keys == serial._cmp_keys
        assert list(merged.by_domain()) == list(serial.by_domain())
        assert merged.n_captures == serial.n_captures
        assert merged.total_requests == serial.total_requests
        assert store_digest(merged) == store_digest(serial)

    @settings(max_examples=40, deadline=None)
    @given(rows=_rows)
    def test_digest_parts_canonical(self, rows):
        """Equal rows <-> equal digests, even via different write paths."""
        serial = _store_from_rows(rows)
        via_obs = CaptureStore()
        for obs in serial.observations:
            via_obs.add_observation(obs)
        via_obs.n_captures = serial.n_captures
        via_obs.total_requests = serial.total_requests
        assert store_digest(via_obs) == store_digest(serial)


# ----------------------------------------------------------------------
# Batched detection == per-capture loop
# ----------------------------------------------------------------------
class TestBatchedDetection:
    def _world_captures(self):
        world = World(WorldConfig(seed=13, n_domains=300))
        captures = []
        for rank in range(1, 120):
            when = dt.datetime(2019, 1, 1, 10) + dt.timedelta(
                days=(rank * 7) % 900
            )
            captures.append(
                crawl_url(
                    world,
                    URL.parse(f"https://www.{world.site(rank).domain}/"),
                    when=when,
                    vantage=VANTAGE_TABLE[rank % len(VANTAGE_TABLE)],
                )
            )
        return captures

    def test_detect_batch_matches_per_capture_detect(self):
        captures = self._world_captures()
        loop_engine = DetectionEngine()
        loop_keys = [loop_engine.detect(c).cmp_key for c in captures]

        batch_engine = DetectionEngine()
        masks = [hosts_mask(c.contacted_hosts) for c in captures]
        ordinals = [c.captured_at.date().toordinal() for c in captures]
        batch_keys = batch_engine.detect_batch(masks, ordinals)

        assert batch_keys == loop_keys
        assert batch_engine.captures_seen == loop_engine.captures_seen
        assert batch_engine.overcounted == loop_engine.overcounted

    def test_detect_batch_empty(self):
        engine = DetectionEngine()
        assert engine.detect_batch([], []) == []
        assert engine.captures_seen == 0


# ----------------------------------------------------------------------
# Vectorized key derivation == scalar repro.det reference
# ----------------------------------------------------------------------
class TestVectorizedKeys:
    @settings(max_examples=30, deadline=None)
    @given(
        state=st.integers(0, 2**64 - 1),
        parts=st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=4),
    )
    def test_fold64_arr_matches_fold64(self, state, parts):
        arr = _fold64_arr(
            state, np.array(parts, dtype=np.uint64), *map(int, parts)
        )
        expected = [fold64(state, p, *parts) for p in parts]
        assert arr.tolist() == expected

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=8),
        position=st.integers(1, 6),
    )
    def test_draw_arr_matches_keyed_rand(self, keys, position):
        drawn = _draw_arr(np.array(keys, dtype=np.uint64), position)
        for value, key in zip(drawn.tolist(), keys):
            rng = KeyedRand(key)
            rng.skip(position - 1)
            assert value == rng.random()


# ----------------------------------------------------------------------
# Columnar adoption path == object path
# ----------------------------------------------------------------------
class TestColumnarAdoption:
    def _store(self):
        world = World(WorldConfig(seed=7, n_domains=1500))
        stream = SocialShareStream(world, StreamConfig(events_per_day=250))
        platform = NetographPlatform(world, stream, PlatformConfig(seed=5))
        return platform.run(dt.date(2020, 4, 1), dt.date(2020, 4, 10))

    def test_from_columnar_matches_from_store(self):
        store = self._store()
        via_objects = AdoptionSeries.from_store(store.by_domain(), None)
        via_columns = AdoptionSeries.from_columnar(store, None)
        assert list(via_columns.timelines) == list(via_objects.timelines)
        assert via_columns.timelines == via_objects.timelines
        assert via_columns.to_payload() == via_objects.to_payload()

    def test_from_columnar_restricted(self):
        store = self._store()
        restrict = list(store.by_domain())[::4]
        via_objects = AdoptionSeries.from_store(store.by_domain(), restrict)
        via_columns = AdoptionSeries.from_columnar(store, restrict)
        assert via_columns.to_payload() == via_objects.to_payload()

    def test_domain_day_rows_matches_by_domain(self):
        store = self._store()
        rows = store.domain_day_rows()
        by_domain = store.by_domain()
        assert list(rows) == list(by_domain)
        for domain, observations in by_domain.items():
            # Same multiset per domain; by_domain is date-sorted while
            # domain_day_rows keeps raw insertion order.
            key = lambda pair: (pair[0], pair[1] or "")
            assert sorted(rows[domain], key=key) == sorted(
                ((o.date.toordinal(), o.cmp_key) for o in observations),
                key=key,
            )


# ----------------------------------------------------------------------
# Vantage table plumbing
# ----------------------------------------------------------------------
class TestVantageTable:
    def test_vantage_id_roundtrip(self):
        for vantage, vid in VANTAGE_IDS.items():
            assert VANTAGE_TABLE[vid] == vantage
            assert vantage_id(vantage.region, vantage.address_space) == vid

    def test_observation_vantages_interned(self):
        store = CaptureStore()
        for vantage in VANTAGE_TABLE:
            store.add_observation(
                Observation("a.com", dt.date(2020, 1, 1), None, vantage)
            )
        assert [o.vantage for o in store.observations] == list(VANTAGE_TABLE)
