"""The six-configuration toplist crawl protocol."""

import datetime as dt

import pytest

from repro.crawler.toplist_crawl import (
    CONFIG_NAMES,
    CRAWL_CONFIGS,
    ToplistCrawler,
)

MAY = dt.date(2020, 5, 15)


@pytest.fixture(scope="module")
def crawl(study):
    return ToplistCrawler(study.world).run(study.tranco.top(200), MAY)


class TestProtocol:
    def test_six_configs(self):
        assert len(CONFIG_NAMES) == 6
        assert CONFIG_NAMES[0] == "us-cloud"

    def test_all_configs_ran(self, crawl):
        assert set(crawl.captures) == set(CONFIG_NAMES)

    def test_reachable_domains_crawled(self, crawl):
        reachable = set(crawl.reachable_domains)
        for captures in crawl.captures.values():
            assert set(captures) == reachable

    def test_unreachable_domains_skipped(self, crawl):
        unreachable = [p for p in crawl.probes if not p.reachable]
        for probe in unreachable:
            for captures in crawl.captures.values():
                assert probe.domain not in captures

    def test_dom_stored_for_all_configs(self, crawl):
        # "For all toplist crawls, we additionally stored the browser's
        # DOM tree" (Section 3.2).
        for name, _, profile in CRAWL_CONFIGS:
            assert profile.store_dom

    def test_unknown_config_rejected(self, study):
        with pytest.raises(KeyError):
            ToplistCrawler(study.world).run(
                ["example.com"], MAY, configs=("warp-drive",)
            )

    def test_captures_for_unknown_config(self, crawl):
        with pytest.raises(KeyError):
            crawl.captures_for("warp-drive")

    def test_vantages_match_config(self, crawl):
        for cap in crawl.captures_for("us-cloud").values():
            assert cap.vantage.region == "US"
            assert cap.vantage.address_space == "cloud"
        for cap in crawl.captures_for("eu-univ-default").values():
            assert cap.vantage.region == "EU"
            assert cap.vantage.address_space == "university"

    def test_retries_recover_transient_failures(self, crawl, study):
        # Every capture of a reachable HTTPS site should eventually
        # succeed thanks to the retry schedule (anti-bot blocks aside).
        failures = [
            cap
            for cap in crawl.captures_for("eu-univ-extended").values()
            if not cap.succeeded and not cap.blocked_by_antibot
        ]
        site_states = [
            study.world.site_by_domain(c.seed_url.host.removeprefix("www."))
            for c in failures
        ]
        # Allow only sites that are genuinely erroring (http-error etc.).
        for site in site_states:
            if site is not None:
                assert site.reachability != "https" or site.blocks_eu_visitors
