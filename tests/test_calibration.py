"""Shape calibration against the paper's headline results.

These tests assert the *shapes* the reproduction must preserve (who
wins, by roughly what factor, where crossovers fall) on a 20k-domain
world -- the same world size the benchmark harnesses use by default.
"""

import datetime as dt
from collections import Counter

import pytest

from repro.core.gvl_analysis import GvlAnalysis
from repro.core.pipeline import Study, StudyConfig
from repro.core.switching import SwitchingFlows
from repro.core.adoption import DomainTimeline

MAY_2020 = dt.date(2020, 5, 15)
JAN_2020 = dt.date(2020, 1, 15)


@pytest.fixture(scope="module")
def big_study():
    return Study(StudyConfig(seed=7, n_domains=20_000, toplist_size=10_000))


@pytest.fixture(scope="module")
def true_counts(big_study):
    """Ground-truth CMP counts over true ranks 1..10k at two dates."""
    world = big_study.world
    out = {}
    for label, date in (("may", MAY_2020), ("jan", JAN_2020)):
        counts = Counter()
        for rank in range(1, 10_001):
            key = world.site(rank).cmp_on(date)
            if key:
                counts[key] += 1
        out[label] = counts
    return out


class TestTable1Shape:
    def test_total_near_10_percent(self, true_counts):
        total = sum(true_counts["may"].values())
        assert 750 < total < 1100  # paper: 925 in the Tranco 10k

    def test_cmp_ordering_may_2020(self, true_counts):
        c = true_counts["may"]
        assert c["onetrust"] > c["quantcast"] > c["trustarc"] > c["cookiebot"]
        assert c["cookiebot"] > c["liveramp"]
        assert c["cookiebot"] > c["crownpeak"]

    def test_trustarc_declines_into_2020(self, true_counts):
        assert true_counts["may"]["trustarc"] <= true_counts["jan"]["trustarc"]

    def test_crownpeak_collapse(self, true_counts):
        # Tables A.3 / 1: Crownpeak drops from 34 to 9 between January
        # and May 2020.
        assert true_counts["jan"]["crownpeak"] >= 2 * true_counts["may"]["crownpeak"]

    def test_liveramp_small_but_present(self, true_counts):
        assert 2 <= true_counts["may"]["liveramp"] <= 40


class TestFigure6Shape:
    @pytest.fixture(scope="class")
    def totals(self, big_study):
        world = big_study.world
        out = {}
        for label, date in (
            ("feb18", dt.date(2018, 2, 1)),
            ("jun18", dt.date(2018, 6, 15)),
            ("jun19", dt.date(2019, 6, 15)),
            ("jun20", dt.date(2020, 6, 15)),
            ("sep20", dt.date(2020, 9, 15)),
        ):
            out[label] = sum(
                1
                for rank in range(1, 10_001)
                if world.site(rank).cmp_on(date)
            )
        return out

    def test_under_one_percent_pre_gdpr(self, totals):
        assert totals["feb18"] < 100

    def test_roughly_doubles_each_year(self, totals):
        assert 1.6 < totals["jun19"] / totals["jun18"] < 3.5
        assert 1.3 < totals["jun20"] / totals["jun19"] < 2.5

    def test_near_ten_percent_sep_2020(self, totals):
        assert 850 < totals["sep20"] < 1200


class TestFigure5Shape:
    def test_cumulative_shares(self, big_study):
        curve = big_study.marketshare_curve(
            MAY_2020, sizes=[100, 1_000, 10_000]
        )
        top100 = curve.total_share(100)
        top1k = curve.total_share(1_000)
        top10k = curve.total_share(10_000)
        # Paper: 4% -> 13% -> ~9%.
        assert 0.01 < top100 < 0.08
        assert 0.10 < top1k < 0.17
        assert top1k > top100
        assert top1k > top10k > 0.06

    def test_quantcast_leads_top100(self, big_study):
        curve = big_study.marketshare_curve(MAY_2020, sizes=[100])
        counts = {k: v[0] for k, v in curve.counts.items()}
        others = sum(v for k, v in counts.items() if k != "quantcast")
        assert counts["quantcast"] >= others - 1

    def test_onetrust_leads_mid_market(self, big_study):
        curve = big_study.marketshare_curve(MAY_2020, sizes=[10_000])
        counts = {k: v[0] for k, v in curve.counts.items()}
        assert counts["onetrust"] == max(counts.values())


class TestFigure4Shape:
    def test_cookiebot_is_the_big_loser(self, big_study):
        # Ground truth switching over the whole world: Cookiebot loses
        # an order of magnitude more than it gains.
        world = big_study.world
        flows = Counter()
        for rank in range(1, 20_001):
            for pair in world.site(rank).switches:
                flows[pair] += 1
        switching = SwitchingFlows(flows=flows)
        assert switching.lost("cookiebot") >= 5 * max(
            1, switching.gained("cookiebot")
        )
        # Quantcast and OneTrust trade customers in both directions.
        assert switching.flows[("quantcast", "onetrust")] > 0
        assert switching.flows[("onetrust", "quantcast")] > 0


class TestGvlShape:
    def test_headline_gvl_results(self, full_gvl_history):
        analysis = GvlAnalysis(full_gvl_history)
        # ~215 versions.
        assert 180 < len(full_gvl_history) < 250
        # Net movement towards consent.
        assert analysis.net_li_to_consent() > 0
        # Purpose 1 always the most declared.
        assert analysis.most_declared_purpose() == 1
        # At least a fifth of vendors claim LI for most purposes.
        li_shares = analysis.li_share_by_purpose()
        assert sum(1 for v in li_shares.values() if v >= 0.18) >= 4


class TestEuTldShares:
    def test_quantcast_vs_onetrust(self, big_study):
        world = big_study.world
        eu = Counter()
        n = Counter()
        for rank in range(1, 20_001):
            site = world.site(rank)
            key = site.cmp_on(MAY_2020)
            if key in ("quantcast", "onetrust"):
                n[key] += 1
                eu[key] += site.is_eu_uk_tld
        qc_share = eu["quantcast"] / n["quantcast"]
        ot_share = eu["onetrust"] / n["onetrust"]
        # Paper: 38.3% vs 16.3%.
        assert 0.28 < qc_share < 0.50
        assert 0.08 < ot_share < 0.26
