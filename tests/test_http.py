"""HTTP models and redirect following."""

import pytest

from repro.net.http import (
    Cookie,
    HttpRequest,
    HttpResponse,
    HttpTransaction,
    follow_redirects,
)
from repro.net.url import URL


def tx(url, status=200, location=None, kind="document", start=0.0, dur=0.1):
    headers = {"Location": location} if location else {}
    return HttpTransaction(
        request=HttpRequest(url=URL.parse(url), resource_type=kind),
        response=HttpResponse(status=status, headers=headers),
        started_at=start,
        duration=dur,
    )


class TestCookie:
    def test_session_cookie(self):
        c = Cookie(name="s", value="1", domain="example.com")
        assert not c.is_persistent

    def test_persistent_cookie(self):
        c = Cookie(name="s", value="1", domain="example.com", max_age=3600)
        assert c.is_persistent

    def test_domain_match_exact(self):
        c = Cookie(name="s", value="1", domain="example.com")
        assert c.matches_domain("example.com")

    def test_domain_match_subdomain(self):
        c = Cookie(name="s", value="1", domain=".example.com")
        assert c.matches_domain("www.example.com")

    def test_domain_no_suffix_confusion(self):
        c = Cookie(name="s", value="1", domain="ample.com")
        assert not c.matches_domain("example.com")


class TestRequestResponse:
    def test_unknown_resource_type_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest(url=URL.parse("https://a.com/"), resource_type="blob")

    def test_response_ok(self):
        assert HttpResponse(status=204).ok
        assert not HttpResponse(status=404).ok

    def test_redirect_detection(self):
        for status in (301, 302, 303, 307, 308):
            assert HttpResponse(status=status).is_redirect
        assert not HttpResponse(status=200).is_redirect

    def test_location_header_case_insensitive(self):
        r = HttpResponse(status=301, headers={"location": "/x"})
        assert r.location == "/x"

    def test_uncompressed_defaults_to_wire_size(self):
        r = HttpResponse(status=200, body_size=100)
        assert r.uncompressed_size == 100

    def test_uncompressed_explicit(self):
        r = HttpResponse(status=200, body_size=100, body_size_uncompressed=500)
        assert r.uncompressed_size == 500


class TestTransaction:
    def test_timing(self):
        t = tx("https://a.com/", start=1.0, dur=0.5)
        assert t.finished_at == 1.5

    def test_failed(self):
        t = HttpTransaction(
            request=HttpRequest(url=URL.parse("https://a.com/")),
            response=None,
        )
        assert t.failed
        assert t.wire_bytes == 0

    def test_byte_accounting(self):
        t = HttpTransaction(
            request=HttpRequest(url=URL.parse("https://a.com/"), body_size=10),
            response=HttpResponse(
                status=200, body_size=100, body_size_uncompressed=400
            ),
        )
        assert t.wire_bytes == 110
        assert t.uncompressed_bytes == 410


class TestFollowRedirects:
    def test_no_redirect(self):
        start = URL.parse("https://a.com/")
        assert follow_redirects((tx("https://a.com/"),), start) == start

    def test_single_hop(self):
        start = URL.parse("https://a.com/")
        txs = (
            tx("https://a.com/", 301, "https://b.com/x"),
            tx("https://b.com/x"),
        )
        assert follow_redirects(txs, start) == URL.parse("https://b.com/x")

    def test_relative_location(self):
        start = URL.parse("https://a.com/old")
        txs = (
            tx("https://a.com/old", 302, "/new"),
            tx("https://a.com/new"),
        )
        assert follow_redirects(txs, start).path == "/new"

    def test_chain(self):
        start = URL.parse("https://a.com/")
        txs = (
            tx("https://a.com/", 301, "https://b.com/"),
            tx("https://b.com/", 301, "https://c.com/"),
            tx("https://c.com/"),
        )
        assert follow_redirects(txs, start).host == "c.com"

    def test_loop_is_bounded(self):
        start = URL.parse("https://a.com/")
        txs = (
            tx("https://a.com/", 301, "https://b.com/"),
            tx("https://b.com/", 301, "https://a.com/"),
        )
        # Must terminate and return one of the loop members.
        result = follow_redirects(txs, start, limit=10)
        assert result.host in ("a.com", "b.com")

    def test_ignores_subresources(self):
        start = URL.parse("https://a.com/")
        txs = (
            tx("https://a.com/", 200),
            tx("https://cdn.com/x.js", 301, "https://evil.com/", kind="script"),
        )
        assert follow_redirects(txs, start).host == "a.com"

    def test_redirect_without_location(self):
        start = URL.parse("https://a.com/")
        t = HttpTransaction(
            request=HttpRequest(
                url=URL.parse("https://a.com/"), resource_type="document"
            ),
            response=HttpResponse(status=301),
        )
        assert follow_redirects((t,), start) == start
