"""Visitor behaviour model and the randomized dialog experiment."""

import random

import pytest

from repro.stats.descriptive import median
from repro.tcf.consentstring import decode_consent_string
from repro.users.behavior import DialogConfig, UserPopulation, VisitorIntent
from repro.users.experiment import run_quantcast_experiment


@pytest.fixture(scope="module")
def experiment():
    return run_quantcast_experiment(n_visitors=2910, seed=42)


class TestPopulation:
    def test_intent_mixture(self):
        pop = UserPopulation()
        rng = random.Random(0)
        intents = [pop.sample_intent(rng) for _ in range(5000)]
        accept = sum(1 for i in intents if i is VisitorIntent.ACCEPT)
        reject = sum(1 for i in intents if i is VisitorIntent.REJECT)
        assert 0.75 < accept / len(intents) < 0.84
        assert 0.14 < reject / len(intents) < 0.22

    def test_friction_reverses_some_rejectors(self):
        pop = UserPopulation()
        rng = random.Random(1)
        outcomes = [
            pop.resolve_decision(
                rng, VisitorIntent.REJECT, DialogConfig.MORE_OPTIONS
            )
            for _ in range(4000)
        ]
        reversed_n = sum(1 for o in outcomes if o is VisitorIntent.ACCEPT)
        assert 0.28 < reversed_n / len(outcomes) < 0.42

    def test_direct_reject_has_no_friction(self):
        pop = UserPopulation()
        rng = random.Random(2)
        outcomes = {
            pop.resolve_decision(
                rng, VisitorIntent.REJECT, DialogConfig.DIRECT_REJECT
            )
            for _ in range(100)
        }
        assert outcomes == {VisitorIntent.REJECT}

    def test_accept_intent_unaffected(self):
        pop = UserPopulation()
        rng = random.Random(3)
        assert (
            pop.resolve_decision(
                rng, VisitorIntent.ACCEPT, DialogConfig.MORE_OPTIONS
            )
            is VisitorIntent.ACCEPT
        )

    def test_reject_slower_than_accept(self):
        pop = UserPopulation()
        rng = random.Random(4)
        accept = [
            pop.decision_time(rng, VisitorIntent.ACCEPT, DialogConfig.MORE_OPTIONS)
            for _ in range(2000)
        ]
        reject = [
            pop.decision_time(rng, VisitorIntent.REJECT, DialogConfig.MORE_OPTIONS)
            for _ in range(2000)
        ]
        assert median(reject) > 1.5 * median(accept)

    def test_invalid_mixture_rejected(self):
        with pytest.raises(ValueError):
            UserPopulation(p_accept=0.9, p_reject=0.2)


class TestExperiment:
    def test_visitor_count(self, experiment):
        assert len(experiment.records) == 2910

    def test_reproducible(self):
        a = run_quantcast_experiment(n_visitors=80, seed=1)
        b = run_quantcast_experiment(n_visitors=80, seed=1)
        assert a.records == b.records

    def test_repeat_visitors_have_no_dialog(self, experiment):
        assert experiment.repeat_visitors > 0
        no_dialog = [
            r for r in experiment.records if r.dialog_shown_at is None
        ]
        assert len(no_dialog) == experiment.repeat_visitors
        for r in no_dialog:
            # The stored global cookie is still readable.
            assert r.consent_string is not None

    def test_both_configs_assigned(self, experiment):
        configs = {r.config for r in experiment.records}
        assert configs == {DialogConfig.DIRECT_REJECT, DialogConfig.MORE_OPTIONS}

    def test_timestamps_ordering(self, experiment):
        for r in experiment.shown()[:500]:
            assert 0 < r.dom_content_loaded < r.dialog_shown_at
            if r.dialog_closed_at is not None:
                assert r.dialog_closed_at > r.dialog_shown_at

    def test_consent_strings_decode(self, experiment):
        decided = [r for r in experiment.shown() if r.decision is not None]
        for r in decided[:100]:
            cs = decode_consent_string(r.consent_string)
            if r.decision == "accept":
                assert cs.consents_to_all_purposes
                assert len(cs.vendor_consents) == cs.max_vendor_id
            else:
                assert cs.is_full_opt_out

    def test_excluded_visitors_have_no_decision(self, experiment):
        undecided = [
            r
            for r in experiment.shown()
            if r.decision is None
        ]
        for r in undecided:
            assert r.dialog_closed_at is None
            assert r.consent_string is None

    def test_timestamp_volume(self, experiment):
        # Section 3.4: "We logged about 120,000 timestamps."
        assert 80_000 < experiment.n_timestamps < 180_000

    def test_interaction_times_positive(self, experiment):
        for config in DialogConfig:
            for decision in ("accept", "reject"):
                times = experiment.interaction_times(config, decision)
                assert times
                assert all(t > 0 for t in times)
