"""Targeted coverage for smaller surfaces: stream iteration, platform
callbacks, CLI subcommands, store queries."""

import datetime as dt

import pytest

from repro.cli import main as cli_main
from repro.crawler.platform import CaptureStore, NetographPlatform
from repro.crawler.seeds import SocialShareStream, StreamConfig


class TestStreamIteration:
    def test_iter_events_spans_days(self, world):
        stream = SocialShareStream(
            world, StreamConfig(seed=2, events_per_day=50)
        )
        events = list(
            stream.iter_events(dt.date(2020, 4, 1), dt.date(2020, 4, 4))
        )
        days = {e.at.date() for e in events}
        assert days == {
            dt.date(2020, 4, 1),
            dt.date(2020, 4, 2),
            dt.date(2020, 4, 3),
        }

    def test_iter_events_empty_range(self, world):
        stream = SocialShareStream(world)
        assert list(
            stream.iter_events(dt.date(2020, 4, 1), dt.date(2020, 4, 1))
        ) == []


class TestPlatformCallbacks:
    def test_on_day_called_per_day(self, study):
        platform = NetographPlatform(study.world)
        days = []
        platform.run(
            dt.date(2020, 4, 1),
            dt.date(2020, 4, 4),
            on_day=days.append,
        )
        assert days == [
            dt.date(2020, 4, 1),
            dt.date(2020, 4, 2),
            dt.date(2020, 4, 3),
        ]


class TestStoreQueries:
    def test_observations_for_unknown_domain(self, social_store):
        assert social_store.observations_for("nope.example") == []

    def test_by_domain_cache_invalidation(self, study):
        from repro.crawler.browser import crawl_url
        from repro.crawler.capture import EU_UNIVERSITY
        from repro.net.url import URL

        store = CaptureStore()
        site = study.world.site(3)
        cap = crawl_url(
            study.world,
            URL.parse(f"https://www.{site.domain}/"),
            when=dt.datetime(2020, 5, 15, 12),
            vantage=EU_UNIVERSITY,
        )
        store.add(cap, None)
        first = store.by_domain()
        store.add(cap, "onetrust")
        second = store.by_domain()
        assert len(second[cap.final_domain]) == 2
        assert first is not second


class TestCliSubcommands:
    def test_gvl(self, capsys):
        rc = cli_main(["--domains", "1000", "gvl"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "vendors" in out
        assert "net LI -> consent" in out

    def test_timing(self, capsys):
        rc = cli_main(["--domains", "1000", "timing"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "consent-rate" in out or "consent" in out
        assert "opt-out" in out

    def test_compliance(self, capsys):
        rc = cli_main(
            ["--domains", "2000", "--toplist", "300", "compliance"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "asymmetric-choice" in out

    def test_burden(self, capsys):
        rc = cli_main(
            ["--domains", "2000", "burden", "--visits", "200"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "global" in out and "service" in out

    def test_seed_changes_output(self, capsys):
        cli_main(["--seed", "1", "--domains", "1000", "--toplist", "200",
                  "table1"])
        out1 = capsys.readouterr().out
        cli_main(["--seed", "2", "--domains", "1000", "--toplist", "200",
                  "table1"])
        out2 = capsys.readouterr().out
        assert out1 != out2
