"""Hypothesis properties of the consent-graph ingestors.

Three contracts every ingestor must honor (ingest.py docstring):

* **idempotence** -- re-ingesting the same source leaves the canonical
  digest unchanged;
* **order independence** -- any permutation of ingestors produces the
  identical graph;
* **shard-merge associativity** -- graphs built per capture shard (with
  ``seq_base`` offsets) merge, in any grouping, to the same graph as
  one serial build over the concatenated store.
"""

import datetime as dt
from dataclasses import dataclass
from typing import Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmps.base import CMP_KEYS
from repro.crawler.columnar import CaptureStore
from repro.graph import (
    ConsentGraph,
    ingest_captures,
    ingest_country_rankings,
    ingest_gvl,
    ingest_toplist,
    ingest_vantages,
    ingest_world_adoption,
    merge_graphs,
)
from repro.toplist.providers import RANK_BUCKETS, CountryToplist

# ----------------------------------------------------------------------
# Tiny stand-ins for the worldgen / tranco / GVL sources (the ingestors
# only touch the attributes stubbed here).
# ----------------------------------------------------------------------
DOMAINS = tuple(f"d{i}.example" for i in range(10))
ORDINAL_0 = dt.date(2020, 3, 1).toordinal()


@dataclass(frozen=True)
class StubEpisode:
    cmp_key: str
    start: dt.date
    end: Optional[dt.date]


@dataclass(frozen=True)
class StubSite:
    domain: str
    episodes: Tuple[StubEpisode, ...]


class StubWorld:
    def __init__(self, sites):
        self._sites = {i + 1: site for i, site in enumerate(sites)}

    def site(self, rank):
        return self._sites[rank]


class StubTranco:
    def __init__(self, domains):
        self._domains = list(domains)

    def __len__(self):
        return len(self._domains)

    def top(self, n):
        return self._domains[:n]


@dataclass(frozen=True)
class StubVendor:
    id: int
    purpose_ids: frozenset
    leg_int_purpose_ids: frozenset


@dataclass(frozen=True)
class StubVersion:
    version: int
    last_updated: dt.date
    vendors: Tuple[StubVendor, ...]


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
capture_rows = st.lists(
    st.tuples(
        st.sampled_from(DOMAINS),
        st.integers(ORDINAL_0, ORDINAL_0 + 30),
        st.sampled_from(CMP_KEYS + (None,)),
        st.integers(0, 5),
    ),
    max_size=50,
)

episodes = st.lists(
    st.tuples(st.sampled_from(CMP_KEYS), st.integers(0, 60), st.integers(1, 90)),
    max_size=3,
).map(
    lambda specs: tuple(
        StubEpisode(
            cmp_key,
            dt.date(2020, 1, 1) + dt.timedelta(days=start),
            None
            if length > 60
            else dt.date(2020, 1, 1) + dt.timedelta(days=start + length),
        )
        for cmp_key, start, length in specs
    )
)

worlds = st.lists(episodes, min_size=1, max_size=6).map(
    lambda eps: StubWorld(
        [StubSite(DOMAINS[i], e) for i, e in enumerate(eps)]
    )
)

gvl_histories = st.lists(
    st.lists(
        st.tuples(
            st.integers(1, 8),
            st.frozensets(st.integers(1, 5), max_size=3),
            st.frozensets(st.integers(1, 5), max_size=2),
        ),
        max_size=5,
        unique_by=lambda v: v[0],
    ),
    max_size=4,
).map(
    lambda versions: tuple(
        StubVersion(
            i + 1,
            dt.date(2019, 1, 1) + dt.timedelta(days=14 * i),
            tuple(StubVendor(*v) for v in vendors),
        )
        for i, vendors in enumerate(versions)
    )
)

country_toplists = st.dictionaries(
    st.sampled_from(("DE", "FR", "US", "GB")),
    st.lists(
        st.tuples(st.sampled_from(RANK_BUCKETS), st.sampled_from(DOMAINS)),
        max_size=8,
        unique_by=lambda e: e[1],
    ),
    max_size=3,
).map(
    lambda d: {
        country: CountryToplist(country=country, entries=tuple(sorted(entries)))
        for country, entries in d.items()
    }
)


def store_from(rows) -> CaptureStore:
    store = CaptureStore()
    for domain, ordinal, cmp_key, vantage in rows:
        store.append_row(domain, ordinal, cmp_key, vantage, 1)
    return store


def ingestor_closures(rows, world, n_ranked, toplists, versions):
    """One thunk per ingestor, each closing over its own source."""
    store = store_from(rows)
    tranco = StubTranco(DOMAINS[: max(n_ranked, 1)])
    return [
        lambda g: ingest_vantages(g),
        lambda g: ingest_captures(g, store),
        lambda g: ingest_toplist(g, tranco),
        lambda g: ingest_world_adoption(
            g, world, range(1, len(world._sites) + 1)
        ),
        lambda g: ingest_country_rankings(g, toplists),
        lambda g: ingest_gvl(g, versions),
    ]


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    rows=capture_rows,
    world=worlds,
    n_ranked=st.integers(1, len(DOMAINS)),
    toplists=country_toplists,
    versions=gvl_histories,
)
def test_every_ingestor_is_idempotent(
    rows, world, n_ranked, toplists, versions
):
    closures = ingestor_closures(rows, world, n_ranked, toplists, versions)
    graph = ConsentGraph()
    for ingest in closures:
        ingest(graph)
    once = graph.digest()
    n_nodes, n_edges = graph.n_nodes, graph.n_edges
    for ingest in closures:
        ingest(graph)  # re-ingest every source
        assert graph.digest() == once
    assert (graph.n_nodes, graph.n_edges) == (n_nodes, n_edges)


@settings(max_examples=40, deadline=None)
@given(
    rows=capture_rows,
    world=worlds,
    n_ranked=st.integers(1, len(DOMAINS)),
    toplists=country_toplists,
    versions=gvl_histories,
    order=st.permutations(range(6)),
)
def test_ingest_order_independence(
    rows, world, n_ranked, toplists, versions, order
):
    closures = ingestor_closures(rows, world, n_ranked, toplists, versions)
    reference = ConsentGraph()
    for ingest in closures:
        ingest(reference)
    permuted = ConsentGraph()
    for i in order:
        closures[i](permuted)
    assert permuted.digest() == reference.digest()
    assert permuted.stats() == reference.stats()


@settings(max_examples=40, deadline=None)
@given(rows=capture_rows, data=st.data())
def test_shard_merge_associativity(rows, data):
    i = data.draw(st.integers(0, len(rows)), label="split1")
    j = data.draw(st.integers(i, len(rows)), label="split2")
    shards = [rows[:i], rows[i:j], rows[j:]]

    serial = ConsentGraph()
    ingest_captures(serial, store_from(rows))

    # Per-shard graphs, each offset by the rows before it.
    shard_graphs = []
    base = 0
    for shard in shards:
        g = ConsentGraph()
        ingest_captures(g, store_from(shard), seq_base=base)
        base += len(shard)
        shard_graphs.append(g)

    # Any merge grouping reproduces the serial build exactly.
    assert merge_graphs(shard_graphs).digest() == serial.digest()
    left = merge_graphs([merge_graphs(shard_graphs[:2]), shard_graphs[2]])
    right = merge_graphs([shard_graphs[0], merge_graphs(shard_graphs[1:])])
    assert left.digest() == serial.digest()
    assert right.digest() == serial.digest()

    # Merging the *stores* first (the executor's path: concatenation in
    # shard order) then ingesting serially is the same graph again.
    merged_store = store_from(shards[0])
    for shard in shards[1:]:
        merged_store.merge(store_from(shard))
    from_merged = ConsentGraph()
    ingest_captures(from_merged, merged_store)
    assert from_merged.digest() == serial.digest()
