"""The Do-Not-Sell (CCPA) census."""

import datetime as dt

import pytest

from repro.cmps.base import DialogButton, DialogDescriptor
from repro.core.ccpa import (
    CcpaReport,
    ccpa_census,
    dns_share_over_time,
    find_dns_affordance,
)

MAY = dt.date(2020, 5, 15)


def dialog(buttons, kind="banner"):
    return DialogDescriptor(
        cmp_key="onetrust", kind=kind, buttons=tuple(buttons)
    )


class TestDetection:
    def test_banner_button(self):
        d = dialog(
            [
                DialogButton("Accept", "accept-all"),
                DialogButton("Do Not Sell", "reject-all"),
            ]
        )
        found = find_dns_affordance("a.com", d)
        assert found is not None
        assert found.surface == "banner-button"

    def test_footer_link(self):
        d = dialog(
            [DialogButton("California Privacy Rights", "settings-link")],
            kind="footer-link",
        )
        found = find_dns_affordance("a.com", d)
        assert found is not None
        assert found.surface == "footer-link"

    def test_settings_page(self):
        d = dialog(
            [
                DialogButton("Accept", "accept-all"),
                DialogButton("Options", "more-options"),
                DialogButton("Do Not Sell My Info", "confirm-reject", page=2),
            ]
        )
        found = find_dns_affordance("a.com", d)
        assert found is not None
        assert found.surface == "settings-page"

    def test_no_affordance(self):
        d = dialog(
            [
                DialogButton("Accept", "accept-all"),
                DialogButton("Reject All", "reject-all"),
            ]
        )
        assert find_dns_affordance("a.com", d) is None


class TestCensus:
    def test_over_toplist_captures(self, study):
        # Dialog descriptors only exist for CMP sites, so the census
        # checks the CMP subset of the toplist.
        result = study.run_toplist_crawl(
            MAY, configs=("eu-univ-extended",), size=1_200
        )
        report = ccpa_census(result.captures_for("eu-univ-extended"))
        assert report.sites_checked > 60
        # OneTrust's CCPA-oriented configurations yield some affordances.
        assert report.n_sites >= 1
        assert set(report.by_cmp()) <= {
            "onetrust", "quantcast", "trustarc", "cookiebot", "liveramp",
            "crownpeak",
        }

    def test_share_raises_on_empty(self):
        with pytest.raises(ValueError):
            CcpaReport(affordances=[], sites_checked=0).share

    def test_share_grows_across_ccpa(self, world):
        series = dns_share_over_time(
            world,
            [dt.date(2019, 6, 1), dt.date(2020, 6, 1)],
            max_rank=4_000,
        )
        before, after = series[0][1], series[1][1]
        assert after >= before
