"""The ``repro.obs`` observability layer.

Locks the two load-bearing contracts: instrumentation never changes
results (bit-identical stores with observability on or off), and the
null backend is a true no-op (no metrics, no spans, no errors).
"""

import datetime as dt
import json

import pytest

from repro.cli import main as cli_main
from repro.crawler.executor import CrawlExecutor, ExecutorConfig
from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.crawler.toplist_crawl import ToplistCrawler
from repro.obs import (
    NULL_OBS,
    NullObservability,
    Observability,
    resolve_obs,
)
from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.trace import NullTracer, Tracer

WINDOW = (dt.date(2020, 4, 1), dt.date(2020, 4, 8))
MAY = dt.date(2020, 5, 15)


def run_platform(world, obs=None, executor=None):
    platform = NetographPlatform(
        world,
        stream=SocialShareStream(world, StreamConfig(events_per_day=80)),
        config=PlatformConfig(),
        obs=obs,
    )
    store = platform.run(*WINDOW, executor=executor)
    return platform, store


class TestMetricsRegistry:
    def test_counter_labels_and_total(self):
        reg = MetricsRegistry()
        c = reg.counter("crawls_total", "crawls")
        c.inc(outcome="ok")
        c.inc(2, outcome="ok")
        c.inc(outcome="failed")
        assert c.value(outcome="ok") == 3
        assert c.value(outcome="failed") == 1
        assert c.total == 4

    def test_registration_idempotent_and_kind_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.set(7)
        assert g.value() == 7

    def test_histogram_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v, pipeline="social")
        series = h.series(pipeline="social")
        assert series.count == 4
        assert series.min == 0.05 and series.max == 5.0
        assert series.bucket_counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf

    def test_snapshot_deterministic_order(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc(z="1")
        reg.counter("b_total").inc(a="1")
        reg.counter("a_total").inc()
        names = [(r["metric"], r["labels"]) for r in reg.snapshot()]
        assert names == [
            ("a_total", {}),
            ("b_total", {"a": "1"}),
            ("b_total", {"z": "1"}),
        ]

    def test_write_jsonl_roundtrips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("events_total").inc(5)
        reg.histogram("seconds").observe(0.2)
        path = tmp_path / "metrics.jsonl"
        n = reg.write_jsonl(path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(records) == n == 2
        assert records == reg.snapshot()


class TestTracer:
    def test_nesting_and_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", k=1) as inner:
                pass
            tracer.record_span("shard", 0.5, shard=0)
            tracer.event("milestone", day="2020-04-01")
        records = tracer.export_records()
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["shard"]["parent"] == by_name["outer"]["id"]
        assert by_name["shard"]["seconds"] == 0.5
        assert by_name["milestone"]["kind"] == "event"
        assert inner.seconds is not None and outer.seconds >= inner.seconds

    def test_error_status_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.export_records()
        assert record["status"] == "error"
        assert record["seconds"] is not None

    def test_export_without_timing_is_deterministic(self):
        def build():
            tracer = Tracer()
            with tracer.span("run", n=3):
                for i in range(3):
                    tracer.record_span("shard", 0.1 * i, shard=i)
            return tracer.export_records(include_timing=False)

        assert build() == build()
        assert all("seconds" not in r for r in build())

    def test_summary_lists_span_names(self):
        tracer = Tracer()
        with tracer.span("platform.run"):
            pass
        assert "platform.run" in tracer.summary()


class TestNullBackend:
    def test_resolve_defaults_to_shared_null(self):
        assert resolve_obs(None) is NULL_OBS
        obs = Observability()
        assert resolve_obs(obs) is obs

    def test_null_everything_is_noop(self, tmp_path):
        obs = NullObservability()
        assert not obs.enabled
        counter = obs.metrics.counter("x_total")
        counter.inc(5, label="a")
        assert counter.value(label="a") == 0
        obs.metrics.histogram("h").observe(1.0)
        with obs.span("anything", k=2) as span:
            span.set(more=3)
        obs.event("e")
        assert obs.metrics.snapshot() == []
        assert obs.tracer.export_records() == []
        assert obs.summary() == ""
        assert obs.metrics.write_jsonl(tmp_path / "m.jsonl") == 0
        assert not (tmp_path / "m.jsonl").exists()

    def test_null_registry_shares_instruments(self):
        reg = NullMetricsRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert isinstance(NullObservability().tracer, NullTracer)


class TestInstrumentedPlatform:
    def test_results_bit_identical_with_obs_on_and_off(self, world):
        _, plain = run_platform(world, obs=None)
        _, observed = run_platform(world, obs=Observability())
        assert observed.observations == plain.observations
        assert observed.n_captures == plain.n_captures
        assert observed.total_requests == plain.total_requests
        assert observed.by_domain() == plain.by_domain()

    def test_metrics_agree_with_platform_stats(self, world):
        obs = Observability()
        platform, store = run_platform(world, obs=obs)
        m = obs.metrics
        assert m.get("platform_events_total").total == platform.stats.events
        crawls = m.get("platform_crawls_total")
        assert crawls.total == platform.stats.crawls
        assert crawls.value(outcome="failed") == platform.stats.failures
        q = m.get("queue_submissions_total")
        assert q.value(decision="accepted") == platform.queue.stats.accepted
        assert q.value(decision="skipped_url") == platform.queue.stats.skipped_url
        assert (
            q.value(decision="skipped_domain")
            == platform.queue.stats.skipped_domain
        )
        assert (
            m.get("detect_captures_total").total == platform.engine.captures_seen
        )
        cmp_hits = sum(1 for o in store.observations if o.cmp_key)
        assert m.get("detect_matches_total").total == cmp_hits

    def test_parallel_run_equals_serial_and_counts_match(self, world):
        serial_obs = Observability()
        _, serial_store = run_platform(world, obs=serial_obs)
        parallel_obs = Observability()
        executor = CrawlExecutor(ExecutorConfig(workers=4, backend="thread"))
        _, parallel_store = run_platform(
            world, obs=parallel_obs, executor=executor
        )
        assert parallel_store.observations == serial_store.observations
        # The main accounting metrics agree between execution modes.
        for name in (
            "platform_crawls_total",
            "platform_events_total",
            "queue_submissions_total",
            "detect_captures_total",
            "detect_matches_total",
        ):
            assert (
                parallel_obs.metrics.get(name).records()
                == serial_obs.metrics.get(name).records()
            ), name

    def test_parallel_run_emits_executor_spans(self, world):
        obs = Observability()
        executor = CrawlExecutor(ExecutorConfig(workers=4, backend="thread"))
        platform, _ = run_platform(world, obs=obs, executor=executor)
        records = obs.tracer.export_records()
        by_name = {}
        for r in records:
            by_name.setdefault(r["name"], []).append(r)
        for name in (
            "platform.run",
            "executor.derive_shards",
            "executor.crawl",
            "executor.merge",
        ):
            assert len(by_name[name]) == 1, name
        shards = by_name["executor.shard"]
        assert len(shards) == platform.stats.executor.n_shards
        crawl_id = by_name["executor.crawl"][0]["id"]
        assert all(s["parent"] == crawl_id for s in shards)
        assert sum(s["attrs"]["crawls"] for s in shards) == (
            platform.stats.executor.crawls
        )
        hist = obs.metrics.get("executor_shard_seconds")
        assert hist.series(pipeline="social").count == len(shards)

    def test_serial_run_records_crawl_phase_span(self, world):
        obs = Observability()
        run_platform(world, obs=obs)
        names = [r["name"] for r in obs.tracer.export_records()]
        assert "platform.crawl" in names
        assert "executor.crawl" not in names


class TestInstrumentedToplist:
    def test_serial_and_sharded_toplist_metrics(self, study):
        domains = study.tranco.top(40)
        serial_obs = Observability()
        serial = ToplistCrawler(study.world, obs=serial_obs).run(domains, MAY)
        counter = serial_obs.metrics.get("toplist_crawls_total")
        for name, captures in serial.captures.items():
            failed = sum(1 for c in captures.values() if not c.succeeded)
            assert counter.value(config=name, outcome="failed") == failed
            assert (
                counter.value(config=name, outcome="ok")
                == len(captures) - failed
            )
        span_names = [r["name"] for r in serial_obs.tracer.export_records()]
        assert "toplist.run" in span_names and "toplist.probe" in span_names

        sharded_obs = Observability()
        executor = CrawlExecutor(ExecutorConfig(workers=3, backend="thread"))
        sharded = ToplistCrawler(study.world, obs=sharded_obs).run(
            domains, MAY, executor=executor
        )
        assert sharded.captures == serial.captures
        assert (
            sharded_obs.metrics.get("toplist_crawls_total").records()
            == counter.records()
        )
        sharded_names = [
            r["name"] for r in sharded_obs.tracer.export_records()
        ]
        assert "executor.shard" in sharded_names


class TestCliObservability:
    def test_crawl_with_metrics_and_trace_out(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.jsonl"
        trace_path = tmp_path / "trace.jsonl"
        rc = cli_main(
            ["--domains", "1000",
             "--metrics-out", str(metrics_path),
             "--trace-out", str(trace_path),
             "crawl", "--days", "7", "--start", "2020-04-01",
             "--events-per-day", "80",
             "--out", str(tmp_path / "obs.jsonl")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "observability summary" in out
        assert "queue_submissions_total" in out
        metrics = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        assert any(r["metric"] == "platform_crawls_total" for r in metrics)
        trace = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert any(r["name"] == "platform.run" for r in trace)

    def test_flags_do_not_change_results(self, tmp_path):
        base = ["--domains", "1000", "crawl", "--days", "7",
                "--start", "2020-04-01", "--events-per-day", "80"]
        plain, observed = tmp_path / "plain.jsonl", tmp_path / "observed.jsonl"
        assert cli_main(base + ["--out", str(plain)]) == 0
        assert cli_main(
            ["--metrics-out", str(tmp_path / "m.jsonl")]
            + base
            + ["--out", str(observed)]
        ) == 0
        assert plain.read_text() == observed.read_text()
