"""The two chaos invariants of ``repro.faults`` (see its docstring).

* **No schedule, no change** -- with fault injection wired into every
  layer but no (or an empty) schedule, runs are bit-identical to the
  fault-free pipeline.
* **Transient faults are free; permanent faults are conservative** --
  a transient-only schedule with enough retry budget reproduces the
  fault-free results exactly; permanent faults only ever undercount,
  and every lost crawl remains accounted for.

Runs are small (a week of events, dozens of domains) so the whole
module stays in tier-1 while also carrying the ``chaos`` marker for
the dedicated ``make chaos`` lane.
"""

import dataclasses
import datetime as dt

import pytest

from repro.crawler.executor import CrawlExecutor, ExecutorConfig
from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.crawler.storage import (
    StorageError,
    load_shard_checkpoint,
    resume_from_checkpoints,
    save_shard_checkpoint,
    shard_checkpoint_path,
)
from repro.crawler.toplist_crawl import ToplistCrawler
from repro.faults import (
    CrashSpec,
    FaultSchedule,
    FaultSpec,
    RetryPolicy,
    WorkerCrash,
)
from repro.faults.retry import FAST_TEST_POLICY
from repro.obs import Observability

pytestmark = pytest.mark.chaos

WINDOW = (dt.date(2020, 4, 1), dt.date(2020, 4, 8))
MAY = dt.date(2020, 5, 15)

#: Every transient kind at once, plus worker crashes, all recoverable
#: within FAST_TEST_POLICY's five retries.
TRANSIENT = FaultSchedule(
    seed=13,
    specs=(
        FaultSpec("dns-error", rate=0.15, attempts=1),
        FaultSpec("connection-reset", rate=0.12, attempts=2),
        FaultSpec("slow-response", rate=0.10, attempts=1),
        FaultSpec("antibot-challenge", rate=0.08, attempts=3),
    ),
    crash=CrashSpec(rate=0.6, attempts=1),
)

#: Probe-budget-safe variant: every spec clears after a single attempt,
#: so the three-try probe protocol always recovers the identical seed
#: URL (a longer transient could burn the whole probe budget and
#: conservatively lose the domain).
TOPLIST_TRANSIENT = dataclasses.replace(
    TRANSIENT,
    specs=tuple(
        dataclasses.replace(spec, attempts=1) for spec in TRANSIENT.specs
    ),
)

PERMANENT = FaultSchedule(
    seed=13,
    specs=(FaultSpec("dns-error", rate=0.3, persistent=True),),
)


def run_platform(world, faults=None, retry=None, executor=None, obs=None):
    platform = NetographPlatform(
        world,
        stream=SocialShareStream(
            world, StreamConfig(seed=1, events_per_day=60)
        ),
        config=PlatformConfig(
            seed=2, retain_captures=True, faults=faults, retry=retry
        ),
        obs=obs,
    )
    store = platform.run(*WINDOW, executor=executor)
    return platform, store


@pytest.fixture(scope="module")
def baseline(world):
    """The fault-free social run every invariant compares against."""
    return run_platform(world)


class TestNoScheduleNoChange:
    def test_empty_schedule_is_bit_identical(self, world, baseline):
        # An *empty* schedule exercises the whole retry plumbing (the
        # run_with_retries wrapper, tallies, clock) without injecting
        # anything; the result must not change by a single bit.
        platform, store = run_platform(
            world, faults=FaultSchedule(seed=99), retry=FAST_TEST_POLICY
        )
        ref_platform, ref_store = baseline
        assert store.observations == ref_store.observations
        assert store.captures == ref_store.captures
        assert store.n_captures == ref_store.n_captures
        assert platform.stats.failures == ref_platform.stats.failures
        assert platform.stats.faults.injected == 0

    def test_empty_schedule_sharded_matches_too(self, world, baseline):
        executor = CrawlExecutor(ExecutorConfig(workers=3, backend="thread"))
        _, store = run_platform(
            world, faults=FaultSchedule(seed=99), executor=executor
        )
        assert store.observations == baseline[1].observations


class TestTransientFaultsAreFree:
    def test_serial_recovery_is_bit_identical(self, world, baseline):
        schedule = dataclasses.replace(TRANSIENT, crash=None)
        platform, store = run_platform(
            world, faults=schedule, retry=FAST_TEST_POLICY
        )
        ref_platform, ref_store = baseline
        tally = platform.stats.faults
        assert tally.injected > 0  # chaos actually happened
        assert tally.recovered > 0
        assert tally.exhausted == 0  # budget covers every spec
        # ... and yet: the exact same dataset.
        assert store.observations == ref_store.observations
        assert store.captures == ref_store.captures
        assert platform.stats.failures == ref_platform.stats.failures

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_sharded_recovery_with_crashes(self, world, baseline, backend):
        platform, store = run_platform(
            world,
            faults=TRANSIENT,
            retry=FAST_TEST_POLICY,
            executor=CrawlExecutor(
                ExecutorConfig(workers=3, backend=backend)
            ),
        )
        assert store.observations == baseline[1].observations
        assert store.captures == baseline[1].captures
        # The crash schedule really killed workers mid-shard; the
        # checkpoint/resume path produced the identical result anyway.
        assert platform.stats.executor.resumes > 0
        assert platform.stats.faults.injected > 0

    def test_repeated_crashes_eventually_give_up(self):
        executor = CrawlExecutor(ExecutorConfig())

        def doomed(payload):
            raise WorkerCrash(0, done=0)

        with pytest.raises(RuntimeError, match="giving up after 8 resumes"):
            executor.map_shards(doomed, [object()], resume=lambda p, c: p)

    def test_crash_without_resume_builder_propagates(self):
        executor = CrawlExecutor(ExecutorConfig())

        def doomed(payload):
            raise WorkerCrash(0, done=0)

        with pytest.raises(WorkerCrash):
            executor.map_shards(doomed, [object()])


class TestPermanentFaultsAreConservative:
    def test_undercounts_never_invents(self, world, baseline):
        platform, store = run_platform(
            world, faults=PERMANENT, retry=RetryPolicy(max_retries=2,
                                                       jitter=0.0)
        )
        ref_platform, ref_store = baseline
        # Every crawl is still accounted for: exhausted retries record
        # a failed capture instead of dropping the work item.
        assert store.n_captures == ref_store.n_captures
        assert platform.stats.crawls == ref_platform.stats.crawls
        assert platform.stats.failures > ref_platform.stats.failures
        tally = platform.stats.faults
        assert tally.exhausted > 0
        assert tally.skip_reasons() == {"retries_exhausted": tally.exhausted}
        # CMP presence only shrinks -- a fault can hide a dialog, never
        # fabricate one.
        assert set(store.domains_with_cmp()) <= set(
            ref_store.domains_with_cmp()
        )

    def test_exhaustion_surfaces_in_the_metrics(self, world):
        obs = Observability()
        platform, store = run_platform(
            world,
            faults=PERMANENT,
            retry=RetryPolicy(max_retries=1, jitter=0.0),
            obs=obs,
        )
        crawls = obs.metrics.counter("platform_crawls_total")
        ok = crawls.value(outcome="ok")
        failed = crawls.value(outcome="failed")
        exhausted = crawls.value(outcome="retries_exhausted")
        assert exhausted == platform.stats.faults.exhausted > 0
        # Outcome labels partition the crawls: nothing double-counted,
        # nothing dropped.
        assert ok + failed + exhausted == platform.stats.crawls
        faults = obs.metrics.counter("crawl_faults_total")
        assert faults.value(kind="dns-error") == platform.stats.faults.injected


class TestToplistChaos:
    CONFIGS = ("eu-univ-default", "us-cloud")

    def _domains(self, world):
        return [world.site(rank).domain for rank in range(1, 41)]

    def _run(self, world, **kwargs):
        executor = kwargs.pop("executor", None)
        crawler = ToplistCrawler(world, **kwargs)
        return crawler.run(
            self._domains(world), MAY, configs=self.CONFIGS,
            executor=executor,
        )

    @pytest.fixture(scope="module")
    def toplist_baseline(self, world):
        return self._run(world)

    def test_empty_schedule_is_bit_identical(self, world, toplist_baseline):
        result = self._run(
            world, faults=FaultSchedule(seed=99), retry=FAST_TEST_POLICY
        )
        assert result.probes == toplist_baseline.probes
        assert result.captures == toplist_baseline.captures

    @staticmethod
    def _resolutions(probes):
        # ``succeeded_on_attempt`` reports which *try* resolved the
        # domain; faulted tries burn budget, so only the resolution
        # itself (seed URL + method) is invariant under faults.
        return [(p.domain, p.seed_url, p.method) for p in probes]

    def test_transient_recovery_is_bit_identical(
        self, world, toplist_baseline
    ):
        schedule = dataclasses.replace(TOPLIST_TRANSIENT, crash=None)
        result = self._run(
            world, faults=schedule, retry=FAST_TEST_POLICY
        )
        assert result.faults.injected > 0
        assert result.faults.exhausted == 0
        assert self._resolutions(result.probes) == self._resolutions(
            toplist_baseline.probes
        )
        assert result.captures == toplist_baseline.captures

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_sharded_crash_recovery(self, world, toplist_baseline, backend):
        result = self._run(
            world,
            faults=TOPLIST_TRANSIENT,
            retry=FAST_TEST_POLICY,
            executor=CrawlExecutor(
                ExecutorConfig(workers=3, backend=backend)
            ),
        )
        assert result.captures == toplist_baseline.captures
        assert result.executor_stats.resumes > 0

    def test_permanent_faults_lose_domains_conservatively(
        self, world, toplist_baseline
    ):
        result = self._run(
            world, faults=PERMANENT, retry=RetryPolicy(max_retries=1,
                                                       jitter=0.0)
        )
        for name in self.CONFIGS:
            captured = result.captures_for(name)
            ref = toplist_baseline.captures_for(name)
            # Probe faults may shrink the domain set, never grow it.
            assert set(captured) <= set(ref)
            for domain, capture in captured.items():
                if capture.succeeded:
                    # A surviving success is the organic capture.
                    assert capture == ref[domain]
                else:
                    assert capture.fault is not None or not ref[
                        domain
                    ].succeeded


class TestCheckpointStorage:
    """Satellite fix: resume errors must name both shard and file."""

    def _store(self, world):
        _, store = run_platform(world)
        return store

    def test_checkpoint_round_trip(self, world, tmp_path):
        store = self._store(world)
        path = save_shard_checkpoint(store, tmp_path, shard_id=3)
        assert path == shard_checkpoint_path(tmp_path, 3)
        loaded = load_shard_checkpoint(tmp_path, 3)
        assert loaded.observations == store.observations
        assert loaded.n_captures == store.n_captures

    def test_resume_loads_all_shards_sorted(self, world, tmp_path):
        store = self._store(world)
        for shard_id in (2, 0, 1):
            save_shard_checkpoint(store, tmp_path, shard_id)
        stores = resume_from_checkpoints(tmp_path)
        assert list(stores) == [0, 1, 2]

    def test_corrupt_checkpoint_names_shard_and_file(self, world, tmp_path):
        store = self._store(world)
        path = save_shard_checkpoint(store, tmp_path, shard_id=7)
        corrupted = path.read_text().replace('"domain"', '"dom', 1)
        path.write_text(corrupted)
        with pytest.raises(StorageError) as excinfo:
            load_shard_checkpoint(tmp_path, 7)
        message = str(excinfo.value)
        assert "shard 7" in message
        assert "shard-0007.jsonl" in message

    def test_truncated_checkpoint_names_shard_and_file(
        self, world, tmp_path
    ):
        store = self._store(world)
        path = save_shard_checkpoint(store, tmp_path, shard_id=4)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(StorageError, match=r"shard 4: .*shard-0004"):
            resume_from_checkpoints(tmp_path)

    def test_stray_file_is_rejected_by_name(self, tmp_path):
        (tmp_path / "shard-abc.jsonl").write_text("{}\n")
        with pytest.raises(StorageError, match="not a shard checkpoint"):
            resume_from_checkpoints(tmp_path)
