"""Seed stream and the end-to-end measurement platform."""

import datetime as dt
from collections import Counter

import pytest

from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig

DAY = dt.date(2020, 4, 1)


@pytest.fixture(scope="module")
def stream(world):
    return SocialShareStream(world, StreamConfig(seed=11, events_per_day=400))


class TestSeedStream:
    def test_deterministic_per_day(self, stream):
        a = stream.events_for_day(DAY)
        b = stream.events_for_day(DAY)
        assert a == b

    def test_days_differ(self, stream):
        a = stream.events_for_day(DAY)
        b = stream.events_for_day(DAY + dt.timedelta(days=1))
        assert a != b

    def test_events_chronological(self, stream):
        events = stream.events_for_day(DAY)
        times = [e.at for e in events]
        assert times == sorted(times)
        assert all(e.at.date() == DAY for e in events)

    def test_twitter_share(self, stream):
        events = [
            e
            for day in range(5)
            for e in stream.events_for_day(DAY + dt.timedelta(days=day))
        ]
        twitter = sum(1 for e in events if e.platform == "twitter")
        # Section 3.4: Twitter accounts for 80% of all URLs.
        assert 0.74 < twitter / len(events) < 0.86

    def test_popularity_skew(self, stream, world):
        events = [
            e
            for day in range(10)
            for e in stream.events_for_day(DAY + dt.timedelta(days=day))
        ]
        ranks = []
        for e in events:
            site = world.host_to_site(e.url.host)
            if site is not None:
                ranks.append(site.rank)
        top100 = sum(1 for r in ranks if r <= 100)
        bottom_half = sum(1 for r in ranks if r > world.n_domains // 2)
        assert top100 > bottom_half

    def test_subsites_shared(self, stream):
        events = stream.events_for_day(DAY)
        subsite = sum(1 for e in events if not e.url.is_landing_page)
        assert subsite > len(events) * 0.4

    def test_shortener_used(self, stream, world):
        events = [
            e
            for day in range(5)
            for e in stream.events_for_day(DAY + dt.timedelta(days=day))
        ]
        short = sum(
            1 for e in events if e.url.host == world.config.shortener_domain
        )
        assert 0.02 < short / len(events) < 0.12

    def test_infrastructure_never_shared(self, stream, world):
        for day in range(10):
            for e in stream.events_for_day(DAY + dt.timedelta(days=day)):
                site = world.host_to_site(e.url.host)
                if site is not None:
                    assert not site.is_infrastructure

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(events_per_day=0)
        with pytest.raises(ValueError):
            StreamConfig(twitter_share=1.5)


class TestPlatform:
    def test_run_produces_observations(self, social_store):
        assert social_store.n_captures > 1000
        assert social_store.unique_domains > 200
        assert social_store.total_requests > social_store.n_captures

    def test_skip_rate_in_papers_ballpark(self, study, social_store):
        # Section 3.4: the dedup rules skip about 40% of submissions.
        # The exact rate depends on stream volume; assert a broad band.
        platform = NetographPlatform(study.world)
        platform.run(dt.date(2020, 4, 1), dt.date(2020, 4, 15))
        rate = platform.queue.stats.skip_rate
        assert 0.15 < rate < 0.65

    def test_observations_sorted_by_domain(self, social_store):
        by_domain = social_store.by_domain()
        for domain, observations in list(by_domain.items())[:50]:
            dates = [o.date for o in observations]
            assert dates == sorted(dates)
            assert all(o.domain == domain for o in observations)

    def test_vantage_mix_roughly_half_eu(self, social_store):
        regions = Counter(o.vantage.region for o in social_store.observations)
        total = sum(regions.values())
        assert 0.42 < regions["EU"] / total < 0.58
        assert all(
            o.vantage.address_space == "cloud"
            for o in social_store.observations[:200]
        )

    def test_cmp_domains_detected(self, social_store):
        assert len(social_store.domains_with_cmp()) > 10

    def test_store_continues_across_runs(self, study):
        platform = NetographPlatform(study.world)
        store = platform.run(dt.date(2020, 4, 1), dt.date(2020, 4, 3))
        n_first = store.n_captures
        platform.run(dt.date(2020, 4, 3), dt.date(2020, 4, 5), store=store)
        assert store.n_captures > n_first

    def test_retain_captures_flag(self, study):
        platform = NetographPlatform(
            study.world, config=PlatformConfig(retain_captures=True)
        )
        store = platform.run(dt.date(2020, 4, 1), dt.date(2020, 4, 2))
        assert len(store.captures) == store.n_captures > 0
