#!/usr/bin/env python
"""Explore the Global Vendor List history (Figures 7 and 8).

Generates the synthetic 215-version GVL history, walks its diffs the way
the paper does, and prints: vendor growth around the GDPR, per-purpose
declaration counts, legitimate-interest shares, and the net
legitimate-interest -> consent movement. Finishes by building and
round-tripping a real TCF v1.1 consent string against the latest list.

Run:  python examples/gvl_explorer.py
"""

import datetime as dt

from repro.core.gvl_analysis import GvlAnalysis
from repro.tcf import ConsentString, decode_consent_string
from repro.tcf.gvlgen import generate_gvl_history
from repro.tcf.purposes import PURPOSES


def main() -> None:
    print("generating the GVL version history...")
    versions = generate_gvl_history()
    analysis = GvlAnalysis(versions)
    print(f"versions: {len(versions)}   "
          f"({versions[0].last_updated} .. {versions[-1].last_updated})")

    print("\n== Vendor growth (Figure 7) ==")
    for when in ("2018-05-01", "2018-07-01", "2019-01-01",
                 "2020-01-01", "2020-09-01"):
        date = dt.date.fromisoformat(when)
        version = analysis._closest(date)
        print(f"  {when}: {len(version):>4} vendors "
              f"(GVL v{version.version})")
    gdpr_growth = analysis.growth_between(
        dt.date(2018, 5, 1), dt.date(2018, 8, 1)
    )
    print(f"  GDPR spike (May..Aug 2018): +{gdpr_growth} vendors")

    print("\n== Purposes declared on the latest list ==")
    latest = versions[-1]
    hist = latest.purpose_histogram("any")
    li_shares = analysis.li_share_by_purpose()
    for purpose in PURPOSES:
        print(
            f"  P{purpose.id} {purpose.name:<42} "
            f"{hist[purpose.id]:>4} vendors, "
            f"{li_shares[purpose.id] * 100:4.1f}% via legitimate interest"
        )

    print("\n== Changes by existing members (Figure 8) ==")
    events = analysis.change_events()
    for kind in ("li-to-consent", "consent-to-li", "new-consent",
                 "new-li", "dropped-consent", "dropped-li"):
        print(f"  {kind:<16} {events.get(kind, 0)}")
    print(f"  net LI -> consent: {analysis.net_li_to_consent():+d} "
          "(positive = vendors obtain more consent over time)")

    print("\n== Busiest weeks ==")
    for date, n in analysis.activity_peaks():
        print(f"  {date}: {n} purpose changes")

    print("\n== TCF consent string round-trip against the latest list ==")
    consent = ConsentString.build(
        cmp_id=10,  # Quantcast
        vendor_list_version=latest.version,
        max_vendor_id=latest.max_vendor_id,
        allowed_purposes=[1, 3, 5],
        vendor_consents=sorted(latest.vendor_ids)[:50],
        consent_language="EN",
    )
    encoded = consent.encode()
    print(f"  encoded ({len(encoded)} chars): {encoded[:60]}...")
    decoded = decode_consent_string(encoded)
    assert decoded == consent
    print(f"  decoded: purposes={sorted(decoded.allowed_purposes)}, "
          f"{len(decoded.vendor_consents)} vendor consents, "
          f"GVL v{decoded.vendor_list_version}")


if __name__ == "__main__":
    main()
