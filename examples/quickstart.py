#!/usr/bin/env python
"""Quickstart: crawl a synthetic web and measure CMP adoption.

Builds a small deterministic world, runs the social-media measurement
platform over one simulated quarter, and prints what the paper's
pipeline extracts from it: capture counts, queue dedup rate, detected
CMPs, and a mini vantage-point table over the Tranco top 300.

Run:  python examples/quickstart.py
"""

import datetime as dt

from repro.core.pipeline import Study, StudyConfig

def main() -> None:
    study = Study(StudyConfig(seed=7, n_domains=5_000, toplist_size=300,
                              events_per_day=250))

    print("== 1. Social-media crawl (2020-03-01 .. 2020-06-01) ==")
    store = study.run_social_crawl(dt.date(2020, 3, 1), dt.date(2020, 6, 1))
    print(f"captures:        {store.n_captures:,}")
    print(f"unique domains:  {store.unique_domains:,}")
    print(f"HTTP requests:   {store.total_requests:,}")

    series = study.adoption_series(store, restrict_to_toplist=False)
    counts = series.counts_on(dt.date(2020, 5, 15))
    print("\nCMP domains observed on 2020-05-15 (with interpolation):")
    for cmp_key, n in counts.most_common():
        print(f"  {cmp_key:<12} {n}")

    print("\n== 2. Toplist crawl from three vantage points ==")
    table = study.vantage_table(dt.date(2020, 5, 15))
    print(table.format_table())

    print("\n== 3. Where adoption concentrates (Figure 5, small world) ==")
    curve = study.marketshare_curve(dt.date(2020, 5, 15))
    for size, total, _ in curve.rows():
        bar = "#" * int(total * 300)
        print(f"  top {size:>7,}: {total * 100:5.2f}% {bar}")


if __name__ == "__main__":
    main()
