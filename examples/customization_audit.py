#!/usr/bin/env python
"""Audit publisher customization of consent dialogs (Section 4.1, I3).

Crawls the toplist from the EU-university vantage point (the only
configuration that stores DOM trees), classifies every captured dialog
into the paper's taxonomy, and prints the per-CMP customization report:
banner archetypes, 1-click reject shares, opt-out banners, affirmative
vs. free-form accept wording, and the overall API-only share.

Run:  python examples/customization_audit.py
"""

import datetime as dt

from repro.cmps.base import cmp_by_key
from repro.core.customization import (
    CATEGORIES,
    classify_dialogs,
    dialogs_from_captures,
)
from repro.core.pipeline import Study, StudyConfig


def main() -> None:
    study = Study(StudyConfig(seed=7, n_domains=20_000, toplist_size=4_000))
    print("crawling the toplist from the EU university vantage point...")
    result = study.run_toplist_crawl(
        dt.date(2020, 5, 15), configs=("eu-univ-extended",)
    )
    captures = result.captures_for("eu-univ-extended")
    dialogs = dialogs_from_captures(captures)
    print(f"domains crawled: {len(captures):,}   "
          f"dialogs captured: {len(dialogs)}")

    report = classify_dialogs(dialogs)
    for cmp_key in report.categories:
        model = cmp_by_key(cmp_key)
        n = report.n_sites(cmp_key)
        print(f"\n== {model.name} ({n} sites) ==")
        for category in CATEGORIES:
            count = report.categories[cmp_key][category]
            if count:
                print(f"  {category:<20} {count:>4}  "
                      f"({count / n * 100:4.1f}%)")
        print(f"  1-click reject available: "
              f"{report.one_click_reject_share(cmp_key) * 100:.1f}%")
        try:
            share = report.affirmative_wording_share(cmp_key)
            print(f"  affirmative accept wording: {share * 100:.1f}%")
        except ValueError:
            pass

    print(f"\nCMP used for its API only (custom publisher UI): "
          f"{report.api_only_share_overall() * 100:.1f}% of CMP sites")


if __name__ == "__main__":
    main()
