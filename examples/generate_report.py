#!/usr/bin/env python
"""Regenerate the whole paper as one Markdown report.

Runs every analysis on a moderate world and writes
``reproduction_report.md`` next to this script. Use ``--full`` for the
complete 2.5-year longitudinal section (slower).

Run:  python examples/generate_report.py [--full]
"""

import datetime as dt
import sys
from pathlib import Path

from repro.core.pipeline import Study, StudyConfig
from repro.core.report import ReportOptions, generate_report


def main() -> None:
    full = "--full" in sys.argv
    study = Study(
        StudyConfig(
            seed=7,
            n_domains=20_000 if full else 8_000,
            toplist_size=10_000 if full else 2_000,
            events_per_day=400 if full else 150,
        )
    )
    options = ReportOptions(
        longitudinal_start=None if full else dt.date(2019, 9, 1),
        longitudinal_end=None if full else dt.date(2020, 6, 1),
    )
    print("generating the reproduction report "
          f"({'full' if full else 'quick'} mode)...")
    text = generate_report(study, options)
    out = Path(__file__).resolve().parent / "reproduction_report.md"
    out.write_text(text, encoding="utf-8")
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    print("\n".join(text.splitlines()[:28]))


if __name__ == "__main__":
    main()
