#!/usr/bin/env python
"""Figure 6 on your terminal: CMP adoption over time with law events.

Runs the longitudinal pipeline over the full 2.5-year study window on a
scaled-down world, applies the paper's interpolation and 30-day fade-out
rules, and renders the monthly adoption series as an ASCII chart
annotated with the GDPR/CCPA timeline. Also prints the inter-CMP
switching flows (Figure 4).

Run:  python examples/adoption_timeline.py
"""

import datetime as dt

from repro.cmps.base import CMP_KEYS, cmp_by_key
from repro.core.pipeline import Study, StudyConfig
from repro.core.timeline import event_impacts
from repro.datasets import PRIVACY_LAW_EVENTS


def main() -> None:
    study = Study(StudyConfig(seed=7, n_domains=8_000, toplist_size=1_000,
                              events_per_day=200))
    print("running the platform over 2018-03 .. 2020-09 "
          "(a scaled-down 2.5-year crawl)...")
    store = study.run_social_crawl()
    series = study.adoption_series(store, restrict_to_toplist=True)

    print(f"\ncaptures: {store.n_captures:,}   "
          f"unique domains: {store.unique_domains:,}")

    print("\n== CMP count in the toplist, by month (Figure 6) ==")
    events_by_month = {
        (e.date.year, e.date.month): e for e in PRIVACY_LAW_EVENTS
    }
    for date, counts in series.series(study.monthly_dates()):
        total = sum(counts.values())
        marker = ""
        event = events_by_month.get((date.year, date.month))
        if event is not None:
            marker = f"   <-- {event.label}"
        print(f"  {date}  {total:>4}  {'#' * (total // 2)}{marker}")

    print("\n== Per-CMP counts at the end of the study ==")
    final = series.counts_on(dt.date(2020, 9, 1))
    for key in CMP_KEYS:
        print(f"  {cmp_by_key(key).name:<12} {final.get(key, 0)}")

    print("\n== Law events vs. baseline growth ==")
    for impact in event_impacts(series):
        flag = "SPIKE" if impact.excess_growth > impact.baseline_growth else "     "
        print(
            f"  {impact.event.date}  {impact.event.label:<38} "
            f"growth={impact.growth:>4}  baseline={impact.baseline_growth:>5.1f} {flag}"
        )

    print("\n== Inter-CMP switching (Figure 4) ==")
    flows = study.switching_flows(series)
    for key, gained, lost, net in flows.rows():
        print(f"  {cmp_by_key(key).name:<12} gained={gained:<4} lost={lost:<4} net={net}")


if __name__ == "__main__":
    main()
