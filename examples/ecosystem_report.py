#!/usr/bin/env python
"""A full consent-ecosystem report (Sections 5.2 and 7).

Pulls the extension analyses together: market concentration over time,
jurisdictional dominance, consent-coalition reach, a regulator-style
compliance audit, and the v1 -> v2 consent-string migration path.

Run:  python examples/ecosystem_report.py
"""

import datetime as dt

from repro.cmps.base import cmp_by_key
from repro.cmps.render import render_dialog
from repro.core.compliance import audit_captures
from repro.core.concentration import hhi_series, jurisdiction_report
from repro.core.pipeline import Study, StudyConfig
from repro.tcf.consentstring import ConsentString
from repro.tcf.globalcookie import (
    CookieAccessEndpoint,
    GlobalConsentStore,
    shared_consent_reach,
)
from repro.tcf.v2.migrate import upgrade_consent_string

MAY = dt.date(2020, 5, 15)


def main() -> None:
    study = Study(StudyConfig(seed=7, n_domains=20_000, toplist_size=3_000))
    world = study.world

    print("== Market concentration (HHI of the six-CMP market) ==")
    dates = [dt.date(2018, 7, 1), dt.date(2019, 7, 1), dt.date(2020, 7, 1)]
    for date, value in hhi_series(world, dates, max_rank=10_000):
        print(f"  {date}: {value:.3f}")

    print("\n== Jurisdictional dominance (May 2020) ==")
    jur = jurisdiction_report(world, MAY, max_rank=10_000)
    print(f"  EU+UK TLD leader: {cmp_by_key(jur.eu_uk_leader).name} "
          f"({jur.leader_share('eu-uk') * 100:.0f}%)")
    print(f"  other TLD leader: {cmp_by_key(jur.other_leader).name} "
          f"({jur.leader_share('other') * 100:.0f}%)")
    print(f"  distinct coalitions: {jur.distinct_coalitions}")

    print("\n== Consent reach: one click, how many sites? ==")
    for key, n in sorted(
        shared_consent_reach(world, MAY, max_rank=10_000).items(),
        key=lambda x: -x[1],
    ):
        print(f"  {cmp_by_key(key).name:<12} {n:>4} sites share one decision")

    print("\n== One decision, stored globally ==")
    jar = GlobalConsentStore()
    consent = ConsentString.build(
        cmp_id=10, vendor_list_version=180, max_vendor_id=560,
        allowed_purposes=[1], vendor_consents=[],
    )
    cookie = jar.record_decision("quantcast", consent)
    print(f"  cookie: {cookie.name} @ {cookie.domain}")
    probe = CookieAccessEndpoint(jar).fetch("quantcast")
    print(f"  CookieAccess probe: repeat visitor = {probe.is_repeat_visitor}")
    upgraded = upgrade_consent_string(consent)
    print(f"  migrated to TCF v2: purposes {sorted(upgraded.purposes_consent)}"
          f" -> {upgraded.encode()[:40]}...")

    print("\n== Regulator-style compliance audit (EU university crawl) ==")
    crawl = study.run_toplist_crawl(MAY, configs=("eu-univ-extended",))
    audit = audit_captures(crawl.captures_for("eu-univ-extended"))
    print(f"  sites audited: {audit.sites_audited}, "
          f"with findings: {audit.sites_with_findings}")
    for code, count, rate in audit.rows():
        print(f"  {code:<26} {count:>4}  ({rate * 100:.1f}% of sites)")

    print("\n== Example finding, rendered ==")
    offender = next(
        (
            c.dom_dialog
            for c in crawl.captures_for("eu-univ-extended").values()
            if c.dom_dialog is not None
            and c.dom_dialog.accept_wording
            and not c.dom_dialog.has_first_page_reject
            and c.dom_dialog.kind == "modal"
        ),
        None,
    )
    if offender is not None:
        print(render_dialog(offender))


if __name__ == "__main__":
    main()
