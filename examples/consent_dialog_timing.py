#!/usr/bin/env python
"""The user-interface time costs (Figures 9 and 10).

Re-runs both timing studies: the randomized Quantcast dialog experiment
(2910 EU visitors, two configurations) and the TrustArc opt-out
waterfall replay (hourly for two weeks). Prints the medians, consent
rates and Mann-Whitney U tests the paper reports in Section 4.3.

Run:  python examples/consent_dialog_timing.py
"""

from repro.core.timing import OptOutStudy, TimingStudy
from repro.stats.descriptive import five_number_summary
from repro.users.behavior import DialogConfig
from repro.users.experiment import run_quantcast_experiment


def main() -> None:
    print("== Quantcast dialog experiment (Figure 10) ==")
    data = run_quantcast_experiment(n_visitors=2910, seed=42)
    study = TimingStudy(data)
    print(f"visitors shown a dialog: {len(data.shown())}   "
          f"repeat visitors (no dialog): {data.repeat_visitors}   "
          f"timestamps logged: {data.n_timestamps:,}")

    for config in DialogConfig:
        accept = study.times(config, "accept")
        reject = study.times(config, "reject")
        test = study.accept_vs_reject_test(config)
        print(f"\n  configuration: {config.value}")
        print(f"    accept: n={len(accept):<5} "
              f"median={study.median_time(config, 'accept'):.1f}s")
        print(f"    reject: n={len(reject):<5} "
              f"median={study.median_time(config, 'reject'):.1f}s")
        print(f"    consent rate: {study.consent_rate(config) * 100:.0f}%")
        print(f"    Mann-Whitney: U={test.u:.0f} z={test.z:.2f} "
              f"p={test.p_value:.2g}")
        summary = five_number_summary(reject)
        print(f"    reject-time box: min={summary.minimum:.1f} "
              f"q1={summary.q1:.1f} med={summary.median:.1f} "
              f"q3={summary.q3:.1f} max={summary.maximum:.1f}")

    print("\n== TrustArc opt-out waterfall (Figure 9) ==")
    optout = OptOutStudy.run(seed=9)
    for label, value in optout.rows():
        print(f"  {label:<34} {value:8.2f}")
    print("\n  step-by-step (medians):")
    for label, duration in optout.step_breakdown():
        print(f"    {label:<28} {duration:5.2f}s")


if __name__ == "__main__":
    main()
