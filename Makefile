PYTHON ?= python

.PHONY: verify test lint cache-guard chaos coverage smoke-streaming bench-throughput bench-baseline bench-obs bench-lint bench-lint-floor bench-faults bench-cache bench-streaming bench-streaming-baseline bench-graph bench-graph-baseline bench-scale bench-scale-baseline

## Tier-1 tests + determinism lint + a ~10s smoke run of the executor.
verify:
	bash scripts/verify.sh

## Tier-1 tests only.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

## Two-phase determinism & contract analyzer over the pipeline sources
## and scripts: per-file rules (DET/MUT/OBS) plus the whole-program
## analyses (XMOD taint, RACE worker writes, CACHE staleness guard).
## Fails on any new finding or unused suppression (empty baseline).
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src scripts

## Cache-versions guard only: prove cache-versions.lock.json matches
## HEAD (CACHE001 = forgotten CODE_VERSIONS bump, CACHE002 = stale
## lock). After a reviewed change: `python -m repro.lint --update-lock`.
cache-guard:
	PYTHONPATH=src $(PYTHON) -m repro.lint src --select CACHE

## Fault-injection invariants only (the @pytest.mark.chaos suite).
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m chaos

## Statement-coverage gate: repro.graph must stay >= 90% covered.
## Uses pytest-cov when installed (also enforces the repo-wide
## baseline); falls back to a stdlib settrace tracer otherwise.
coverage:
	PYTHONPATH=src $(PYTHON) scripts/coverage_gate.py

## Streaming equivalence smoke: follow == batch byte-identically,
## cold and when resumed from a mid-window checkpoint.
smoke-streaming:
	PYTHONPATH=src $(PYTHON) scripts/streaming_smoke.py

## Throughput floor guard: fail if fresh serial crawl throughput
## regressed more than 20% against the committed BENCH_throughput.json.
bench-throughput:
	PYTHONPATH=src $(PYTHON) benchmarks/record_throughput.py --check

## Re-record the BENCH_throughput.json throughput baseline.
bench-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/record_throughput.py

## Re-record the BENCH_obs.json observability-overhead baseline.
bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/record_obs_overhead.py

## Re-record the BENCH_lint.json analyzer-runtime baseline
## (per-phase timing; asserts the phase-2 floor guard).
bench-lint:
	PYTHONPATH=src $(PYTHON) benchmarks/record_lint.py

## Analyzer floor guard: fail if phase 2 (whole-program) exceeds 2x
## phase-1 wall time on the tree; does not rewrite the baseline.
bench-lint-floor:
	PYTHONPATH=src $(PYTHON) benchmarks/record_lint.py --check

## Re-record the BENCH_faults.json retry-path-overhead baseline.
bench-faults:
	PYTHONPATH=src $(PYTHON) benchmarks/record_faults.py

## Re-record the BENCH_cache.json warm-start speedup baseline
## (default StudyConfig, cold vs warm; asserts byte-identity).
bench-cache:
	PYTHONPATH=src $(PYTHON) benchmarks/record_cache.py

## Streaming ingest floor guard: fail if sustained follow throughput
## regressed more than 20% against the committed BENCH_streaming.json.
bench-streaming:
	PYTHONPATH=src $(PYTHON) benchmarks/record_streaming.py --check

## Re-record the BENCH_streaming.json ingest/query-latency baseline.
bench-streaming-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/record_streaming.py

## Graph build floor guard: fail if fresh nodes+edges/sec regressed
## more than 20% against the committed BENCH_graph.json.
bench-graph:
	PYTHONPATH=src $(PYTHON) benchmarks/record_graph.py --check

## Re-record the BENCH_graph.json build/query-latency baseline.
bench-graph-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/record_graph.py

## Flat-RSS guard: re-run the large (3.7M-crawl) spilling study in a
## subprocess and fail if its peak RSS exceeds the spill-budget cap or
## regresses >20% over the committed BENCH_scale.json; also re-checks
## the spill-vs-in-memory digest identity on a small study.
bench-scale:
	PYTHONPATH=src $(PYTHON) benchmarks/record_scale.py --check

## Re-record the BENCH_scale.json small-vs-large RSS baseline.
bench-scale-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/record_scale.py
