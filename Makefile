PYTHON ?= python

.PHONY: verify test bench-baseline bench-obs

## Tier-1 tests + a ~10s smoke run of the parallel crawl executor.
verify:
	bash scripts/verify.sh

## Tier-1 tests only.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

## Re-record the BENCH_throughput.json throughput baseline.
bench-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/record_throughput.py

## Re-record the BENCH_obs.json observability-overhead baseline.
bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/record_obs_overhead.py
