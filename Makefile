PYTHON ?= python

.PHONY: verify test lint chaos smoke-streaming bench-throughput bench-baseline bench-obs bench-lint bench-faults bench-cache bench-streaming bench-streaming-baseline

## Tier-1 tests + determinism lint + a ~10s smoke run of the executor.
verify:
	bash scripts/verify.sh

## Tier-1 tests only.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

## Determinism & contract linter over the pipeline sources and scripts.
## Fails on any new finding or unused suppression (empty baseline).
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src scripts

## Fault-injection invariants only (the @pytest.mark.chaos suite).
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m chaos

## Streaming equivalence smoke: follow == batch byte-identically,
## cold and when resumed from a mid-window checkpoint.
smoke-streaming:
	PYTHONPATH=src $(PYTHON) scripts/streaming_smoke.py

## Throughput floor guard: fail if fresh serial crawl throughput
## regressed more than 20% against the committed BENCH_throughput.json.
bench-throughput:
	PYTHONPATH=src $(PYTHON) benchmarks/record_throughput.py --check

## Re-record the BENCH_throughput.json throughput baseline.
bench-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/record_throughput.py

## Re-record the BENCH_obs.json observability-overhead baseline.
bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/record_obs_overhead.py

## Re-record the BENCH_lint.json linter-runtime baseline.
bench-lint:
	PYTHONPATH=src $(PYTHON) benchmarks/record_lint.py

## Re-record the BENCH_faults.json retry-path-overhead baseline.
bench-faults:
	PYTHONPATH=src $(PYTHON) benchmarks/record_faults.py

## Re-record the BENCH_cache.json warm-start speedup baseline
## (default StudyConfig, cold vs warm; asserts byte-identity).
bench-cache:
	PYTHONPATH=src $(PYTHON) benchmarks/record_cache.py

## Streaming ingest floor guard: fail if sustained follow throughput
## regressed more than 20% against the committed BENCH_streaming.json.
bench-streaming:
	PYTHONPATH=src $(PYTHON) benchmarks/record_streaming.py --check

## Re-record the BENCH_streaming.json ingest/query-latency baseline.
bench-streaming-baseline:
	PYTHONPATH=src $(PYTHON) benchmarks/record_streaming.py
