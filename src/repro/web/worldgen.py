"""Lazy, rank-addressable generation of the synthetic web.

A :class:`World` maps every popularity rank ``1..n_domains`` to a fully
specified :class:`~repro.web.website.Website`. Generation is lazy and
per-site deterministic: site *r* of world seed *s* is always identical,
no matter in which order (or whether) other sites are generated. This is
what makes million-rank analyses tractable -- the marketshare analysis
can sample ranks stratified in log space instead of materializing the
whole world.

The world also implements the :class:`~repro.net.probe.ReachabilityOracle`
protocol, so the toplist seed-URL resolution runs against it unchanged.
"""

from __future__ import annotations

import datetime as dt
import random
import string
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.cmps import onetrust, quantcast, trustarc, cookiebot, liveramp, crownpeak
from repro.cmps.base import DialogDescriptor, cmp_by_key
from repro.web.adoption import AdoptionModel
from repro.web.lru import MISSING, BoundedLRU
from repro.web.website import CmpEpisode, Website

_DIALOG_SAMPLERS = {
    "onetrust": onetrust.sample_dialog,
    "quantcast": quantcast.sample_dialog,
    "trustarc": trustarc.sample_dialog,
    "cookiebot": cookiebot.sample_dialog,
    "liveramp": liveramp.sample_dialog,
    "crownpeak": crownpeak.sample_dialog,
}

#: Per-CMP probabilities of the hosting/embedding traits that drive the
#: vantage-point differences of Table 1: embedding the CMP only for EU
#: visitors, sitting behind an anti-bot CDN, and loading the CMP too
#: late for the default crawl timeout.
_GEO_TRAITS: Dict[str, Tuple[float, float, float]] = {
    # (p_embed_eu_only, p_antibot, p_slow)
    "onetrust": (0.100, 0.11, 0.027),
    "quantcast": (0.220, 0.11, 0.034),
    "trustarc": (0.110, 0.24, 0.026),
    "cookiebot": (0.080, 0.02, 0.030),
    "liveramp": (0.070, 0.35, 0.010),
    "crownpeak": (0.030, 0.11, 0.050),
}

#: Probability that an EU-only embedder switches to global embedding in
#: early 2020 (the CCPA effect behind the Table A.3 -> Table 1
#: US-coverage rise, 70% -> 79%).
_GO_GLOBAL_PROB = 0.42
_GO_GLOBAL_WINDOW = (dt.date(2020, 1, 1), dt.date(2020, 5, 1))

#: Baseline anti-bot probability for sites without a CMP (irrelevant to
#: detection, but keeps cloud crawls realistic).
_BASE_ANTIBOT = 0.08

#: Website-class mixture for toplist ranks, calibrated to the Tranco-10k
#: missing-data breakdown of Section 3.5: 495 infrastructure domains,
#: 315 unreachable, 70 HTTP errors, 4 invalid responses, 192 aliases
#: that redirect to another domain.
_CLASS_PROBS = (
    ("infrastructure", 0.0495),
    ("dead", 0.0315),
    ("http-error", 0.0070),
    ("invalid-response", 0.0004),
    ("alias", 0.0192),
    ("normal", 1.0),  # remainder
)

_EU_TLDS = ("de", "co.uk", "fr", "it", "nl", "es", "pl", "se", "eu", "at", "dk", "ie")
_NON_EU_TLDS = ("com", "com", "com", "org", "net", "io", "co", "us", "ca", "com.au", "co.jp", "com.br", "in")

_WORDS1 = (
    "news", "daily", "cyber", "meta", "hyper", "prime", "vivid", "north",
    "pixel", "terra", "lumen", "rapid", "solar", "urban", "vocal", "zen",
    "astra", "bold", "crisp", "delta", "echo", "flux", "gamma", "halo",
)
_WORDS2 = (
    "press", "wire", "hub", "portal", "times", "post", "digest", "beat",
    "scope", "sphere", "stack", "forge", "works", "point", "line", "cast",
    "gazette", "journal", "review", "tribune", "planet", "base", "deck",
)

_B36 = string.digits + string.ascii_lowercase


def _b36(n: int) -> str:
    if n == 0:
        return "0"
    out = []
    while n:
        n, rem = divmod(n, 36)
        out.append(_B36[rem])
    return "".join(reversed(out))


@dataclass(frozen=True)
class CacheLimits:
    """Size bounds for the world's memo caches.

    Every memo is a pure function of ``(world seed, key)``, so these
    bounds are *execution knobs*: eviction regenerates identical bits
    on the next miss, and no limit ever enters a cache fingerprint.
    ``None`` means unbounded. The defaults keep a multi-million-crawl
    study's world memory flat while staying far above the Zipf-skewed
    hot set of the default 100k-domain world, so steady-state hit rates
    are indistinguishable from unbounded.
    """

    #: Generated :class:`~repro.web.website.Website` objects, by rank.
    sites: Optional[int] = 32_768
    #: Positive host -> rank resolutions (``www.X``/apex chains).
    hosts: Optional[int] = 65_536
    #: Negative host resolutions. Dead/external hosts are unbounded in
    #: number, so without this cap a long probe run leaks one entry per
    #: distinct miss, forever.
    negative_hosts: Optional[int] = 4_096
    #: ``(url, region, space)`` -> static visit plan entries.
    visit_plans: Optional[int] = 65_536
    #: ``(rank, subsite, shortened)`` -> shared URL instances.
    share_urls: Optional[int] = 65_536


#: Restores the pre-bounds behavior: every memo grows without limit.
UNBOUNDED_CACHE_LIMITS = CacheLimits(
    sites=None, hosts=None, negative_hosts=None, visit_plans=None,
    share_urls=None,
)


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of a synthetic world."""

    seed: int = 7
    #: Number of ranked domains that exist.
    n_domains: int = 100_000
    #: Domain of the URL-shortening service seen in social shares.
    shortener_domain: str = "shr.tv"
    #: Study window; sites do not change outside it.
    study_start: dt.date = dt.date(2018, 3, 1)
    study_end: dt.date = dt.date(2020, 9, 30)

    def __post_init__(self) -> None:
        if self.n_domains < 100:
            raise ValueError("worlds need at least 100 domains")


class World:
    """The synthetic web, addressable by rank or by domain."""

    def __init__(
        self,
        config: Optional[WorldConfig] = None,
        cache_limits: Optional[CacheLimits] = None,
    ):
        self.config = config or WorldConfig()
        self.cache_limits = cache_limits or CacheLimits()
        limits = self.cache_limits
        self._adoption = AdoptionModel(
            self.config.study_start, self.config.study_end
        )
        self._cache: BoundedLRU = BoundedLRU(
            limits.sites, on_evict=self._on_site_evict
        )
        #: domain -> rank memo, populated by :meth:`site`. Purely a
        #: shortcut past :meth:`_rank_from_domain` (the rank is encoded
        #: in the domain's base-36 suffix); the site-cache eviction
        #: callback drops entries so it never outgrows the site cache.
        self._domain_to_rank: Dict[str, int] = {}
        #: host -> resolved *rank*, memoizing the full
        #: :meth:`host_to_site` chain -- the crawl path resolves the
        #: same www/apex hosts for every visit. Ranks, not sites, so an
        #: entry never pins an evicted Website alive.
        self._host_site_cache: BoundedLRU = BoundedLRU(limits.hosts)
        #: host -> True for hosts that resolved to *nothing*. Kept
        #: apart from the positive entries so the unbounded universe of
        #: dead/external hosts gets its own (small) cap.
        self._host_negative_cache: BoundedLRU = BoundedLRU(
            limits.negative_hosts
        )
        #: ``(url, region, space)`` -> static visit plan, owned by
        #: :mod:`repro.web.serving` (the compact-visit fast path).
        self._visit_plan_cache: BoundedLRU = BoundedLRU(limits.visit_plans)
        #: ``(rank, subsite index, shortened)`` -> shared URL instance,
        #: owned by :mod:`repro.crawler.seeds`. World-level so every
        #: stream over this world reuses the same instances (their
        #: string/hash/key memos and plan-cache entries stay warm).
        self._share_url_cache: BoundedLRU = BoundedLRU(limits.share_urls)

    def _on_site_evict(self, rank: int, site: Website) -> None:
        # Keep the domain->rank memo from pinning evicted domains; the
        # rank re-derives from the domain suffix on the next lookup.
        self._domain_to_rank.pop(site.domain, None)

    def set_cache_limits(self, limits: CacheLimits) -> None:
        """Re-bound the memo caches in place (trimming oldest entries).

        Bit-invisible by construction -- see :class:`CacheLimits`. Used
        to apply execution-level bounds to worker-resolved worlds
        without the limits ever entering :class:`WorldConfig` (which is
        a cache-fingerprint input and the worker world-cache key).
        """
        self.cache_limits = limits
        self._cache.resize(limits.sites)
        self._host_site_cache.resize(limits.hosts)
        self._host_negative_cache.resize(limits.negative_hosts)
        self._visit_plan_cache.resize(limits.visit_plans)
        self._share_url_cache.resize(limits.share_urls)

    def cache_info(self) -> Dict[str, BoundedLRU]:
        """The memo caches by gauge label, for ``world_cache_*``."""
        return {
            "sites": self._cache,
            "hosts": self._host_site_cache,
            "negative_hosts": self._host_negative_cache,
            "visit_plans": self._visit_plan_cache,
            "share_urls": self._share_url_cache,
        }

    # ------------------------------------------------------------------
    # Site access
    # ------------------------------------------------------------------
    @property
    def n_domains(self) -> int:
        return self.config.n_domains

    def site(self, rank: int) -> Website:
        """Return (generating if necessary) the site at *rank*."""
        cached = self._cache.get(rank)
        if cached is not None:
            return cached
        if not 1 <= rank <= self.config.n_domains:
            raise KeyError(f"rank {rank} outside [1, {self.config.n_domains}]")
        site = self._generate(rank)
        self._cache[rank] = site
        self._domain_to_rank[site.domain] = rank
        return site

    def sites(self, ranks) -> Iterator[Website]:
        for rank in ranks:
            yield self.site(rank)

    def site_by_domain(self, domain: str) -> Optional[Website]:
        """Resolve a registrable domain back to its site.

        Works for any domain this world generated (the rank is encoded in
        the domain's base-36 suffix), including alias domains -- for
        those the *alias site* is returned, not its redirect target.
        """
        domain = domain.lower()
        if domain in self._domain_to_rank:
            return self.site(self._domain_to_rank[domain])
        rank = self._rank_from_domain(domain)
        if rank is None:
            return None
        site = self.site(rank)
        if site.domain == domain or domain in site.redirect_aliases:
            return site
        return None

    def host_to_site(self, host: str) -> Optional[Website]:
        """Resolve an arbitrary hostname (www.X, subdomain.X) to a site."""
        rank = self._host_site_cache.get(host, MISSING)
        if rank is not MISSING:
            return self.site(rank)
        if self._host_negative_cache.get(host) is not None:
            return None
        lowered = host.lower()
        resolved: Optional[Website] = None
        for candidate in (lowered, lowered.partition(".")[2]):
            if not candidate:
                continue
            site = self.site_by_domain(candidate)
            if site is not None:
                resolved = site
                break
        if resolved is None:
            self._host_negative_cache[host] = True
            return None
        self._host_site_cache[host] = resolved.rank
        return resolved

    def _rank_from_domain(self, domain: str) -> Optional[int]:
        name = domain.split(".", 1)[0]
        tag = name.rsplit("-", 1)[-1]
        if tag.endswith("alt"):
            tag = tag[:-3]
        if not tag or any(c not in _B36 for c in tag):
            return None
        rank = int(tag, 36)
        if 1 <= rank <= self.config.n_domains:
            return rank
        return None

    # ------------------------------------------------------------------
    # ReachabilityOracle protocol (for repro.net.probe)
    # ------------------------------------------------------------------
    def tls_ok(self, host: str, attempt: int) -> bool:
        site = self.host_to_site(host)
        if site is None:
            return False
        if self._temporarily_down(site, attempt):
            return False
        return site.reachability in ("https",) or site.redirects_to is not None

    def tcp80_ok(self, host: str, attempt: int) -> bool:
        site = self.host_to_site(host)
        if site is None:
            return False
        if self._temporarily_down(site, attempt):
            return False
        if site.reachability in ("unreachable",):
            return False
        if site.reachability == "http-bare" and host.startswith("www."):
            return False
        return True

    def _temporarily_down(self, site: Website, attempt: int) -> bool:
        # ~2% of reachable sites are down on any single probe; the
        # three-attempt schedule recovers them (Section 3.2).
        rng = random.Random(f"{self.config.seed}:down:{site.rank}:{attempt}")
        return site.reachability != "unreachable" and rng.random() < 0.02

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _generate(self, rank: int) -> Website:
        rng = random.Random(f"{self.config.seed}:site:{rank}")
        site_class = self._site_class(rng, rank)
        tld_rng_roll = rng.random()

        if site_class == "infrastructure":
            return Website(
                rank=rank,
                domain=self._make_domain(rng, rank, eu=False, infra=True),
                is_infrastructure=True,
                share_weight=0.0,
                reachability="https",
            )
        if site_class == "dead":
            return Website(
                rank=rank,
                domain=self._make_domain(rng, rank, eu=tld_rng_roll < 0.2),
                share_weight=0.0,
                reachability="unreachable",
            )
        if site_class == "http-error":
            return Website(
                rank=rank,
                domain=self._make_domain(rng, rank, eu=tld_rng_roll < 0.2),
                share_weight=0.0,
                reachability="http-error",
            )
        if site_class == "invalid-response":
            return Website(
                rank=rank,
                domain=self._make_domain(rng, rank, eu=tld_rng_roll < 0.2),
                share_weight=0.0,
                reachability="invalid-response",
            )
        if site_class == "alias":
            target_rank = self._alias_target(rng, rank)
            target = self.site(target_rank)
            return Website(
                rank=rank,
                domain=self._make_domain(rng, rank, eu=tld_rng_roll < 0.2, alias=True),
                share_weight=0.0,
                reachability="https",
                redirects_to=target.domain,
            )

        # -- a normal, user-facing site --------------------------------
        history = self._adoption.sample_history(rng, rank)
        episodes = tuple(
            CmpEpisode(
                cmp_key=key,
                start=start,
                end=end,
                dialog=self._sample_dialog(rng, key, start),
            )
            for key, start, end in history.stints
        )
        first_cmp = history.stints[0][0] if history.stints else None
        us_embed_since = None
        if first_cmp is not None:
            eu = rng.random() < cmp_by_key(first_cmp).eu_tld_share
            p_eu_only, p_antibot, p_slow = _GEO_TRAITS[first_cmp]
            embed_eu_only = rng.random() < p_eu_only
            if embed_eu_only and rng.random() < _GO_GLOBAL_PROB:
                start, end = _GO_GLOBAL_WINDOW
                us_embed_since = start + dt.timedelta(
                    days=rng.randrange((end - start).days)
                )
            antibot = rng.random() < p_antibot
            slow = rng.random() < p_slow
        else:
            eu = rng.random() < 0.22
            embed_eu_only = False
            antibot = rng.random() < _BASE_ANTIBOT
            slow = rng.random() < 0.03

        # Subsite CMP coverage: 99.8% of domains are consistently high
        # or (trivially, for non-adopters) zero; 0.2% are geo-variable.
        blocks_eu = bool(episodes) and rng.random() < 0.002
        coverage = 1.0 if rng.random() < 0.9 else 0.97
        # ~4% of CMP sites keep the landing page free of external
        # scripts and only embed the CMP on subsites.
        cmp_on_landing = not (bool(episodes) and rng.random() < 0.04)
        n_subsites = max(4, int(rng.gauss(60.0 / (1 + rank ** 0.25), 4)) + 6)

        return Website(
            rank=rank,
            domain=self._make_domain(rng, rank, eu=eu),
            episodes=episodes,
            embed_regions=frozenset({"EU"}) if embed_eu_only else frozenset({"EU", "US"}),
            us_embed_since=us_embed_since,
            behind_antibot_cdn=antibot,
            slow_loader=slow,
            n_subsites=n_subsites,
            cmp_subsite_coverage=coverage,
            cmp_on_landing=cmp_on_landing,
            blocks_eu_visitors=blocks_eu,
            share_weight=self._share_weight(rng, rank),
            reachability=self._reachability(rng),
        )

    def _site_class(self, rng: random.Random, rank: int) -> str:
        # The very top of the list contains no dead domains.
        roll = rng.random()
        acc = 0.0
        for name, p in _CLASS_PROBS[:-1]:
            if rank <= 30 and name != "infrastructure":
                continue
            acc += p
            if roll < acc:
                return name
        return "normal"

    def _class_of(self, rank: int) -> str:
        """Re-derive a rank's site class without generating the site."""
        rng = random.Random(f"{self.config.seed}:site:{rank}")
        return self._site_class(rng, rank)

    def _alias_target(self, rng: random.Random, rank: int) -> int:
        # Aliases redirect to a *normal* site of broadly similar
        # popularity; never to another alias (no redirect chains, and no
        # generation cycles).
        lo = max(1, rank // 2)
        hi = min(self.config.n_domains, rank * 2 + 10)
        for _ in range(50):
            target = rng.randrange(lo, hi + 1)
            if target != rank and self._class_of(target) == "normal":
                return target
        # Extremely unlikely fallback: scan for the nearest normal site.
        for target in range(rank + 1, self.config.n_domains + 1):
            if self._class_of(target) == "normal":
                return target
        raise RuntimeError("no normal site found for alias target")

    def _sample_dialog(
        self, rng: random.Random, cmp_key: str, start: dt.date
    ) -> DialogDescriptor:
        # OneTrust's CCPA-oriented configurations ("Do Not Sell" banners,
        # California footer links) only exist for setups created once the
        # product pivoted towards the CCPA in late 2019. Long-running
        # configurations keep their original dialog -- a simplification:
        # in reality some publishers refreshed theirs.
        if cmp_key == "onetrust":
            era = "ccpa" if start >= dt.date(2019, 10, 1) else "pre-ccpa"
            return _DIALOG_SAMPLERS[cmp_key](rng, era=era)
        return _DIALOG_SAMPLERS[cmp_key](rng)

    def _make_domain(
        self,
        rng: random.Random,
        rank: int,
        *,
        eu: bool,
        infra: bool = False,
        alias: bool = False,
    ) -> str:
        w1 = rng.choice(_WORDS1)
        w2 = rng.choice(_WORDS2)
        tag = _b36(rank)
        if alias:
            tag += "alt"
        if infra:
            return f"cdn{w1}-{tag}.net"
        tld = rng.choice(_EU_TLDS) if eu else rng.choice(_NON_EU_TLDS)
        return f"{w1}{w2}-{tag}.{tld}"

    def _share_weight(self, rng: random.Random, rank: int) -> float:
        base = 1.0 / rank ** 0.85
        return base * rng.lognormvariate(0.0, 0.6)

    def _reachability(self, rng: random.Random) -> str:
        roll = rng.random()
        if roll < 0.90:
            return "https"
        if roll < 0.98:
            return "http-only"
        return "http-bare"


def publish_world_cache_gauges(obs, world: World) -> None:
    """Snapshot the world memo caches into obs gauges.

    Point-in-time hits, evictions and entry counts per bounded memo
    (sites, host resolutions, visit plans, shared URLs) -- the numbers
    that decide whether a bounded run stays memoized or thrashes.
    Called at the end of every platform run; a no-op under the null obs
    backend. The caches are per-process, so sharded ``process`` runs
    report the parent's caches only.
    """
    if not obs.enabled:
        return
    hits = obs.metrics.gauge(
        "world_cache_hits", "memoization hits in the world caches, by cache"
    )
    evictions = obs.metrics.gauge(
        "world_cache_evictions",
        "LRU evictions from the world caches, by cache",
    )
    entries = obs.metrics.gauge(
        "world_cache_entries", "memoized entries in the world caches, by cache"
    )
    for name, lru in sorted(world.cache_info().items()):
        hits.set(lru.hits, cache=name)
        evictions.set(lru.evictions, cache=name)
        entries.set(len(lru), cache=name)
