"""Rendering page visits of the synthetic web.

:func:`render_page` is the "server plus page JavaScript" of the synthetic
world: given a URL, a visit date and visitor properties (region, address
space, browser language) it produces everything a real browser would
observe -- the HTTP transactions with timings, cookies, the consent-dialog
state and the visible page text.

The browser simulator in :mod:`repro.crawler.browser` layers crawl
behaviour (timeouts, redirect following, storage capture) on top.

Hot-path structure
------------------

A visit is split into an observable **skeleton** and cosmetic **flesh**:

* the skeleton (:func:`_visit_skeleton`) decides everything a crawl
  *outcome* depends on -- redirect hops, the final host, the document
  status, which transactions exist and when each starts, whether and
  when the CMP script loads. It draws from a per-visit
  :class:`~repro.det.KeyedRand` keyed on ``(world seed, url, date,
  visitor)``;
* the flesh (response sizes, durations of leaf transactions, IPs,
  cookie values, storage records, page text) is only materialized by
  :func:`render_page`, from a *disjoint* stream split off the same key.

The columnar crawl path (:func:`visit_compact`) consumes the skeleton
alone and never builds transaction or page objects, which is where the
bulk of its speedup comes from; because both paths share one skeleton
function and one draw stream, their observable results are identical by
construction (pinned by ``tests/test_columnar.py``).
"""

from __future__ import annotations

import datetime as dt
import zlib
from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Tuple

from repro.cmps.base import DialogDescriptor, cmp_by_key
from repro.datasets import GDPR_PHRASES
from repro.det import KeyedRand, fold64, key64
from repro.net.http import Cookie, HttpRequest, HttpResponse, HttpTransaction
from repro.net.url import URL
from repro.web.website import CmpEpisode, Website
from repro.web.worldgen import World

#: Visitor regions (same vocabulary as the CMP models).
REGIONS = ("EU", "US")

#: Address spaces; anti-bot CDNs only interfere with public cloud
#: ranges (Section 3.5, "Crawler Location").
ADDRESS_SPACES = ("cloud", "university", "residential")

#: Third-party hosts every ad-funded page embeds regardless of CMPs.
_COMMON_THIRD_PARTIES = (
    "metrics.webstats-collector.com",
    "cdn.sharedassets.net",
    "ads.bidexchange.net",
)

#: Compact region/address-space ids used in visit keys (cheaper to fold
#: than strings, and independent of string hashing).
_REGION_ID = {"EU": 0, "US": 1}
_SPACE_ID = {"cloud": 0, "university": 1, "residential": 2}

#: Salt for the flesh stream split (see module docstring).
_FLESH_SALT = 2

#: Per-seed visit-key prefix (the ``key64(seed, 17)`` fold state),
#: cached so each visit folds only its varying parts.
_VK_PREFIX: dict = {}

#: Quantcast analytics incident window (Section 3.5), as date ordinals.
_QCA_START = dt.date(2018, 7, 10).toordinal()
_QCA_END = dt.date(2018, 7, 11).toordinal()

_ANTIBOT_TEXT = "Checking your browser before accessing the site."
_EU_BLOCK_TEXT = "Unavailable for legal reasons."


@dataclass(frozen=True)
class VisitSettings:
    """Who is visiting, from where, and when."""

    date: dt.date
    region: str = "EU"
    address_space: str = "cloud"
    language: str = "en-US"

    def __post_init__(self) -> None:
        if self.region not in REGIONS:
            raise ValueError(f"unknown region {self.region!r}")
        if self.address_space not in ADDRESS_SPACES:
            raise ValueError(f"unknown address space {self.address_space!r}")


@dataclass(frozen=True)
class PageLoad:
    """Everything observable about one page visit."""

    seed_url: URL
    final_url: URL
    #: Status of the final document, or ``None`` when no HTTP response
    #: was received at all (DNS failure, TLS failure, reset).
    status: Optional[int]
    transactions: Tuple[HttpTransaction, ...] = ()
    cookies: Tuple[Cookie, ...] = ()
    #: The consent dialog configured for this page, if a CMP is embedded.
    dialog: Optional[DialogDescriptor] = None
    #: Whether the dialog is actually rendered for this visitor.
    dialog_shown: bool = False
    #: Visible page text (used by the GDPR phrase scan).
    page_text: str = ""
    #: The visit was answered by an anti-bot interstitial.
    blocked_by_antibot: bool = False
    #: Client-side storage entries written during the load
    #: (LocalStorage, SessionStorage, IndexedDB, WebSQL -- Section 3.2).
    storage_records: tuple = ()

    @property
    def ok(self) -> bool:
        return self.status is not None and 200 <= self.status < 300

    @property
    def contacted_hosts(self) -> Tuple[str, ...]:
        return tuple(tx.request.url.host for tx in self.transactions)

    def transactions_before(self, cutoff: float) -> Tuple[HttpTransaction, ...]:
        """Transactions that started before the crawl timeout fired."""
        return tuple(tx for tx in self.transactions if tx.started_at < cutoff)


# ----------------------------------------------------------------------
# The visit skeleton (shared by render_page and visit_compact)
# ----------------------------------------------------------------------
#: Visit outcome kinds.
_OK = 0
_SHORT_404 = 1
_DEAD_HOST = 2
_UNREACHABLE = 3
_INVALID = 4
_HTTP_ERROR = 5
_ANTIBOT = 6
_EU_BLOCKED = 7

class VisitSkeleton(NamedTuple):
    """The observable plan of one page visit (no flesh)."""

    kind: int
    #: Final document status (``None`` when no response was received).
    status: Optional[int]
    #: The site finally serving the page (``None`` for dead hosts and
    #: undecodable short links).
    site: Optional[Website]
    #: Address-bar host after all redirect hops (ignoring any cutoff).
    final_host: str
    #: ``(site, subsite_index)`` behind a shortener seed URL, if any.
    short_ref: Optional[Tuple[Website, int]]
    #: Redirect hops in order: ``(source_host, target_host, start,
    #: duration)``. At most two (shortener, alias).
    hops: Tuple[Tuple[str, str, float, float], ...]
    #: Start of the final document transaction (meaningless when
    #: ``status is None``).
    doc_start: float
    #: Duration of the final document transaction; only plan-drawn for
    #: _OK (it gates asset starts), ``None`` otherwise (flesh decides).
    doc_duration: Optional[float]
    #: Asset transactions of an _OK page: ``(host, path, start, kind)``.
    assets: Tuple[Tuple[str, str, float, str], ...]
    #: ``(episode, cmp_start)`` when the CMP is embedded for this visit.
    cmp: Optional[Tuple[CmpEpisode, float]]
    #: Subsite index of the visited path (0 = landing page).
    subsite_index: int


def visit_key(
    world_seed: int, url: URL, date_ordinal: int, region: str,
    address_space: str,
) -> int:
    """The 64-bit key all of one visit's randomness derives from.

    Uses the URL's cached :attr:`~repro.net.url.URL.h64` part, which
    folds to the same key as passing ``str(url)`` would, and resumes
    the fold from the cached ``(seed, 17)`` prefix -- both identities
    keep the key equal to ``key64(seed, 17, str(url), ...)``.
    """
    return fold64(
        visit_key_prefix(world_seed), url.h64, date_ordinal,
        _REGION_ID[region], _SPACE_ID[address_space],
    )


def _visit_skeleton(
    world: World,
    url: URL,
    date: dt.date,
    region: str,
    address_space: str,
    rng: KeyedRand,
) -> VisitSkeleton:
    """Plan one visit's observable structure.

    THE DRAW ORDER HERE IS A COMPATIBILITY CONTRACT between the row and
    columnar crawl paths: both build the skeleton through this one
    function, so any edit changes both identically -- never duplicate
    this sequence elsewhere.
    """
    now = 0.0
    host = url.host
    hops: List[Tuple[str, str, float, float]] = []
    short_ref: Optional[Tuple[Website, int]] = None

    # URL-shortener hop.
    if host == world.config.shortener_domain:
        short_ref = _decode_short_ref(world, url)
        if short_ref is None:
            return VisitSkeleton(
                _SHORT_404, 404, None, host, None, (), 0.0, None, (), None, 0
            )
        target_site, subsite_index = short_ref
        duration = 0.15 + 0.2 * rng.random()
        hops.append((host, target_site.domain, now, duration))
        now += duration
        host = target_site.domain
        site: Optional[Website] = target_site
    else:
        site = world.host_to_site(host)
        subsite_index = -1  # resolved below once the site is final

    if site is None:
        return VisitSkeleton(
            _DEAD_HOST, None, None, host, short_ref, tuple(hops),
            0.0, None, (), None, 0,
        )

    # Alias domains 301 to their canonical site.
    if site.redirects_to is not None:
        target_host = f"www.{site.redirects_to}"
        duration = 0.15 + 0.2 * rng.random()
        hops.append((host, target_host, now, duration))
        now += duration
        host = target_host
        site = world.site_by_domain(site.redirects_to)
        if site is None:
            return VisitSkeleton(
                _DEAD_HOST, None, None, host, short_ref, tuple(hops),
                0.0, None, (), None, 0,
            )

    if subsite_index < 0:
        subsite_index = _subsite_index(site, url)

    # Hard failure classes.
    reach = site.reachability
    if reach == "unreachable":
        return VisitSkeleton(
            _UNREACHABLE, None, site, host, short_ref, tuple(hops),
            0.0, None, (), None, subsite_index,
        )
    if reach == "invalid-response":
        return VisitSkeleton(
            _INVALID, None, site, host, short_ref, tuple(hops),
            0.0, None, (), None, subsite_index,
        )
    if reach == "http-error":
        return VisitSkeleton(
            _HTTP_ERROR, 503, site, host, short_ref, tuple(hops),
            now, None, (), None, subsite_index,
        )

    # Anti-bot CDNs challenge public-cloud visitors with an interstitial
    # page that embeds nothing (Section 3.5).
    if site.behind_antibot_cdn and address_space == "cloud":
        return VisitSkeleton(
            _ANTIBOT, 403, site, host, short_ref, tuple(hops),
            now, None, (), None, subsite_index,
        )

    # Geo-variable sites answering EU visitors with HTTP 451.
    if site.blocks_eu_visitors and region == "EU":
        return VisitSkeleton(
            _EU_BLOCKED, 451, site, host, short_ref, tuple(hops),
            now, None, (), None, subsite_index,
        )

    # -- the actual page -----------------------------------------------
    doc_start = now
    doc_duration = 0.3 + 0.3 * rng.random()
    now += doc_duration
    # One uniform fans out to every third-party offset via a Weyl
    # (golden-ratio) lattice: each offset is still uniform in [0.2,
    # 0.4) but costs no extra draw -- the offsets of one page are
    # correlated, which is cosmetically irrelevant and halves the draw
    # count of the hottest skeleton section.
    u = rng.random()
    assets: List[Tuple[str, str, float, str]] = [
        (
            third_party, "/collect.js",
            now + 0.2 + 0.2 * ((u + k * 0.6180339887498949) % 1.0),
            "script",
        )
        for k, third_party in enumerate(_COMMON_THIRD_PARTIES)
    ]

    # The July 2018 Quantcast analytics incident: for two days the
    # firm's *analytics* product (a different line of business) embedded
    # parts of the CMP script for all its customers, producing false
    # CMP fingerprints that the paper manually excludes (Section 3.5).
    ordinal = date.toordinal()
    if (
        _QCA_START <= ordinal <= _QCA_END
        and zlib.crc32(f"qca:{site.domain}".encode("utf-8")) % 100 < 8
    ):
        assets.append((
            "quantcast.mgr.consensu.org", "/qca-stub.js",
            now + 0.2 + 0.2 * rng.random(), "script",
        ))

    episode = site.episode_on(date)
    cmp: Optional[Tuple[CmpEpisode, float]] = None
    if (
        episode is not None
        and site.embeds_cmp_for(region, date)
        and site.subsite_embeds_cmp(subsite_index)
    ):
        model = cmp_by_key(episode.cmp_key)
        u = rng.random()
        if site.slow_loader:
            # The CMP request lands beyond the default 10s crawl cutoff
            # by construction (the site property *means* "CMP arrives
            # late", Section 3.5); extended-timeout crawls catch it.
            cmp_start = 10.5 + 9.0 * u
        else:
            cmp_start = 0.4 + 2.4 * u
        # The cmp.js offset rides on the same uniform (Weyl-shifted).
        assets.append((
            model.fingerprint_host, "/cmp.js",
            cmp_start + 0.2 + 0.2 * ((u + 0.6180339887498949) % 1.0),
            "script",
        ))
        for aux in model.auxiliary_hosts:
            # One draw decides inclusion AND offset: conditioned on
            # u < 0.7, u/0.7 is again uniform in [0, 1).
            u = rng.random()
            if u < 0.7:
                assets.append((
                    aux, "/config.json",
                    cmp_start + 0.4 + 0.2 * (u / 0.7), "xhr",
                ))
        cmp = (episode, cmp_start)

    return VisitSkeleton(
        _OK, 200, site, host, short_ref, tuple(hops), doc_start,
        doc_duration, tuple(assets), cmp, subsite_index,
    )


class CompactVisit(NamedTuple):
    """What the columnar crawl path records about one visit."""

    #: Final document status (``None``: no response received).
    status: Optional[int]
    #: Address-bar host after the redirect hops *kept* under the cutoff
    #: (matches ``follow_redirects`` over the kept transactions).
    final_host: str
    #: Request hosts of the transactions kept under the cutoff, in
    #: transaction order (the detection engine's input).
    kept_hosts: Tuple[str, ...]
    #: Some transactions started after the cutoff.
    timed_out: bool
    blocked_by_antibot: bool


#: Cutoff bands where the kept-set is *structural* (see
#: :func:`_visit_compact_fast`). Fast transactions all start before
#: 3.4s, slow-loader CMP transactions all start at 10.5s or later and
#: end by 20.1s -- so for any cutoff inside [3.5, 10.4] every fast
#: transaction is kept and every slow one is cut, and for any cutoff
#: >= 20.2 everything is kept. The default crawl profile (10s) and the
#: extended profile (120s) both hit a band; odd cutoffs (tests, custom
#: profiles) take the draw-exact skeleton path.
_SAFE_LO = 3.5
_SAFE_HI = 10.4
_KEEP_ALL = 20.2

_QCA_HOST = "quantcast.mgr.consensu.org"


def structural_band(cutoff: float) -> Optional[bool]:
    """The ``keep_all`` flag when *cutoff* falls in a structural band.

    ``False`` for the fast band (slow loaders cut), ``True`` for the
    keep-all band, ``None`` when the cutoff needs the draw-exact
    skeleton path. Callers (the platform's vectorized day batch) use
    this to decide whether :func:`visit_compact` will take the cached
    fast path for a whole batch.
    """
    if _SAFE_LO <= cutoff <= _SAFE_HI:
        return False
    if cutoff >= _KEEP_ALL:
        return True
    return None


def visit_key_prefix(world_seed: int) -> int:
    """The cached ``key64(seed, 17)`` fold prefix of :func:`visit_key`."""
    prefix = _VK_PREFIX.get(world_seed)
    if prefix is None:
        # Benign race: key64 is pure, racing workers store equal values.
        prefix = _VK_PREFIX[world_seed] = key64(world_seed, 17)  # repro-lint: disable=RACE001
    return prefix


def visit_compact(
    world: World,
    url: URL,
    date: dt.date,
    region: str,
    address_space: str,
    cutoff: float,
    key: Optional[int] = None,
) -> CompactVisit:
    """One visit as the columnar crawl path sees it.

    Equivalent to ``render_page`` + the browser's cutoff filtering +
    redirect following, but without materializing transactions, cookies
    or page text. *key* (when the caller already computed the visit
    key) avoids re-deriving it.

    For cutoffs inside a structural band the result comes from the
    cached per-``(url, region, space)`` plan (:func:`_visit_compact_fast`)
    -- bit-identical to the skeleton path, pinned by tests -- otherwise
    the full skeleton is planned and filtered draw-exactly.
    """
    if _SAFE_LO <= cutoff <= _SAFE_HI:
        return _visit_compact_fast(world, url, date, region,
                                   address_space, False, key)
    if cutoff >= _KEEP_ALL:
        return _visit_compact_fast(world, url, date, region,
                                   address_space, True, key)
    if key is None:
        key = visit_key(
            world.config.seed, url, date.toordinal(), region,
            address_space,
        )
    sk = _visit_skeleton(world, url, date, region, address_space,
                         KeyedRand(key))
    if sk.kind == _UNREACHABLE:
        # The row path records no transactions at all for unreachable
        # sites, including any redirect hops that led there.
        return CompactVisit(None, sk.final_host, (), False, False)
    hosts: List[str] = []
    total = 0
    final_host = url.host
    # Kept redirect hops move the address bar; a hop past the cutoff
    # stops the walk (hop starts are monotonic).
    walking = True
    for source_host, target_host, start, _duration in sk.hops:
        total += 1
        if walking and start < cutoff:
            hosts.append(source_host)
            final_host = target_host
        else:
            walking = False
    if sk.status is not None:
        total += 1
        doc_host = url.host if sk.kind == _SHORT_404 else sk.final_host
        if walking and sk.doc_start < cutoff:
            hosts.append(doc_host)
    for host, _path, start, _kind in sk.assets:
        total += 1
        if start < cutoff:
            hosts.append(host)
    if not hosts:
        # No transaction kept: the browser reports the un-truncated
        # final URL (crawl_url falls back to ``page.final_url``).
        final_host = sk.final_host
    return CompactVisit(
        status=sk.status,
        final_host=final_host,
        kept_hosts=tuple(hosts),
        timed_out=len(hosts) < total,
        blocked_by_antibot=sk.kind == _ANTIBOT,
    )


class _VisitPlan(NamedTuple):
    """The date-independent part of a ``(url, region, space)`` visit.

    Derived once and cached on the world; only the CMP episode, the US
    embed ramp, and the Quantcast incident window vary with the date.
    """

    #: Fully static outcome (failure classes); short-circuits the rest.
    terminal: Optional[CompactVisit]
    site: Optional[Website]
    #: Kept hosts up to and including the common third parties.
    base_hosts: Tuple[str, ...]
    #: Number of redirect hops (drives the aux draw positions).
    n_hops: int
    final_host: str
    #: The visited subsite carries the CMP embed at all.
    subsite_ok: bool
    #: ``region in site.embed_regions`` (the date-independent half of
    #: ``embeds_cmp_for``; the US ramp is checked per date).
    region_embeds: bool
    us_region: bool
    #: Site is in the 8% selected for the Quantcast analytics incident.
    qca_selected: bool


def _visit_plan(
    world: World, url: URL, region: str, address_space: str
) -> _VisitPlan:
    """Build the static plan, mirroring ``_visit_skeleton`` structure.

    This re-derives the skeleton's *keep/cut-relevant* decisions only
    (kinds, hops, hosts); timings are omitted because inside a
    structural band they cannot affect the kept-set. Parity with the
    skeleton path is pinned by tests over every site class.
    """
    def terminal(visit: CompactVisit) -> _VisitPlan:
        return _VisitPlan(visit, None, (), 0, "", False, False, False,
                          False)

    host = url.host
    hop_sources: List[str] = []
    if host == world.config.shortener_domain:
        ref = _decode_short_ref(world, url)
        if ref is None:
            return terminal(CompactVisit(404, host, (host,), False, False))
        site, subsite_index = ref
        hop_sources.append(host)
        host = site.domain
    else:
        site = world.host_to_site(host)
        subsite_index = -1
    if site is None:
        return terminal(
            CompactVisit(None, host, tuple(hop_sources), False, False)
        )
    if site.redirects_to is not None:
        hop_sources.append(host)
        host = f"www.{site.redirects_to}"
        site = world.site_by_domain(site.redirects_to)
        if site is None:
            return terminal(
                CompactVisit(None, host, tuple(hop_sources), False, False)
            )
    if subsite_index < 0:
        subsite_index = _subsite_index(site, url)

    reach = site.reachability
    if reach == "unreachable":
        # Mirrors the skeleton's early return: no transactions at all.
        return terminal(CompactVisit(None, host, (), False, False))
    if reach == "invalid-response":
        return terminal(
            CompactVisit(None, host, tuple(hop_sources), False, False)
        )
    if reach == "http-error":
        return terminal(
            CompactVisit(503, host, (*hop_sources, host), False, False)
        )
    if site.behind_antibot_cdn and address_space == "cloud":
        return terminal(
            CompactVisit(403, host, (*hop_sources, host), False, True)
        )
    if site.blocks_eu_visitors and region == "EU":
        return terminal(
            CompactVisit(451, host, (*hop_sources, host), False, False)
        )

    return _VisitPlan(
        terminal=None,
        site=site,
        base_hosts=(*hop_sources, host, *_COMMON_THIRD_PARTIES),
        n_hops=len(hop_sources),
        final_host=host,
        subsite_ok=site.subsite_embeds_cmp(subsite_index),
        region_embeds=region in site.embed_regions,
        us_region=region == "US",
        qca_selected=(
            zlib.crc32(f"qca:{site.domain}".encode("utf-8")) % 100 < 8
        ),
    )


def _visit_compact_fast(
    world: World,
    url: URL,
    date: dt.date,
    region: str,
    address_space: str,
    keep_all: bool,
    key: Optional[int],
) -> CompactVisit:
    """Structural-band :func:`visit_compact` (see the band constants).

    Inside a band the kept-set never depends on timing draws, so the
    visit reduces to the cached static plan plus the date-dependent CMP
    and Quantcast-incident pieces. Only the aux-host inclusion draws
    still consume randomness -- and those are read at their exact
    skeleton stream positions, so results stay bit-identical to the
    skeleton path.
    """
    cache = world._visit_plan_cache
    cache_key = (url, region, address_space)
    plan = cache.get(cache_key)
    if plan is None:
        plan = cache[cache_key] = _visit_plan(
            world, url, region, address_space
        )
    if plan.terminal is not None:
        return plan.terminal

    site = plan.site
    hosts = plan.base_hosts
    qca_active = (
        plan.qca_selected
        and _QCA_START <= date.toordinal() <= _QCA_END
    )
    if qca_active:
        hosts += (_QCA_HOST,)

    timed_out = False
    if site.episodes and plan.subsite_ok:
        episode = site.episode_on(date)
        if episode is not None and (
            plan.region_embeds
            or (
                plan.us_region
                and site.us_embed_since is not None
                and date >= site.us_embed_since
            )
        ):
            if site.slow_loader and not keep_all:
                # cmp.js (and any aux fetches) start past the cutoff:
                # cut, which is exactly what ``timed_out`` records. The
                # aux inclusion draws cannot change the kept-set, so
                # they are skipped entirely.
                timed_out = True
            else:
                model = cmp_by_key(episode.cmp_key)
                hosts += (model.fingerprint_host,)
                aux = model.auxiliary_hosts
                if aux:
                    if key is None:
                        key = visit_key(
                            world.config.seed, url, date.toordinal(),
                            region, address_space,
                        )
                    rng = KeyedRand(key)
                    # Stream position: one draw per hop, the document
                    # duration, the third-party offset, the incident
                    # offset when active, and the cmp_start draw all
                    # precede the aux draws in the skeleton.
                    rng.skip(plan.n_hops + 3 + (1 if qca_active else 0))
                    for aux_host in aux:
                        if rng.random() < 0.7:
                            hosts += (aux_host,)
    return CompactVisit(200, plan.final_host, hosts, timed_out, False)


def render_page(
    world: World, url: URL, settings: VisitSettings
) -> PageLoad:
    """Render one visit of *url* as seen by the given visitor.

    Deterministic for a given (world seed, url, settings, date).
    """
    key = visit_key(
        world.config.seed, url, settings.date.toordinal(),
        settings.region, settings.address_space,
    )
    rng = KeyedRand(key)
    sk = _visit_skeleton(
        world, url, settings.date, settings.region, settings.address_space,
        rng,
    )
    flesh = rng.split(_FLESH_SALT)

    # Rebuild the address-bar URL chain from the hop plan.
    txs: List[HttpTransaction] = []
    current_url = url
    for _source_host, target_host, start, duration in sk.hops:
        if sk.short_ref is not None and not txs:
            target_site, index = sk.short_ref
            target_url = URL(
                scheme="https",
                host=target_site.domain,
                path=target_site.subsite_path(index),
            )
        else:
            target_url = current_url.with_host(target_host)
        txs.append(
            _redirect_tx(current_url, str(target_url), start, duration)
        )
        current_url = target_url

    if sk.kind == _SHORT_404:
        doc = _doc_tx(url, 404, 0.0, flesh)
        return PageLoad(
            seed_url=url, final_url=url, status=404, transactions=(doc,)
        )
    if sk.kind == _DEAD_HOST:
        # DNS/TLS failure: for a direct dead host nothing was recorded;
        # behind a shortener the hop transaction was.
        return PageLoad(
            seed_url=url, final_url=current_url, status=None,
            transactions=tuple(txs),
        )
    if sk.kind == _UNREACHABLE:
        return PageLoad(seed_url=url, final_url=current_url, status=None)
    if sk.kind == _INVALID:
        return PageLoad(
            seed_url=url, final_url=current_url, status=None,
            transactions=tuple(txs),
        )
    if sk.kind == _HTTP_ERROR:
        txs.append(_doc_tx(current_url, 503, sk.doc_start, flesh))
        return PageLoad(
            seed_url=url, final_url=current_url, status=503,
            transactions=tuple(txs),
        )
    if sk.kind == _ANTIBOT:
        txs.append(_doc_tx(current_url, 403, sk.doc_start, flesh))
        return PageLoad(
            seed_url=url,
            final_url=current_url,
            status=403,
            transactions=tuple(txs),
            page_text=_ANTIBOT_TEXT,
            blocked_by_antibot=True,
        )
    if sk.kind == _EU_BLOCKED:
        txs.append(_doc_tx(current_url, 451, sk.doc_start, flesh))
        return PageLoad(
            seed_url=url, final_url=current_url, status=451,
            transactions=tuple(txs),
            page_text=_EU_BLOCK_TEXT,
        )

    # -- the actual page -----------------------------------------------
    site = sk.site
    assert site is not None
    txs.append(
        _doc_tx(current_url, 200, sk.doc_start, flesh,
                duration=sk.doc_duration)
    )
    cookies = [
        Cookie(
            name="session",
            value=f"s{flesh.randrange(1 << 30):x}",
            domain=site.domain,
        )
    ]
    for host, path, start, kind in sk.assets:
        txs.append(_asset_tx(host, path, start, flesh, kind))

    dialog: Optional[DialogDescriptor] = None
    dialog_shown = False
    page_text = f"{site.domain} front matter. Latest stories and updates."

    if sk.cmp is not None:
        episode, _cmp_start = sk.cmp
        model = cmp_by_key(episode.cmp_key)
        cookies.append(
            Cookie(
                name="cmp_present",
                value=model.key,
                domain=site.domain,
                max_age=86400 * 365,
            )
        )
        dialog = episode.dialog
        dialog_shown = dialog.shown_to(settings.region)
        if dialog_shown:
            phrases = (GDPR_PHRASES[0], GDPR_PHRASES[5])
            page_text += " " + " ".join(phrases)
            page_text += f" {dialog.accept_wording}"

    from repro.crawler.clientstorage import synthesize_storage_records

    storage = synthesize_storage_records(
        site.domain,
        sk.cmp[0].cmp_key if sk.cmp is not None else None,
        flesh,
        cmp_script_at=sk.cmp[1] if sk.cmp is not None else 2.0,
    )
    return PageLoad(
        seed_url=url,
        final_url=current_url,
        status=200,
        transactions=tuple(txs),
        cookies=tuple(cookies),
        dialog=dialog,
        dialog_shown=dialog_shown,
        page_text=page_text,
        storage_records=storage,
    )


# ----------------------------------------------------------------------
# Short-link encoding (used by the social-share seed stream)
# ----------------------------------------------------------------------
def make_short_link(world: World, site: Website, subsite_index: int) -> URL:
    """Create a shortener URL that redirects to *site*'s subsite."""
    token = f"{site.rank:x}-{subsite_index}"
    return URL.parse(f"https://{world.config.shortener_domain}/{token}")


def _decode_short_ref(
    world: World, url: URL
) -> Optional[Tuple[Website, int]]:
    """The ``(site, subsite_index)`` a short link points at, if valid."""
    token = url.path.lstrip("/")
    rank_s, _, idx_s = token.partition("-")
    try:
        rank = int(rank_s, 16)
        idx = int(idx_s)
    except ValueError:
        return None
    if not 1 <= rank <= world.config.n_domains:
        return None
    return world.site(rank), idx


def _decode_short_link(world: World, url: URL) -> Optional[URL]:
    ref = _decode_short_ref(world, url)
    if ref is None:
        return None
    site, idx = ref
    return URL.parse(f"https://{site.domain}{site.subsite_path(idx)}")


def _subsite_index(site: Website, url: URL) -> int:
    path = url.path
    if path in ("", "/"):
        return 0
    if path == "/privacy-policy":
        return site.privacy_policy_index
    tail = path.rsplit("/", 1)[-1]
    if tail.isdigit():
        return int(tail)
    return 1


# ----------------------------------------------------------------------
# Transaction builders (flesh: sizes, durations, IPs)
# ----------------------------------------------------------------------
def _doc_tx(
    url: URL, status: int, at: float, flesh: KeyedRand,
    duration: Optional[float] = None,
) -> HttpTransaction:
    size = max(800, int(flesh.gauss(42_000, 14_000)))
    return HttpTransaction(
        request=HttpRequest(url=url, resource_type="document"),
        response=HttpResponse(
            status=status,
            body_size=size // 4,
            body_size_uncompressed=size,
            remote_ip=(
                f"198.51.{flesh.randrange(256)}.{flesh.randrange(256)}"
            ),
            tls_subject=url.host if url.scheme == "https" else "",
        ),
        started_at=at,
        duration=(
            duration
            if duration is not None
            else max(0.05, flesh.gauss(0.45, 0.15))
        ),
    )


def _redirect_tx(
    url: URL, location: str, at: float, duration: float
) -> HttpTransaction:
    return HttpTransaction(
        request=HttpRequest(url=url, resource_type="document"),
        response=HttpResponse(
            status=301, headers={"Location": location}, body_size=0
        ),
        started_at=at,
        duration=duration,
    )


def _asset_tx(
    host: str, path: str, at: float, flesh: KeyedRand, kind: str
) -> HttpTransaction:
    size = max(200, int(flesh.gauss(18_000, 9_000)))
    return HttpTransaction(
        request=HttpRequest(
            url=URL.parse(f"https://{host}{path}"), resource_type=kind
        ),
        response=HttpResponse(
            status=200, body_size=size // 3, body_size_uncompressed=size
        ),
        started_at=at,
        duration=max(0.02, flesh.gauss(0.2, 0.08)),
    )
