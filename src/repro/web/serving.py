"""Rendering page visits of the synthetic web.

:func:`render_page` is the "server plus page JavaScript" of the synthetic
world: given a URL, a visit date and visitor properties (region, address
space, browser language) it produces everything a real browser would
observe -- the HTTP transactions with timings, cookies, the consent-dialog
state and the visible page text.

The browser simulator in :mod:`repro.crawler.browser` layers crawl
behaviour (timeouts, redirect following, storage capture) on top.
"""

from __future__ import annotations

import datetime as dt
import random
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cmps.base import DialogDescriptor, cmp_by_key
from repro.datasets import GDPR_PHRASES
from repro.net.http import Cookie, HttpRequest, HttpResponse, HttpTransaction
from repro.net.url import URL
from repro.web.website import Website
from repro.web.worldgen import World

#: Visitor regions (same vocabulary as the CMP models).
REGIONS = ("EU", "US")

#: Address spaces; anti-bot CDNs only interfere with public cloud
#: ranges (Section 3.5, "Crawler Location").
ADDRESS_SPACES = ("cloud", "university", "residential")

#: Third-party hosts every ad-funded page embeds regardless of CMPs.
_COMMON_THIRD_PARTIES = (
    "metrics.webstats-collector.com",
    "cdn.sharedassets.net",
    "ads.bidexchange.net",
)


@dataclass(frozen=True)
class VisitSettings:
    """Who is visiting, from where, and when."""

    date: dt.date
    region: str = "EU"
    address_space: str = "cloud"
    language: str = "en-US"

    def __post_init__(self) -> None:
        if self.region not in REGIONS:
            raise ValueError(f"unknown region {self.region!r}")
        if self.address_space not in ADDRESS_SPACES:
            raise ValueError(f"unknown address space {self.address_space!r}")


@dataclass(frozen=True)
class PageLoad:
    """Everything observable about one page visit."""

    seed_url: URL
    final_url: URL
    #: Status of the final document, or ``None`` when no HTTP response
    #: was received at all (DNS failure, TLS failure, reset).
    status: Optional[int]
    transactions: Tuple[HttpTransaction, ...] = ()
    cookies: Tuple[Cookie, ...] = ()
    #: The consent dialog configured for this page, if a CMP is embedded.
    dialog: Optional[DialogDescriptor] = None
    #: Whether the dialog is actually rendered for this visitor.
    dialog_shown: bool = False
    #: Visible page text (used by the GDPR phrase scan).
    page_text: str = ""
    #: The visit was answered by an anti-bot interstitial.
    blocked_by_antibot: bool = False
    #: Client-side storage entries written during the load
    #: (LocalStorage, SessionStorage, IndexedDB, WebSQL -- Section 3.2).
    storage_records: tuple = ()

    @property
    def ok(self) -> bool:
        return self.status is not None and 200 <= self.status < 300

    @property
    def contacted_hosts(self) -> Tuple[str, ...]:
        return tuple(tx.request.url.host for tx in self.transactions)

    def transactions_before(self, cutoff: float) -> Tuple[HttpTransaction, ...]:
        """Transactions that started before the crawl timeout fired."""
        return tuple(tx for tx in self.transactions if tx.started_at < cutoff)


def render_page(
    world: World, url: URL, settings: VisitSettings
) -> PageLoad:
    """Render one visit of *url* as seen by the given visitor.

    Deterministic for a given (world seed, url, settings, date).
    """
    rng = random.Random(
        f"{world.config.seed}:visit:{url}:{settings.date}:{settings.region}:"
        f"{settings.address_space}"
    )
    txs: List[HttpTransaction] = []
    now = 0.0
    current_url = url

    # URL-shortener hop.
    if url.host == world.config.shortener_domain:
        target = _decode_short_link(world, url)
        if target is None:
            doc = _doc_tx(current_url, 404, now, rng)
            return PageLoad(
                seed_url=url, final_url=url, status=404, transactions=(doc,)
            )
        txs.append(_redirect_tx(current_url, str(target), now, rng))
        now = txs[-1].finished_at
        current_url = target

    site = world.host_to_site(current_url.host)
    if site is None:
        return PageLoad(seed_url=url, final_url=current_url, status=None)

    # Alias domains 301 to their canonical site.
    if site.redirects_to is not None:
        target_url = current_url.with_host(f"www.{site.redirects_to}")
        txs.append(_redirect_tx(current_url, str(target_url), now, rng))
        now = txs[-1].finished_at
        current_url = target_url
        target_site = world.site_by_domain(site.redirects_to)
        if target_site is None:
            return PageLoad(
                seed_url=url, final_url=current_url, status=None,
                transactions=tuple(txs),
            )
        site = target_site

    # Hard failure classes.
    if site.reachability == "unreachable":
        return PageLoad(seed_url=url, final_url=current_url, status=None)
    if site.reachability == "invalid-response":
        return PageLoad(
            seed_url=url, final_url=current_url, status=None,
            transactions=tuple(txs),
        )
    if site.reachability == "http-error":
        txs.append(_doc_tx(current_url, 503, now, rng))
        return PageLoad(
            seed_url=url, final_url=current_url, status=503,
            transactions=tuple(txs),
        )

    # Anti-bot CDNs challenge public-cloud visitors with an interstitial
    # page that embeds nothing (Section 3.5).
    if site.behind_antibot_cdn and settings.address_space == "cloud":
        txs.append(_doc_tx(current_url, 403, now, rng))
        return PageLoad(
            seed_url=url,
            final_url=current_url,
            status=403,
            transactions=tuple(txs),
            page_text="Checking your browser before accessing the site.",
            blocked_by_antibot=True,
        )

    # Geo-variable sites answering EU visitors with HTTP 451.
    if site.blocks_eu_visitors and settings.region == "EU":
        txs.append(_doc_tx(current_url, 451, now, rng))
        return PageLoad(
            seed_url=url, final_url=current_url, status=451,
            transactions=tuple(txs),
            page_text="Unavailable for legal reasons.",
        )

    # -- the actual page -----------------------------------------------
    txs.append(_doc_tx(current_url, 200, now, rng))
    now = txs[-1].finished_at
    cookies = [
        Cookie(
            name="session",
            value=f"s{rng.randrange(1 << 30):x}",
            domain=site.domain,
        )
    ]
    for host in _COMMON_THIRD_PARTIES:
        txs.append(_asset_tx(host, "/collect.js", now, rng, "script"))

    # The July 2018 Quantcast analytics incident: for two days the
    # firm's *analytics* product (a different line of business) embedded
    # parts of the CMP script for all its customers, producing false
    # CMP fingerprints that the paper manually excludes (Section 3.5).
    if (
        dt.date(2018, 7, 10) <= settings.date <= dt.date(2018, 7, 11)
        and zlib.crc32(f"qca:{site.domain}".encode("utf-8")) % 100 < 8
    ):
        txs.append(
            _asset_tx(
                "quantcast.mgr.consensu.org", "/qca-stub.js", now, rng, "script"
            )
        )

    subsite_index = _subsite_index(site, current_url)
    episode = site.episode_on(settings.date)
    dialog: Optional[DialogDescriptor] = None
    dialog_shown = False
    page_text = f"{site.domain} front matter. Latest stories and updates."

    cmp_embedded = (
        episode is not None
        and site.embeds_cmp_for(settings.region, settings.date)
        and site.subsite_embeds_cmp(subsite_index)
    )
    if cmp_embedded:
        assert episode is not None
        model = cmp_by_key(episode.cmp_key)
        cmp_start = (
            rng.gauss(17.0, 3.0) if site.slow_loader else rng.gauss(1.6, 0.4)
        )
        cmp_start = max(0.3, cmp_start)
        txs.append(
            _asset_tx(
                model.fingerprint_host, "/cmp.js", cmp_start, rng, "script"
            )
        )
        for aux in model.auxiliary_hosts:
            if rng.random() < 0.7:
                txs.append(
                    _asset_tx(aux, "/config.json", cmp_start + 0.2, rng, "xhr")
                )
        cookies.append(
            Cookie(
                name="cmp_present",
                value=model.key,
                domain=site.domain,
                max_age=86400 * 365,
            )
        )
        dialog = episode.dialog
        dialog_shown = dialog.shown_to(settings.region)
        if dialog_shown:
            phrases = (GDPR_PHRASES[0], GDPR_PHRASES[5])
            page_text += " " + " ".join(phrases)
            page_text += f" {dialog.accept_wording}"

    from repro.crawler.clientstorage import synthesize_storage_records

    storage = synthesize_storage_records(
        site.domain,
        episode.cmp_key if cmp_embedded and episode is not None else None,
        rng,
        cmp_script_at=cmp_start if cmp_embedded else 2.0,
    )
    return PageLoad(
        seed_url=url,
        final_url=current_url,
        status=200,
        transactions=tuple(txs),
        cookies=tuple(cookies),
        dialog=dialog,
        dialog_shown=dialog_shown,
        page_text=page_text,
        storage_records=storage,
    )


# ----------------------------------------------------------------------
# Short-link encoding (used by the social-share seed stream)
# ----------------------------------------------------------------------
def make_short_link(world: World, site: Website, subsite_index: int) -> URL:
    """Create a shortener URL that redirects to *site*'s subsite."""
    token = f"{site.rank:x}-{subsite_index}"
    return URL.parse(f"https://{world.config.shortener_domain}/{token}")


def _decode_short_link(world: World, url: URL) -> Optional[URL]:
    token = url.path.lstrip("/")
    rank_s, _, idx_s = token.partition("-")
    try:
        rank = int(rank_s, 16)
        idx = int(idx_s)
    except ValueError:
        return None
    if not 1 <= rank <= world.config.n_domains:
        return None
    site = world.site(rank)
    return URL.parse(f"https://{site.domain}{site.subsite_path(idx)}")


def _subsite_index(site: Website, url: URL) -> int:
    if url.path in ("", "/"):
        return 0
    if url.path == "/privacy-policy":
        return site.privacy_policy_index
    tail = url.path.rsplit("/", 1)[-1]
    if tail.isdigit():
        return int(tail)
    return 1


# ----------------------------------------------------------------------
# Transaction builders
# ----------------------------------------------------------------------
def _doc_tx(
    url: URL, status: int, at: float, rng: random.Random
) -> HttpTransaction:
    size = max(800, int(rng.gauss(42_000, 14_000)))
    return HttpTransaction(
        request=HttpRequest(url=url, resource_type="document"),
        response=HttpResponse(
            status=status,
            body_size=size // 4,
            body_size_uncompressed=size,
            remote_ip=f"198.51.{rng.randrange(256)}.{rng.randrange(256)}",
            tls_subject=url.host if url.scheme == "https" else "",
        ),
        started_at=at,
        duration=max(0.05, rng.gauss(0.45, 0.15)),
    )


def _redirect_tx(
    url: URL, location: str, at: float, rng: random.Random
) -> HttpTransaction:
    return HttpTransaction(
        request=HttpRequest(url=url, resource_type="document"),
        response=HttpResponse(
            status=301, headers={"Location": location}, body_size=0
        ),
        started_at=at,
        duration=max(0.03, rng.gauss(0.25, 0.08)),
    )


def _asset_tx(
    host: str, path: str, at: float, rng: random.Random, kind: str
) -> HttpTransaction:
    size = max(200, int(rng.gauss(18_000, 9_000)))
    return HttpTransaction(
        request=HttpRequest(
            url=URL.parse(f"https://{host}{path}"), resource_type=kind
        ),
        response=HttpResponse(
            status=200, body_size=size // 3, body_size_uncompressed=size
        ),
        started_at=max(0.0, at + rng.gauss(0.3, 0.1)),
        duration=max(0.02, rng.gauss(0.2, 0.08)),
    )
