"""The synthetic web.

The paper's substrate is the live 2018--2020 web; offline we substitute a
deterministic synthetic world that produces the same *observable*
artefacts (DESIGN.md, Section 2):

* :mod:`repro.web.website` -- the per-site model: popularity rank,
  CMP-adoption episodes, dialog configuration, geo-gating, anti-bot CDN,
  load speed, subsites and redirect aliases;
* :mod:`repro.web.adoption` -- the calibrated CMP-adoption model
  (who adopts, when, which CMP, who switches);
* :mod:`repro.web.worldgen` -- lazy, rank-addressable world generation;
* :mod:`repro.web.serving` -- renders a page visit into the HTTP
  transactions, cookies and dialog state a browser would observe.
"""

from repro.web.adoption import AdoptionModel
from repro.web.serving import PageLoad, render_page
from repro.web.website import CmpEpisode, Website
from repro.web.worldgen import World, WorldConfig

__all__ = [
    "Website",
    "CmpEpisode",
    "AdoptionModel",
    "World",
    "WorldConfig",
    "PageLoad",
    "render_page",
]
