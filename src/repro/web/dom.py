"""A minimal DOM tree model with CSS-selector matching.

The toplist crawls store "the browser's DOM tree including the computed
CSS styles" (Section 3.2), and the paper assembles secondary CMP
fingerprints from CSS selectors and extracted text -- which it found
"much more unreliable" than network patterns and used only for
validation (Section 3.5). This module makes that comparison concrete:

* :class:`DomNode` -- a DOM tree with a selector engine covering the
  subset used by the fingerprints (``#id``, ``.class``, ``tag``,
  ``tag.class`` and descendant combinators);
* :func:`build_page_dom` -- renders a :class:`~repro.web.serving.PageLoad`
  into a DOM tree, embedding the CMP's well-known markup *only* when the
  publisher runs the stock dialog -- custom publisher UIs (the ~8%
  API-only sites) produce unrecognizable markup, which is exactly why
  DOM-based detection under-counts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.cmps.base import DialogDescriptor

_SIMPLE_SELECTOR_RE = re.compile(
    r"^(?P<tag>[a-zA-Z][a-zA-Z0-9-]*)?"
    r"(?P<id>#[a-zA-Z_][\w-]*)?"
    r"(?P<classes>(?:\.[a-zA-Z_][\w-]*)+)?$"
)


class SelectorError(ValueError):
    """Raised for selector syntax this engine does not support."""


@dataclass
class DomNode:
    """One element of the DOM tree."""

    tag: str
    id: str = ""
    classes: Tuple[str, ...] = ()
    text: str = ""
    children: List["DomNode"] = field(default_factory=list)

    # ------------------------------------------------------------------
    def append(self, child: "DomNode") -> "DomNode":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["DomNode"]:
        """Depth-first traversal including self."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def all_text(self) -> str:
        """Concatenated visible text of the subtree."""
        parts = [self.text] if self.text else []
        parts += [child.all_text for child in self.children]
        return " ".join(p for p in parts if p)

    # ------------------------------------------------------------------
    # Selector engine
    # ------------------------------------------------------------------
    def matches_simple(self, selector: str) -> bool:
        """Match one compound selector (no combinators) on this node."""
        m = _SIMPLE_SELECTOR_RE.match(selector.strip())
        if not m or not selector.strip():
            raise SelectorError(f"unsupported selector {selector!r}")
        tag, id_part, class_part = (
            m.group("tag"),
            m.group("id"),
            m.group("classes"),
        )
        if tag and self.tag.lower() != tag.lower():
            return False
        if id_part and self.id != id_part[1:]:
            return False
        if class_part:
            wanted = set(class_part[1:].split("."))
            if not wanted <= set(self.classes):
                return False
        return True

    def select(self, selector: str) -> List["DomNode"]:
        """All descendants (including self) matching *selector*.

        Supports descendant combinators: ``"#dialog .qc-cmp-button"``
        matches any ``.qc-cmp-button`` inside a ``#dialog`` subtree.
        """
        parts = selector.split()
        if not parts:
            raise SelectorError("empty selector")
        candidates = [n for n in self.walk() if n.matches_simple(parts[0])]
        for part in parts[1:]:
            next_candidates: List[DomNode] = []
            seen = set()
            for node in candidates:
                for descendant in node.walk():
                    if descendant is node:
                        continue
                    if descendant.matches_simple(part) and id(descendant) not in seen:
                        seen.add(id(descendant))
                        next_candidates.append(descendant)
            candidates = next_candidates
        return candidates

    def select_one(self, selector: str) -> Optional["DomNode"]:
        found = self.select(selector)
        return found[0] if found else None


# ----------------------------------------------------------------------
# Page rendering
# ----------------------------------------------------------------------
#: Stock dialog markup per CMP: (container tag, id, classes).
_DIALOG_MARKUP = {
    "onetrust": ("div", "onetrust-banner-sdk", ("otFlat",)),
    "quantcast": ("div", "qc-cmp-ui-container", ("qc-cmp-ui",)),
    "trustarc": ("div", "truste-consent-track", ("truste-consent",)),
    "cookiebot": ("div", "CybotCookiebotDialog", ("CybotEdge",)),
    "liveramp": ("div", "", ("lr-consent-container",)),
    "crownpeak": ("div", "_evidon_banner", ("evidon-banner",)),
}

_POWERED_BY = {
    "onetrust": "Powered by OneTrust",
    "quantcast": "Powered by Quantcast",
    "trustarc": "TrustArc",
    "cookiebot": "Powered by Cookiebot",
    "liveramp": "Powered by LiveRamp",
    "crownpeak": "Powered by Evidon",
}


def build_dialog_dom(dialog: DialogDescriptor) -> Optional[DomNode]:
    """The dialog's DOM subtree, or ``None`` when nothing is rendered.

    Custom publisher UIs (``custom_api_only``) return a generic,
    unrecognizable container -- no stock ids, classes, or vendor
    attribution -- so selector-based fingerprints miss them.
    """
    if dialog.kind == "none":
        return None
    if dialog.custom_api_only:
        node = DomNode(tag="div", classes=("consent-widget",))
        node.append(DomNode(tag="p", text="Manage your privacy"))
        return node
    tag, node_id, classes = _DIALOG_MARKUP[dialog.cmp_key]
    container = DomNode(tag=tag, id=node_id, classes=classes)
    body = container.append(
        DomNode(tag="div", classes=("consent-text",),
                text="We value your privacy")
    )
    for button in dialog.buttons_on_page(1):
        container.append(
            DomNode(
                tag="button",
                classes=(f"{dialog.cmp_key}-btn", button.action),
                text=button.label,
            )
        )
    container.append(
        DomNode(tag="span", classes=("attribution",),
                text=_POWERED_BY[dialog.cmp_key])
    )
    return container


def build_page_dom(page) -> DomNode:
    """Render a :class:`~repro.web.serving.PageLoad` into a DOM tree."""
    html = DomNode(tag="html")
    body = html.append(DomNode(tag="body"))
    body.append(DomNode(tag="header", text=page.final_url.host))
    main = body.append(DomNode(tag="main", text=page.page_text))
    if page.dialog is not None and page.dialog_shown:
        dialog_node = build_dialog_dom(page.dialog)
        if dialog_node is not None:
            body.append(dialog_node)
    footer = body.append(DomNode(tag="footer"))
    footer.append(DomNode(tag="a", classes=("footer-link",), text="Imprint"))
    if page.dialog is not None and page.dialog.kind == "footer-link":
        for button in page.dialog.buttons:
            footer.append(
                DomNode(
                    tag="a", classes=("footer-link", "privacy"),
                    text=button.label,
                )
            )
    return html
