"""Deterministic bounded LRU mapping for the world's memo caches.

Every :class:`~repro.web.worldgen.World` memo (generated sites, host
resolutions, visit plans, shared URLs) is a pure function of the world
seed and the key, so evicting an entry can never change results -- a
miss just regenerates the same bits. That makes an LRU bound *bit
invisible*: the only observable difference is time and memory. This
module provides the one primitive all of those caches share, with
hit/miss/eviction counters the observability layer snapshots into the
``world_cache_*`` gauges at the end of a run.

Eviction order is pure access order (no wall clock, no randomness):
``dict``/``OrderedDict`` iteration order is an explicit language
guarantee, so a bounded cache evolves identically across runs and
platforms. Under the thread backend racing workers may interleave
updates; each mutating step is defensive (a concurrently evicted key
never raises), and because values are pure regenerable memos the race
is benign -- results stay byte-identical, only counters may undercount.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterator, Optional

__all__ = ["BoundedLRU", "MISSING"]

#: Sentinel distinguishing "key absent" from a cached ``None`` value
#: (the host cache memoizes negative lookups as ``None``).
MISSING = object()


class BoundedLRU:
    """Access-ordered mapping with a deterministic size bound.

    ``maxsize=None`` means unbounded -- byte-for-byte the behavior of
    the plain ``dict`` it replaces, minus nothing. A bounded instance
    evicts the least-recently-used entry on overflow and reports the
    eviction through :attr:`evictions` and the optional ``on_evict``
    callback (used to keep sibling memos, e.g. domain->rank, from
    pinning evicted values).
    """

    __slots__ = ("maxsize", "on_evict", "hits", "misses", "evictions", "_data")

    def __init__(
        self,
        maxsize: Optional[int] = None,
        on_evict: Optional[Callable[[Any, Any], None]] = None,
    ) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be None or >= 1")
        self.maxsize = maxsize
        self.on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Any, Any]" = OrderedDict()

    # ------------------------------------------------------------------
    # Mapping interface (drop-in for the plain dicts it replaces)
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self.hits += 1
        self._touch(key)
        return value

    def __getitem__(self, key: Any) -> Any:
        value = self._data[key]
        self.hits += 1
        self._touch(key)
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._touch(key)
        maxsize = self.maxsize
        if maxsize is None:
            return
        while len(self._data) > maxsize:
            try:
                evicted_key, evicted_value = self._data.popitem(last=False)
            except KeyError:  # racing thread emptied the cache
                break
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted_value)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __delitem__(self, key: Any) -> None:
        del self._data[key]

    def pop(self, key: Any, default: Any = MISSING) -> Any:
        if default is MISSING:
            return self._data.pop(key)
        return self._data.pop(key, default)

    def setdefault(self, key: Any, value: Any) -> Any:
        existing = self.get(key, MISSING)
        if existing is not MISSING:
            return existing
        self[key] = value
        return value

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()

    def values(self):
        return self._data.values()

    def items(self):
        return self._data.items()

    # ------------------------------------------------------------------
    def _touch(self, key: Any) -> None:
        if self.maxsize is None:
            # Unbounded caches skip recency bookkeeping entirely; the
            # OrderedDict degenerates to insertion order, like the
            # plain dicts these replaced.
            return
        try:
            self._data.move_to_end(key)
        except KeyError:  # racing thread evicted it between read and touch
            pass

    def resize(self, maxsize: Optional[int]) -> None:
        """Change the bound, trimming oldest entries if now over it."""
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be None or >= 1")
        self.maxsize = maxsize
        if maxsize is None:
            return
        while len(self._data) > maxsize:
            try:
                evicted_key, evicted_value = self._data.popitem(last=False)
            except KeyError:
                break
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted_value)
