"""The calibrated CMP-adoption model.

This module encodes *who* adopts a CMP, *when*, *which* CMP they pick,
and how they later switch or churn. The parameters are calibrated so the
synthetic world reproduces the shapes of the paper's results:

* adoption density peaks among moderately popular sites (ranks 50--10k,
  Figure 5), with cumulative shares of ~4% in the top 100, ~13% in the
  top 1k, ~9% in the top 10k and ~1.5% in the top 1M;
* the Tranco-10k CMP count roughly doubles from June 2018 to June 2019
  and again to June 2020, with spikes when the GDPR and the CCPA come
  into effect (Figure 6);
* Quantcast dominates early and in the very top ranks; OneTrust overtakes
  overall by offering a CCPA-ready product (Figures A.4--A.6);
* Cookiebot is a "gateway CMP" that loses an order of magnitude more
  sites than it gains (Figure 4); Crownpeak's count collapses between
  January and May 2020 (Tables 1 and A.3).

All sampling is driven by a caller-provided :class:`random.Random`, so a
site's history is reproducible from its per-site RNG.
"""

from __future__ import annotations

import bisect
import datetime as dt
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cmps.base import cmp_by_key
from repro.datasets import STUDY_END, STUDY_START

# ----------------------------------------------------------------------
# Final-prevalence curve (Figure 5 calibration)
# ----------------------------------------------------------------------
#: Control points (log10 rank, probability that a site of that rank uses
#: some CMP in May 2020); linearly interpolated in log-rank space.
_PREVALENCE_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.000),
    (1.7, 0.022),   # rank ~50: the largest sites roll their own
    (2.0, 0.148),   # rank 100
    (3.0, 0.182),   # rank 1k: the adoption peak
    (3.7, 0.097),   # rank 5k
    (4.0, 0.068),   # rank 10k
    (5.0, 0.025),   # rank 100k
    (6.0, 0.009),   # rank 1M: the long tail never vanishes
)

#: Sites that ever adopt, relative to the May-2020 stock (some churn out
#: before May 2020, some adopt after).
_EVER_OVER_MAY2020 = 1.12


def p_cmp_may2020(rank: int) -> float:
    """Probability that a site of *rank* uses a CMP in May 2020."""
    if rank < 1:
        raise ValueError("ranks are 1-based")
    x = math.log10(rank)
    points = _PREVALENCE_POINTS
    if x <= points[0][0]:
        return points[0][1]
    if x >= points[-1][0]:
        return points[-1][1]
    idx = bisect.bisect_right([p[0] for p in points], x)
    (x0, y0), (x1, y1) = points[idx - 1], points[idx]
    return y0 + (y1 - y0) * (x - x0) / (x1 - x0)


def p_ever_adopter(rank: int) -> float:
    """Probability that a site of *rank* ever adopts a CMP."""
    return min(1.0, p_cmp_may2020(rank) * _EVER_OVER_MAY2020)


# ----------------------------------------------------------------------
# Which CMP: rank-band market mixes (first adoption)
# ----------------------------------------------------------------------
#: (max rank of band, {cmp: weight}) -- first-CMP choice by band.
#: Quantcast leads the very top and the long tail; OneTrust leads the
#: 500--50k "mid-market" (Section 4.1).
_BAND_MIXES: Tuple[Tuple[int, Dict[str, float]], ...] = (
    (
        100,
        {
            "quantcast": 0.55,
            "onetrust": 0.18,
            "trustarc": 0.12,
            "cookiebot": 0.06,
            "liveramp": 0.05,
            "crownpeak": 0.04,
        },
    ),
    (
        500,
        {
            "quantcast": 0.33,
            "onetrust": 0.33,
            "trustarc": 0.17,
            "cookiebot": 0.11,
            "liveramp": 0.03,
            "crownpeak": 0.03,
        },
    ),
    (
        50_000,
        {
            "onetrust": 0.475,
            "quantcast": 0.225,
            "trustarc": 0.140,
            "cookiebot": 0.105,
            "liveramp": 0.020,
            "crownpeak": 0.035,
        },
    ),
    (
        10_000_000,
        {
            "quantcast": 0.40,
            "onetrust": 0.29,
            "cookiebot": 0.17,
            "trustarc": 0.09,
            "liveramp": 0.02,
            "crownpeak": 0.03,
        },
    ),
)


def first_cmp_weights(rank: int) -> Dict[str, float]:
    """First-CMP choice weights for a site of *rank*."""
    for max_rank, mix in _BAND_MIXES:
        if rank <= max_rank:
            return mix
    return _BAND_MIXES[-1][1]


# ----------------------------------------------------------------------
# When: per-CMP adoption-date distributions (Figure 6 calibration)
# ----------------------------------------------------------------------
#: Per CMP: piecewise-constant inflow windows as (start, end, weight).
#: Weights are relative within a CMP. Windows before the study start
#: model the pre-GDPR installed base (<1% of the Tranco 10k in
#: February 2018).
_INFLOW_WINDOWS: Dict[str, Tuple[Tuple[dt.date, dt.date, float], ...]] = {
    "quantcast": (
        (dt.date(2018, 4, 10), dt.date(2018, 5, 25), 0.18),
        (dt.date(2018, 5, 25), dt.date(2018, 8, 15), 0.34),  # GDPR spike
        (dt.date(2018, 8, 15), dt.date(2019, 6, 1), 0.26),
        (dt.date(2019, 6, 1), dt.date(2020, 1, 1), 0.12),
        (dt.date(2020, 1, 1), dt.date(2020, 9, 30), 0.10),  # CCPA: no effect
    ),
    "onetrust": (
        (dt.date(2017, 6, 1), dt.date(2018, 3, 1), 0.04),
        (dt.date(2018, 3, 1), dt.date(2018, 5, 25), 0.06),
        (dt.date(2018, 5, 25), dt.date(2018, 9, 1), 0.15),  # GDPR spike
        (dt.date(2018, 9, 1), dt.date(2019, 9, 1), 0.24),
        (dt.date(2019, 9, 1), dt.date(2019, 12, 31), 0.16),  # CCPA prep
        (dt.date(2020, 1, 1), dt.date(2020, 2, 15), 0.14),  # CCPA spike
        (dt.date(2020, 2, 15), dt.date(2020, 9, 30), 0.21),
    ),
    "trustarc": (
        (dt.date(2017, 6, 1), dt.date(2018, 3, 1), 0.08),
        (dt.date(2018, 3, 1), dt.date(2018, 9, 1), 0.22),
        (dt.date(2018, 9, 1), dt.date(2019, 9, 1), 0.38),
        (dt.date(2019, 9, 1), dt.date(2020, 1, 15), 0.28),  # CCPA
        (dt.date(2020, 1, 15), dt.date(2020, 9, 30), 0.04),
    ),
    "cookiebot": (
        (dt.date(2017, 6, 1), dt.date(2018, 3, 1), 0.10),
        (dt.date(2018, 3, 1), dt.date(2018, 8, 1), 0.35),  # GDPR spike
        (dt.date(2018, 8, 1), dt.date(2019, 6, 1), 0.30),
        (dt.date(2019, 6, 1), dt.date(2020, 9, 30), 0.25),
    ),
    "liveramp": (
        (dt.date(2019, 12, 1), dt.date(2020, 2, 1), 0.55),
        (dt.date(2020, 2, 1), dt.date(2020, 9, 30), 0.45),
    ),
    "crownpeak": (
        (dt.date(2017, 6, 1), dt.date(2018, 6, 1), 0.30),
        (dt.date(2018, 6, 1), dt.date(2019, 6, 1), 0.50),
        (dt.date(2019, 6, 1), dt.date(2020, 1, 1), 0.20),
    ),
}


def sample_adoption_date(rng: random.Random, cmp_key: str) -> dt.date:
    """Draw the date a site first adopts *cmp_key*."""
    windows = _INFLOW_WINDOWS[cmp_key]
    total = sum(w for _, _, w in windows)
    roll = rng.random() * total
    acc = 0.0
    for start, end, weight in windows:
        acc += weight
        if roll < acc:
            span = (end - start).days
            return start + dt.timedelta(days=rng.randrange(max(1, span)))
    start, end, _ = windows[-1]
    return start


# ----------------------------------------------------------------------
# Switching and churn (Figure 4 calibration)
# ----------------------------------------------------------------------
#: Per source CMP: (probability of ever switching, {target: weight}).
#: Cookiebot is the gateway CMP: nearly a third of its customers migrate
#: away while almost nobody migrates in; Crownpeak haemorrhages sites in
#: early 2020.
_SWITCHING: Dict[str, Tuple[float, Dict[str, float]]] = {
    "cookiebot": (0.30, {"onetrust": 0.55, "quantcast": 0.35, "trustarc": 0.10}),
    "quantcast": (0.08, {"onetrust": 0.70, "trustarc": 0.12, "cookiebot": 0.03, "liveramp": 0.15}),
    "onetrust": (0.05, {"quantcast": 0.60, "trustarc": 0.25, "cookiebot": 0.05, "liveramp": 0.10}),
    "trustarc": (0.12, {"onetrust": 0.70, "quantcast": 0.30}),
    "crownpeak": (0.55, {"onetrust": 0.70, "quantcast": 0.30}),
    "liveramp": (0.02, {"onetrust": 1.0}),
}

#: Per source CMP: window in which switches away from it happen.
_SWITCH_WINDOWS: Dict[str, Tuple[dt.date, dt.date]] = {
    "cookiebot": (dt.date(2018, 9, 1), STUDY_END),
    "quantcast": (dt.date(2019, 1, 1), STUDY_END),
    "onetrust": (dt.date(2019, 1, 1), STUDY_END),
    "trustarc": (dt.date(2019, 6, 1), STUDY_END),
    # The Crownpeak exodus between January and May 2020 (Tables A.3 / 1).
    "crownpeak": (dt.date(2020, 1, 15), dt.date(2020, 4, 15)),
    "liveramp": (dt.date(2020, 3, 1), STUDY_END),
}

#: Probability of abandoning consent management entirely (site keeps
#: running, CMP embed removed). TrustArc's 2020 decline is churn-driven.
_DROP_PROB: Dict[str, float] = {
    "quantcast": 0.03,
    "onetrust": 0.02,
    "trustarc": 0.16,
    "cookiebot": 0.04,
    "liveramp": 0.01,
    "crownpeak": 0.05,
}
_DEFAULT_DROP_WINDOW = (dt.date(2019, 6, 1), STUDY_END)
#: TrustArc's churn concentrates in 2020 (its Tranco-10k count falls
#: from 170 in January to 156 in May, Tables A.3 / 1).
_DROP_WINDOWS: Dict[str, Tuple[dt.date, dt.date]] = {
    "trustarc": (dt.date(2020, 1, 10), dt.date(2020, 7, 1)),
}


@dataclass(frozen=True)
class AdoptionHistory:
    """A site's sampled CMP timeline, before dialog configs are attached.

    ``stints`` is a chronological list of ``(cmp_key, start, end)``
    triples with exclusive, possibly-``None`` ends.
    """

    stints: Tuple[Tuple[str, dt.date, Optional[dt.date]], ...]

    @property
    def ever_adopted(self) -> bool:
        return bool(self.stints)

    def cmp_on(self, date: dt.date) -> Optional[str]:
        for key, start, end in self.stints:
            if start <= date and (end is None or date < end):
                return key
        return None


class AdoptionModel:
    """Samples complete per-site CMP histories."""

    def __init__(
        self,
        study_start: dt.date = STUDY_START,
        study_end: dt.date = STUDY_END,
    ) -> None:
        self.study_start = study_start
        self.study_end = study_end

    # ------------------------------------------------------------------
    def sample_history(self, rng: random.Random, rank: int) -> AdoptionHistory:
        """Sample one site's CMP timeline."""
        if rng.random() >= p_ever_adopter(rank):
            return AdoptionHistory(stints=())
        first = _weighted_key(rng, first_cmp_weights(rank))
        start = sample_adoption_date(rng, first)
        start = max(start, cmp_by_key(first).launch_date)
        stints: List[Tuple[str, dt.date, Optional[dt.date]]] = []

        current = first
        current_start = start
        # At most two stints: the paper's switching analysis pairs
        # adjacent episodes, and multi-switch sites are vanishingly rare
        # in a 2.5-year window.
        switch_p, targets = _SWITCHING[current]
        if rng.random() < switch_p:
            w_start, w_end = _SWITCH_WINDOWS[current]
            w_start = max(w_start, current_start + dt.timedelta(days=60))
            if w_start < w_end:
                switch_date = _uniform_date(rng, w_start, w_end)
                target = _weighted_key(rng, targets)
                target_launch = cmp_by_key(target).launch_date
                if switch_date < target_launch:
                    switch_date = _uniform_date(
                        rng, target_launch, max(w_end, target_launch + dt.timedelta(days=30))
                    )
                stints.append((current, current_start, switch_date))
                current = target
                current_start = switch_date

        end: Optional[dt.date] = None
        if rng.random() < _DROP_PROB[current]:
            window = _DROP_WINDOWS.get(current, _DEFAULT_DROP_WINDOW)
            d_start = max(window[0], current_start + dt.timedelta(days=90))
            if d_start < window[1]:
                end = _uniform_date(rng, d_start, window[1])
        stints.append((current, current_start, end))
        return AdoptionHistory(stints=tuple(stints))


def _weighted_key(rng: random.Random, weights: Dict[str, float]) -> str:
    total = sum(weights.values())
    roll = rng.random() * total
    acc = 0.0
    for key, weight in weights.items():
        acc += weight
        if roll < acc:
            return key
    return next(iter(weights))


def _uniform_date(rng: random.Random, start: dt.date, end: dt.date) -> dt.date:
    span = (end - start).days
    if span <= 0:
        return start
    return start + dt.timedelta(days=rng.randrange(span))
