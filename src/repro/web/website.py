"""The per-website model of the synthetic web.

A :class:`Website` carries everything that determines what a crawler (or
a real visitor) observes when loading one of its pages:

* its popularity rank and social-share weight;
* its CMP-adoption history as a list of :class:`CmpEpisode` intervals,
  each with a concrete dialog configuration;
* geo-gating: whether the CMP is embedded for all visitors or only for
  EU visitors (the paper finds many sites do the latter, Table 1);
* hosting properties: anti-bot CDN interstitials shown to cloud address
  space, and slow-loading pages whose CMP request falls outside the
  crawler's aggressive default timeout (Section 3.5);
* structure: subsites (some of which, like privacy-policy pages, embed
  no external scripts), and redirect aliases.
"""

from __future__ import annotations

import datetime as dt
import zlib
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.cmps.base import DialogDescriptor


@dataclass(frozen=True)
class CmpEpisode:
    """A maximal interval during which a site used one CMP.

    ``end`` is exclusive and ``None`` for an episode still open at the
    end of the study window.
    """

    cmp_key: str
    start: dt.date
    end: Optional[dt.date]
    dialog: DialogDescriptor

    def __post_init__(self) -> None:
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"empty episode: start={self.start} end={self.end}"
            )
        if self.dialog.cmp_key != self.cmp_key:
            raise ValueError("dialog belongs to a different CMP")

    def active_on(self, date: dt.date) -> bool:
        return self.start <= date and (self.end is None or date < self.end)


@dataclass(frozen=True)
class Website:
    """One site of the synthetic web."""

    #: True-popularity rank, 1-based. Toplists observe noisy versions.
    rank: int
    #: Registrable domain (eTLD+1), e.g. ``newsday-media.co.uk``.
    domain: str
    #: CMP episodes, chronologically ordered and non-overlapping.
    episodes: Tuple[CmpEpisode, ...] = ()
    #: Regions for which the CMP script is embedded at all. Sites outside
    #: the EU often embed the CMP only for EU visitors.
    embed_regions: FrozenSet[str] = frozenset({"EU", "US"})
    #: Date from which an EU-only embedder starts embedding for US
    #: visitors too -- Table A.3 vs Table 1: "a growing share of
    #: websites adapt CMPs outside the EU, likely prompted by non-EU
    #: regulations such as CCPA".
    us_embed_since: Optional[dt.date] = None
    #: Site sits behind an anti-bot CDN that serves interstitials to
    #: public-cloud address space (Section 3.5, "Crawler Location").
    behind_antibot_cdn: bool = False
    #: CMP request arrives late, beyond the default crawl timeout
    #: (Section 3.5, "Crawler Timeouts").
    slow_loader: bool = False
    #: Number of distinct subsite paths the share streams can produce.
    n_subsites: int = 8
    #: Fraction of subsites embedding the CMP. Almost always ~1.0 or
    #: ~0.0; the paper reports 99.8% of domains are consistently below
    #: 5% or above 95% (Section 3.5, "Subsites").
    cmp_subsite_coverage: float = 1.0
    #: Some sites embed the CMP only on specific subsites (ad-funded
    #: article pages) and keep the landing page clean -- the pattern that
    #: makes subsite crawling "increase the reliability of our results"
    #: (Section 3.5).
    cmp_on_landing: bool = True
    #: Site answers EU visitors with HTTP 451 (the geo-variable 0.2%).
    blocks_eu_visitors: bool = False
    #: The site is internet infrastructure (CDN, API host) that real
    #: users never visit directly and nobody shares on social media.
    is_infrastructure: bool = False
    #: Alias domains that 301 to this site (top-level-domain redirects).
    redirect_aliases: Tuple[str, ...] = ()
    #: This site is itself a pure alias: every request 301s to the given
    #: domain (the 192 toplist domains "counted as the redirect target").
    redirects_to: Optional[str] = None
    #: Relative weight in the social-share stream (already includes the
    #: popularity skew); 0 for never-shared sites.
    share_weight: float = 1.0
    #: Reachability class: "https", "http-only", "http-bare",
    #: "unreachable", "http-error" or "invalid-response" (Section 3.5,
    #: "Missing Data").
    reachability: str = "https"

    _REACHABILITY = (
        "https",
        "http-only",
        "http-bare",
        "unreachable",
        "http-error",
        "invalid-response",
    )

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError("ranks are 1-based")
        if self.reachability not in self._REACHABILITY:
            raise ValueError(f"unknown reachability {self.reachability!r}")
        if not 0.0 <= self.cmp_subsite_coverage <= 1.0:
            raise ValueError("cmp_subsite_coverage must be a fraction")
        last_end: Optional[dt.date] = None
        for ep in self.episodes:
            if last_end is not None and ep.start < last_end:
                raise ValueError("episodes overlap or are unordered")
            if ep.end is None:
                last_end = dt.date.max
            else:
                last_end = ep.end

    # ------------------------------------------------------------------
    # CMP state queries
    # ------------------------------------------------------------------
    def episode_on(self, date: dt.date) -> Optional[CmpEpisode]:
        """The CMP episode active on *date*, if any."""
        for ep in self.episodes:
            if ep.active_on(date):
                return ep
        return None

    def cmp_on(self, date: dt.date) -> Optional[str]:
        """The key of the CMP used on *date*, if any."""
        ep = self.episode_on(date)
        return ep.cmp_key if ep is not None else None

    def embeds_cmp_for(self, region: str, date: dt.date) -> bool:
        """True if a visitor from *region* receives the CMP embed."""
        if self.episode_on(date) is None:
            return False
        if region in self.embed_regions:
            return True
        return (
            region == "US"
            and self.us_embed_since is not None
            and date >= self.us_embed_since
        )

    @property
    def ever_used_cmp(self) -> bool:
        return bool(self.episodes)

    @property
    def switches(self) -> Tuple[Tuple[str, str], ...]:
        """Consecutive ``(from_cmp, to_cmp)`` pairs with distinct CMPs.

        A switch is only counted when the next episode starts where the
        previous ended (within a 30-day grace window), mirroring how the
        longitudinal analysis pairs adjacent observations.
        """
        out = []
        for a, b in zip(self.episodes, self.episodes[1:]):
            if a.cmp_key == b.cmp_key or a.end is None:
                continue
            if (b.start - a.end).days <= 30:
                out.append((a.cmp_key, b.cmp_key))
        return tuple(out)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def subsite_path(self, index: int) -> str:
        """The path of subsite *index* (0 is the landing page)."""
        if index <= 0:
            return "/"
        if index == self.privacy_policy_index:
            return "/privacy-policy"
        return f"/articles/{index}"

    @property
    def privacy_policy_index(self) -> int:
        """Index of the privacy-policy subsite (never embeds the CMP)."""
        return self.n_subsites  # one past the regular articles

    def subsite_embeds_cmp(self, index: int) -> bool:
        """Whether subsite *index* includes the CMP embed at all.

        The landing page always matches the site's coverage class; the
        privacy-policy page never embeds external scripts (Section 3.5).
        """
        if index == self.privacy_policy_index:
            return False
        if index == 0:
            return self.cmp_on_landing and self.cmp_subsite_coverage > 0.0
        if self.cmp_subsite_coverage >= 1.0:
            return True
        if self.cmp_subsite_coverage <= 0.0:
            return False
        # Deterministic per-subsite assignment: subsite i embeds the CMP
        # iff its hash bucket falls below the coverage fraction. CRC32 is
        # stable across processes, unlike the salted built-in hash().
        digest = zlib.crc32(f"{self.domain}:{index}".encode("utf-8"))
        return digest % 1000 / 1000.0 < self.cmp_subsite_coverage

    @property
    def tld(self) -> str:
        return self.domain.split(".", 1)[1] if "." in self.domain else ""

    @property
    def is_eu_uk_tld(self) -> bool:
        """True for EU-member or UK TLDs (drives the Section 4.1 shares)."""
        eu = {
            "de", "fr", "it", "nl", "es", "eu", "at", "be", "pl", "pt",
            "ro", "se", "dk", "fi", "ie", "cz", "gr", "hu", "sk", "si",
            "bg", "hr", "lt", "lv", "ee", "lu", "mt", "cy", "uk", "co.uk",
            "org.uk",
        }
        return self.tld in eu
