"""Bundled static datasets.

Everything here is data the paper either publishes in its appendix, cites,
or treats as external input that does not change with the synthetic world:

* the Public Suffix List snapshot (:func:`load_psl_snapshot`);
* the timeline of privacy-law events annotated in Figure 6
  (:data:`PRIVACY_LAW_EVENTS`);
* the GDPR consent-banner phrases from Degeling et al. used to validate
  the CMP fingerprints (:data:`GDPR_PHRASES`);
* the related-work comparison behind Figure 1 (:data:`RELATED_WORK`).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from importlib import resources
from typing import List, Tuple

__all__ = [
    "load_psl_snapshot",
    "Event",
    "PRIVACY_LAW_EVENTS",
    "GDPR_PHRASES",
    "RelatedStudy",
    "RELATED_WORK",
    "STUDY_START",
    "STUDY_END",
]

#: Observation window of the paper's main dataset (Section 3.4).
STUDY_START = dt.date(2018, 3, 1)
STUDY_END = dt.date(2020, 9, 30)


def load_psl_snapshot() -> List[str]:
    """Return the bundled Public Suffix List rules as a list of lines."""
    text = (
        resources.files(__package__).joinpath("psl_snapshot.dat").read_text("utf-8")
    )
    return text.splitlines()


@dataclass(frozen=True)
class Event:
    """A privacy-law event annotated on the Figure 6 timeline.

    ``kind`` distinguishes events that *drove* adoption in the paper's
    findings (laws coming into effect) from those that did not (fines,
    guidance).
    """

    date: dt.date
    label: str
    kind: str  # "law-effective" | "enforcement" | "guidance" | "market"


#: Non-exhaustive timeline of events with relevance to the GDPR and the
#: CCPA, as annotated in Figure 6. The paper finds that only the
#: ``law-effective`` events coincide with adoption spikes.
PRIVACY_LAW_EVENTS: Tuple[Event, ...] = (
    Event(dt.date(2018, 5, 25), "GDPR comes into effect", "law-effective"),
    Event(dt.date(2019, 1, 21), "CNIL fines Google 50M EUR", "enforcement"),
    Event(dt.date(2019, 7, 8), "ICO intends to fine British Airways", "enforcement"),
    Event(dt.date(2019, 7, 4), "CNIL guidelines on cookies", "guidance"),
    Event(dt.date(2019, 12, 1), "LiveRamp CMP launches", "market"),
    Event(dt.date(2020, 1, 1), "CCPA comes into effect", "law-effective"),
    Event(dt.date(2020, 7, 1), "CCPA enforcement begins", "enforcement"),
)


#: GDPR consent phrases from Degeling et al. (NDSS '19), used in
#: Section 3.2 to double-check that the CMP fingerprints do not miss any
#: consent dialog in the toplist crawls.
GDPR_PHRASES: Tuple[str, ...] = (
    "we value your privacy",
    "we use cookies",
    "this website uses cookies",
    "uses cookies to ensure",
    "consent to the use of cookies",
    "cookie policy",
    "cookie settings",
    "accept cookies",
    "accept all cookies",
    "manage your privacy",
    "personalise ads and content",
    "your privacy choices",
    "do not sell my personal information",
    "gdpr",
    "data protection regulation",
)


@dataclass(frozen=True)
class RelatedStudy:
    """One prior study from the Figure 1 comparison."""

    name: str
    venue: str
    n_domains: int
    #: Observation window; a point-in-time snapshot has equal dates.
    window_start: dt.date
    window_end: dt.date
    longitudinal: bool

    @property
    def window_days(self) -> int:
        return (self.window_end - self.window_start).days


#: Prior work plotted in Figure 1: point-in-time snapshots of small
#: samples, against which the paper's 2.5-year / 4.2M-domain dataset is
#: contrasted. Domain counts and windows follow the cited papers.
RELATED_WORK: Tuple[RelatedStudy, ...] = (
    RelatedStudy(
        "Degeling et al.", "NDSS '19", 6_357,
        dt.date(2018, 1, 1), dt.date(2018, 8, 1), True,
    ),
    RelatedStudy(
        "Sanchez-Rola et al.", "AsiaCCS '19", 2_000,
        dt.date(2018, 9, 1), dt.date(2018, 9, 30), False,
    ),
    RelatedStudy(
        "Utz et al.", "CCS '19", 1_000,
        dt.date(2018, 6, 1), dt.date(2018, 6, 30), False,
    ),
    RelatedStudy(
        "Nouwens et al.", "CHI '20", 10_000,
        dt.date(2020, 1, 1), dt.date(2020, 1, 14), False,
    ),
    RelatedStudy(
        "Matte et al.", "S&P '20", 28_257,
        dt.date(2019, 9, 1), dt.date(2020, 1, 31), False,
    ),
    RelatedStudy(
        "Hils et al. (this paper)", "IMC '20", 4_200_000,
        STUDY_START, STUDY_END, True,
    ),
)
