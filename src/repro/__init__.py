"""repro -- a reproduction of "Measuring the Emergence of Consent
Management on the Web" (Hils, Woods & Böhme, ACM IMC 2020).

The package is organised as the paper's measurement stack, bottom-up:

* :mod:`repro.net` -- URLs, Public Suffix List, HTTP models, probing;
* :mod:`repro.toplist` -- synthetic rank providers and the Tranco
  (Dowdall-rule) aggregation;
* :mod:`repro.tcf` -- IAB TCF v1: purposes, consent strings, the Global
  Vendor List and its history, the ``__cmp()`` API;
* :mod:`repro.cmps` -- behavioural models of the six CMPs under study;
* :mod:`repro.web` -- the deterministic synthetic web the crawlers run
  against (the offline substitute for the live 2018--2020 web);
* :mod:`repro.crawler` -- the Netograph-like measurement platform:
  social-media seeds, capture queue, browser simulation, toplist crawls;
* :mod:`repro.detect` -- CMP fingerprints and the detection engine;
* :mod:`repro.stats` -- Mann-Whitney U, descriptive stats, bootstrap;
* :mod:`repro.users` -- visitor behaviour and the randomized dialog
  experiment;
* :mod:`repro.core` -- the paper's analyses: adoption, marketshare,
  switching, vantage comparison, customization, GVL behaviour, timing.

See DESIGN.md for the per-experiment index and EXPERIMENTS.md for
paper-vs-measured numbers.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
