"""Persistent content-addressed artifact cache with warm-start reruns.

The paper's pipeline re-derives every figure from 161M crawls; this
module makes repeat runs of the reproduction *warm starts* instead of
full recomputations. Two artifact classes are cached:

* **Crawl-phase stores** -- the social platform's capture store,
  persisted in the ``shard-NNNN.jsonl`` checkpoint format of
  :mod:`repro.crawler.storage` (header + JSON Lines, crash-safe);
* **Derived analyses** -- :class:`~repro.core.adoption.AdoptionSeries`,
  :class:`~repro.core.vantage.VantageTable`,
  :class:`~repro.core.marketshare.MarketShareCurve` and toplist probe
  resolutions, serialized as a single header + payload JSON artifact.

Correctness model
-----------------

Every entry is keyed by a :class:`Fingerprint` that digests *everything
that can change the result*: the :class:`~repro.core.pipeline.StudyConfig`
scale knobs, the world seed, the fault-schedule digest, the CMP registry
version, and a per-stage code-version constant (:data:`CODE_VERSIONS`,
bumped whenever a stage's logic changes).  Deliberately **excluded** are
the execution knobs that the determinism contract guarantees cannot
change results: ``parallelism``, ``backend`` and the cache location
itself -- an entry written by a 16-worker process run serves a serial
rerun bit-identically.

Invalidation is purely fingerprint-based: an entry whose stored
fingerprint digest disagrees with the requested one is evicted and
recomputed. File mtimes are never consulted (the determinism linter's
DET002 wall-clock rule stays clean).

Cache *hits must be bit-identical to a cold run*; the chaos-style
identity suite in ``tests/test_cache.py`` and the cache-identity step of
``scripts/verify.sh`` enforce byte-equal exports between cold and warm
runs.  Misses populate atomically: artifact files land first (each via
:func:`repro.ioutil.atomic_write`), and the ``entry.json`` manifest --
the commit point a lookup requires -- is written last, so a writer
killed mid-populate leaves a harmless partial directory, never a
readable-but-wrong entry.  Corrupt or truncated entries degrade to a
cold compute; only a fingerprint *schema* bump (entries written by an
incompatible build) raises, naming the offending entry so the operator
knows to clear the directory.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.crawler.columnar import CaptureStore
from repro.crawler.spill import SpillingCaptureStore
from repro.crawler.storage import (
    StorageError,
    load_store,
    save_store,
    shard_checkpoint_path,
)
from repro.ioutil import PathLike, atomic_write
from repro.obs import Observability, resolve_obs

#: Identifies a cache entry manifest (``entry.json``).
CACHE_FORMAT = "repro.artifact-cache"

#: Version of the *fingerprint schema* -- the set and meaning of the
#: fields a fingerprint digests. Bump whenever fields are added, removed
#: or reinterpreted: entries written under another schema cannot be
#: trusted (their digests are not comparable) and are rejected with a
#: :class:`CacheSchemaError` instead of silently recomputed, so stale
#: directories get cleaned up rather than accumulating dead entries.
SCHEMA_VERSION = 1

#: Per-stage code-version constants. Bump a stage's entry whenever its
#: result-affecting logic changes; every fingerprint for that stage then
#: changes, invalidating cached artifacts computed by the old code.
CODE_VERSIONS: Dict[str, int] = {
    # v2: the columnar crawl path re-derived the visit/event randomness
    # (keyed counter streams + structural visit plans); every
    # crawl-derived artifact changed value, so all stages bump together.
    "social-crawl": 2,
    "toplist-probes": 2,
    "adoption": 2,
    "vantage": 2,
    "marketshare": 2,
    # Streaming engine checkpoints (repro.stream): engine state (queue
    # cooldowns, watermark, capture counter) saved beside a store entry
    # written under the batch "social-crawl" fingerprint for the same
    # prefix window, so batch and follow runs share crawl artifacts.
    "stream-checkpoint": 1,
    # Consent ecosystem graph (repro.graph): canonical payload of the
    # study graph, content-addressed on the capture-store and GVL
    # history digests plus the ranking depth.
    "graph-build": 1,
}

#: Static stage -> module-closure map: the modules whose code
#: determines each stage's output. ``repro.lint`` phase 2 digests the
#: closure (normalized ASTs -- docstrings/comments/positions stripped)
#: and compares it against the committed ``cache-versions.lock.json``:
#: a digest change while the stage's :data:`CODE_VERSIONS` entry stays
#: put fails CI with CACHE001 (the forgotten-bump hazard); after a bump
#: or a reviewed result-neutral refactor, re-record the lock with
#: ``python -m repro.lint --update-lock`` (CACHE002 guards the record).
#: Values must stay literal lists of module names -- the analyzer reads
#: this declaration statically, without importing the package.
STAGE_CLOSURES: Dict[str, List[str]] = {
    "social-crawl": [
        "repro.crawler.capture",
        "repro.crawler.columnar",
        "repro.crawler.executor",
        "repro.crawler.platform",
        "repro.crawler.queue",
        "repro.crawler.spill",
        "repro.detect.engine",
        "repro.web.lru",
        "repro.web.worldgen",
    ],
    "toplist-probes": [
        "repro.crawler.executor",
        "repro.crawler.toplist_crawl",
        "repro.net.http",
        "repro.net.probe",
    ],
    "adoption": [
        "repro.core.adoption",
        "repro.crawler.columnar",
    ],
    "vantage": [
        "repro.core.vantage",
        "repro.crawler.toplist_crawl",
    ],
    "marketshare": [
        "repro.core.marketshare",
        "repro.toplist.tranco",
    ],
    "stream-checkpoint": [
        "repro.stream.engine",
        "repro.stream.state",
    ],
    "graph-build": [
        "repro.graph.ingest",
        "repro.graph.model",
        "repro.toplist.providers",
        "repro.toplist.tranco",
        "repro.crawler.columnar",
        "repro.tcf.gvl",
        "repro.web.lru",
        "repro.web.worldgen",
    ],
}

#: The cache's obs counter family. Registered in a loop (names reach
#: ``metrics.counter`` through a variable), which is why ``repro/cache.py``
#: is on the OBS001 allowlist -- the names stay grep-able literals here.
_CACHE_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("cache_hits_total", "cache lookups served from a valid entry"),
    ("cache_misses_total", "cache lookups finding no usable entry"),
    (
        "cache_invalidations_total",
        "stale entries evicted on fingerprint mismatch",
    ),
)

_SLOT_SANITIZE = re.compile(r"[^a-z0-9._-]+")


class CacheError(ValueError):
    """Raised on malformed cache state that cannot be recovered from."""


class CacheSchemaError(CacheError):
    """An entry was written under an incompatible fingerprint schema."""


def _sanitize(part: str) -> str:
    return _SLOT_SANITIZE.sub("-", part.lower()).strip("-")


def digest_text(text: str) -> str:
    """SHA-256 hexdigest of *text* (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def digest_domains(domains) -> str:
    """Content digest of an ordered domain list (toplist identity)."""
    return digest_text("\n".join(domains))


class Fingerprint:
    """Digest of everything that can change one stage's result.

    A fingerprint has two parts:

    * the **slot** -- the stage name plus the artifact's *identity* key
      (e.g. the crawl window, the analysis date), which names the entry
      directory. Two runs asking for the same logical artifact share a
      slot even when their parameters differ;
    * the **digest** -- a SHA-256 over *all* fields (identity key,
      result-affecting parameters, schema/code/CMP-registry versions).
      A slot whose stored digest disagrees is stale and gets evicted.

    Build via :meth:`build`; field values are canonicalized to strings
    so digests are stable across Python versions.
    """

    def __init__(
        self, stage: str, key: Tuple[str, ...], fields: Tuple[Tuple[str, str], ...]
    ):
        if stage not in CODE_VERSIONS:
            raise CacheError(
                f"unknown cache stage {stage!r}; expected one of "
                f"{sorted(CODE_VERSIONS)}"
            )
        self.stage = stage
        self.key = key
        self.fields = fields

    @classmethod
    def build(
        cls, stage: str, key: Tuple[str, ...] = (), **fields: object
    ) -> "Fingerprint":
        """Canonicalize *fields* (sorted, stringified) into a fingerprint."""
        canonical = tuple(
            sorted((name, str(value)) for name, value in fields.items())
        )
        return cls(stage, tuple(str(k) for k in key), canonical)

    # ------------------------------------------------------------------
    def manifest_fields(self) -> Dict[str, str]:
        """The full field map persisted into the entry manifest."""
        from repro.cmps.base import REGISTRY_VERSION

        out = {name: value for name, value in self.fields}
        out["stage"] = self.stage
        out["key"] = "/".join(self.key)
        out["code_version"] = str(CODE_VERSIONS[self.stage])
        out["cmp_registry_version"] = str(REGISTRY_VERSION)
        return out

    def digest(self) -> str:
        """The content-address of this fingerprint (hex SHA-256)."""
        return digest_text(
            json.dumps(self.manifest_fields(), sort_keys=True)
        )

    def slot(self) -> str:
        """The entry-directory name: stage plus sanitized identity key."""
        parts = [self.stage] + [_sanitize(k) for k in self.key if k]
        return "-".join(p for p in parts if p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fingerprint({self.slot()!r}, {self.digest()[:12]})"


class ArtifactCache:
    """A directory of fingerprint-keyed artifacts with obs instrumentation.

    Layout (one directory per slot)::

        <root>/<slot>/entry.json        # manifest; written last
        <root>/<slot>/shard-0000.jsonl  # store artifacts (1..N shards)
        <root>/<slot>/artifact.json     # JSON artifacts

    Lookups are traced as ``cache.lookup`` spans and counted by the
    ``cache_{hits,misses,invalidations}_total`` counters, labeled by
    stage. A *miss* is an absent or unreadable entry (cold compute
    repopulates it); an *invalidation* is a readable entry whose
    fingerprint digest disagrees -- it is evicted on the spot.
    """

    def __init__(self, root: PathLike, obs: Optional[Observability] = None):
        self.root = Path(root)
        self.obs = resolve_obs(obs)
        metrics = self.obs.metrics
        self._meters = {
            name: metrics.counter(name, help_text)
            for name, help_text in _CACHE_COUNTERS
        }

    # ------------------------------------------------------------------
    # Store artifacts (crawl phase, shard-NNNN.jsonl checkpoint format)
    # ------------------------------------------------------------------
    def load_capture_store(
        self, fingerprint: Fingerprint
    ) -> Optional[CaptureStore]:
        """The cached store for *fingerprint*, or ``None`` (cold compute).

        Multi-shard entries are merged in shard-id order, which the
        executor contract guarantees reproduces the serial insertion
        order -- a hit is bit-identical to the run that populated it.
        """
        with self.obs.span(
            "cache.lookup", stage=fingerprint.stage, artifact="store"
        ) as span:
            manifest = self._usable_manifest(fingerprint, "store")
            if manifest is None:
                span.set(outcome="miss")
                return None
            entry_dir = self.root / fingerprint.slot()
            n_shards = manifest.get("shards")
            if not isinstance(n_shards, int) or n_shards < 1:
                self._miss(fingerprint, "corrupt")
                span.set(outcome="miss")
                return None
            merged = CaptureStore(retain_captures=False)
            try:
                for shard_id in range(n_shards):
                    shard = load_store(
                        shard_checkpoint_path(entry_dir, shard_id),
                        context=f"cache {fingerprint.slot()}",
                    )
                    merged.merge(shard)
            except (StorageError, OSError):
                # Truncated/corrupt shard file: fall back to a cold
                # compute; the repopulate overwrites the bad entry.
                self._miss(fingerprint, "corrupt")
                span.set(outcome="miss")
                return None
            self._hit(fingerprint)
            span.set(outcome="hit", shards=n_shards)
            return merged

    def save_capture_store(
        self,
        fingerprint: Fingerprint,
        stores,
    ) -> Path:
        """Persist *stores* (one ``CaptureStore`` or a shard list) under
        *fingerprint*; returns the entry directory.

        Shard files are written first (each atomically); the manifest
        commits the entry last, so a crash mid-populate never leaves a
        readable entry pointing at incomplete shards.

        A :class:`~repro.crawler.spill.SpillingCaptureStore` expands
        into one shard file per spilled segment (copied verbatim -- the
        spill format *is* the shard checkpoint format) plus one for the
        active tail, so populating the cache never folds the store back
        into memory. Loads merge shards in id order either way, which
        reproduces the insertion order exactly; whether the populating
        run spilled is invisible to a warm hit.
        """
        if isinstance(stores, (CaptureStore, SpillingCaptureStore)):
            stores = [stores]
        entry_dir = self._fresh_entry_dir(fingerprint)
        shard_id = 0
        for store in stores:
            if isinstance(store, SpillingCaptureStore):
                for segment_path in store.segment_paths():
                    shutil.copyfile(
                        segment_path,
                        shard_checkpoint_path(entry_dir, shard_id),
                    )
                    shard_id += 1
                save_store(
                    store.active_store(),
                    shard_checkpoint_path(entry_dir, shard_id),
                )
            else:
                save_store(store, shard_checkpoint_path(entry_dir, shard_id))
            shard_id += 1
        self._commit(fingerprint, entry_dir, "store", shards=shard_id)
        return entry_dir

    # ------------------------------------------------------------------
    # JSON artifacts (derived analyses, probe resolutions)
    # ------------------------------------------------------------------
    def load_payload(self, fingerprint: Fingerprint) -> Optional[object]:
        """The cached JSON payload for *fingerprint*, or ``None``."""
        with self.obs.span(
            "cache.lookup", stage=fingerprint.stage, artifact="json"
        ) as span:
            manifest = self._usable_manifest(fingerprint, "json")
            if manifest is None:
                span.set(outcome="miss")
                return None
            path = self.root / fingerprint.slot() / "artifact.json"
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    header = json.loads(handle.readline())
                    body = handle.readline()
                    payload = json.loads(body)
            except (OSError, ValueError):
                self._miss(fingerprint, "corrupt")
                span.set(outcome="miss")
                return None
            if (
                not isinstance(header, dict)
                or header.get("format") != CACHE_FORMAT
                or header.get("digest") != fingerprint.digest()
                or not body.endswith("\n")
            ):
                # Artifact header out of step with the manifest (or the
                # payload line lost its terminator to truncation).
                self._miss(fingerprint, "corrupt")
                span.set(outcome="miss")
                return None
            self._hit(fingerprint)
            span.set(outcome="hit")
            return payload

    def save_payload(self, fingerprint: Fingerprint, payload: object) -> Path:
        """Persist *payload* (JSON-serializable) under *fingerprint*."""
        entry_dir = self._fresh_entry_dir(fingerprint)
        header = {
            "format": CACHE_FORMAT,
            "schema": SCHEMA_VERSION,
            "digest": fingerprint.digest(),
        }
        with atomic_write(entry_dir / "artifact.json") as handle:
            handle.write(json.dumps(header, sort_keys=True))
            handle.write("\n")
            handle.write(json.dumps(payload, sort_keys=True))
            handle.write("\n")
        self._commit(fingerprint, entry_dir, "json")
        return entry_dir

    # ------------------------------------------------------------------
    # Entry plumbing
    # ------------------------------------------------------------------
    def _manifest_path(self, fingerprint: Fingerprint) -> Path:
        return self.root / fingerprint.slot() / "entry.json"

    def _usable_manifest(
        self, fingerprint: Fingerprint, artifact: str
    ) -> Optional[dict]:
        """The entry manifest if it commits a valid, current artifact.

        Returns ``None`` after metering the miss/invalidation; raises
        :class:`CacheSchemaError` for entries from an incompatible
        fingerprint schema (those must be cleared, not recomputed over).
        """
        path = self._manifest_path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.loads(handle.read())
        except FileNotFoundError:
            self._miss(fingerprint, "absent")
            return None
        except (OSError, ValueError):
            self._miss(fingerprint, "corrupt")
            return None
        if not isinstance(manifest, dict) or manifest.get("format") != CACHE_FORMAT:
            self._miss(fingerprint, "corrupt")
            return None
        schema = manifest.get("schema")
        if schema != SCHEMA_VERSION:
            raise CacheSchemaError(
                f"{path}: cache entry written under fingerprint schema "
                f"{schema!r}, this build uses schema {SCHEMA_VERSION}; "
                f"clear the cache directory to rebuild it"
            )
        if manifest.get("digest") != fingerprint.digest():
            # Stale entry: same slot, different parameters/code. Evict
            # by fingerprint mismatch (never by mtime) and recompute.
            self._evict(fingerprint)
            self._meters["cache_invalidations_total"].inc(
                stage=fingerprint.stage
            )
            return None
        if manifest.get("artifact") != artifact:
            self._miss(fingerprint, "corrupt")
            return None
        return manifest

    def _fresh_entry_dir(self, fingerprint: Fingerprint) -> Path:
        """The slot directory, cleared of any committed previous entry."""
        entry_dir = self.root / fingerprint.slot()
        manifest = entry_dir / "entry.json"
        if manifest.exists():
            manifest.unlink()
        entry_dir.mkdir(parents=True, exist_ok=True)
        return entry_dir

    def _commit(
        self,
        fingerprint: Fingerprint,
        entry_dir: Path,
        artifact: str,
        shards: Optional[int] = None,
    ) -> None:
        manifest = {
            "format": CACHE_FORMAT,
            "schema": SCHEMA_VERSION,
            "stage": fingerprint.stage,
            "artifact": artifact,
            "digest": fingerprint.digest(),
            "fingerprint": fingerprint.manifest_fields(),
        }
        if shards is not None:
            manifest["shards"] = shards
        with atomic_write(entry_dir / "entry.json") as handle:
            handle.write(json.dumps(manifest, sort_keys=True, indent=1))
            handle.write("\n")

    def _evict(self, fingerprint: Fingerprint) -> None:
        """Remove a stale entry (manifest first, so a crash mid-evict
        leaves an uncommitted -- therefore invisible -- directory)."""
        entry_dir = self.root / fingerprint.slot()
        manifest = entry_dir / "entry.json"
        if manifest.exists():
            manifest.unlink()
        for path in sorted(entry_dir.glob("*")):
            if path.is_file():
                path.unlink()

    # ------------------------------------------------------------------
    def _hit(self, fingerprint: Fingerprint) -> None:
        self._meters["cache_hits_total"].inc(stage=fingerprint.stage)

    def _miss(self, fingerprint: Fingerprint, reason: str) -> None:
        self._meters["cache_misses_total"].inc(
            stage=fingerprint.stage, reason=reason
        )

    # ------------------------------------------------------------------
    def hits(self) -> float:
        """Total hits so far (0 under the null obs backend)."""
        return self._meters["cache_hits_total"].total


def resolve_cache(
    cache_dir: Optional[PathLike], obs: Optional[Observability] = None
) -> Optional[ArtifactCache]:
    """``None``-propagating :class:`ArtifactCache` constructor."""
    if cache_dir is None:
        return None
    return ArtifactCache(cache_dir, obs=obs)


__all__ = [
    "ArtifactCache",
    "CacheError",
    "CacheSchemaError",
    "CACHE_FORMAT",
    "CODE_VERSIONS",
    "Fingerprint",
    "SCHEMA_VERSION",
    "digest_domains",
    "digest_text",
    "resolve_cache",
]
