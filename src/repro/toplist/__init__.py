"""Toplists.

The paper normalizes website popularity with the Tranco list, which
aggregates the rankings of Alexa, Cisco Umbrella, Majestic and Quantcast
using the Dowdall rule (Le Pochat et al., NDSS '19). This package
provides synthetic provider rankings over the synthetic web
(:mod:`repro.toplist.providers`) and the aggregation itself
(:mod:`repro.toplist.tranco`).
"""

from repro.toplist.providers import PROVIDER_NAMES, ProviderRanking, provider_ranking
from repro.toplist.tranco import TrancoList, build_tranco

__all__ = [
    "PROVIDER_NAMES",
    "ProviderRanking",
    "provider_ranking",
    "TrancoList",
    "build_tranco",
]
