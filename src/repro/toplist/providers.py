"""Synthetic toplist providers.

Four ranking providers over the synthetic web, standing in for the four
lists Tranco aggregates. Each provider observes the true popularity rank
through its own noisy lens, mirroring the real providers' differing
methodologies (Scheitle et al., IMC '18):

* **alexa** -- panel-based browsing data: moderate noise;
* **umbrella** -- DNS resolver volume: noisier, and it up-ranks
  infrastructure domains (CDNs, API endpoints) that users never visit
  directly -- the reason toplists contain domains that are never shared
  on social media (Section 3.5, "Missing Data");
* **majestic** -- backlink counts: the noisiest, slow-moving lens;
* **quantcast** -- measured site traffic: the least noisy but with
  partial coverage of the long tail.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.web.worldgen import World

PROVIDER_NAMES: Tuple[str, ...] = ("alexa", "umbrella", "majestic", "quantcast")

#: Log-normal rank-noise scale per provider.
_NOISE_SCALE = {
    "alexa": 0.35,
    "umbrella": 0.55,
    "majestic": 0.75,
    "quantcast": 0.25,
}

#: Umbrella's boost factor for infrastructure domains.
_INFRA_BOOST = 8.0

#: Quantcast's long-tail coverage: sites beyond this true rank are
#: randomly dropped with 50% probability.
_QUANTCAST_TAIL_START = 20_000


@dataclass(frozen=True)
class ProviderRanking:
    """One provider's ranking: ``order[i]`` is the true rank of the
    domain the provider puts in position ``i + 1``. Providers with
    partial coverage list fewer domains than the world contains."""

    provider: str
    order: np.ndarray  # int64, shape (n_listed,)
    n_domains: int

    def __len__(self) -> int:
        return len(self.order)

    def position_of(self) -> np.ndarray:
        """Inverse permutation: ``position_of()[true_rank - 1]`` is this
        provider's 1-based rank of that domain (0 = not listed)."""
        pos = np.zeros(self.n_domains, dtype=np.int64)
        pos[self.order - 1] = np.arange(1, len(self.order) + 1)
        return pos


def provider_ranking(
    world: World, provider: str, *, infra_scan_limit: int = 50_000
) -> ProviderRanking:
    """Compute one provider's ranking of the whole world."""
    if provider not in PROVIDER_NAMES:
        raise KeyError(f"unknown provider {provider!r}")
    n = world.config.n_domains
    rng = np.random.default_rng(
        zlib.crc32(f"{world.config.seed}:toplist:{provider}".encode("utf-8"))
    )
    ranks = np.arange(1, n + 1, dtype=np.float64)
    scores = 1.0 / ranks
    scores *= np.exp(rng.normal(0.0, _NOISE_SCALE[provider], size=n))

    if provider == "umbrella":
        # Boost infrastructure domains; scanning the site class is
        # bounded to the head of the list, which is where it matters.
        limit = min(infra_scan_limit, n)
        for rank in range(1, limit + 1):
            if world._class_of(rank) == "infrastructure":
                scores[rank - 1] *= _INFRA_BOOST
    elif provider == "quantcast":
        tail = np.arange(n) + 1 > _QUANTCAST_TAIL_START
        drop = rng.random(n) < 0.5
        scores[tail & drop] = 0.0

    order = np.argsort(-scores, kind="stable") + 1
    order = order[scores[order - 1] > 0.0]
    return ProviderRanking(
        provider=provider, order=order.astype(np.int64), n_domains=n
    )
