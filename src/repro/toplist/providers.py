"""Synthetic toplist providers.

Four ranking providers over the synthetic web, standing in for the four
lists Tranco aggregates. Each provider observes the true popularity rank
through its own noisy lens, mirroring the real providers' differing
methodologies (Scheitle et al., IMC '18):

* **alexa** -- panel-based browsing data: moderate noise;
* **umbrella** -- DNS resolver volume: noisier, and it up-ranks
  infrastructure domains (CDNs, API endpoints) that users never visit
  directly -- the reason toplists contain domains that are never shared
  on social media (Section 3.5, "Missing Data");
* **majestic** -- backlink counts: the noisiest, slow-moving lens;
* **quantcast** -- measured site traffic: the least noisy but with
  partial coverage of the long tail.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.web.worldgen import World

PROVIDER_NAMES: Tuple[str, ...] = ("alexa", "umbrella", "majestic", "quantcast")

#: Log-normal rank-noise scale per provider.
_NOISE_SCALE = {
    "alexa": 0.35,
    "umbrella": 0.55,
    "majestic": 0.75,
    "quantcast": 0.25,
}

#: Umbrella's boost factor for infrastructure domains.
_INFRA_BOOST = 8.0

#: Quantcast's long-tail coverage: sites beyond this true rank are
#: randomly dropped with 50% probability.
_QUANTCAST_TAIL_START = 20_000


@dataclass(frozen=True)
class ProviderRanking:
    """One provider's ranking: ``order[i]`` is the true rank of the
    domain the provider puts in position ``i + 1``. Providers with
    partial coverage list fewer domains than the world contains."""

    provider: str
    order: np.ndarray  # int64, shape (n_listed,)
    n_domains: int

    def __len__(self) -> int:
        return len(self.order)

    def position_of(self) -> np.ndarray:
        """Inverse permutation: ``position_of()[true_rank - 1]`` is this
        provider's 1-based rank of that domain (0 = not listed)."""
        pos = np.zeros(self.n_domains, dtype=np.int64)
        pos[self.order - 1] = np.arange(1, len(self.order) + 1)
        return pos


def provider_ranking(
    world: World, provider: str, *, infra_scan_limit: int = 50_000
) -> ProviderRanking:
    """Compute one provider's ranking of the whole world."""
    if provider not in PROVIDER_NAMES:
        raise KeyError(f"unknown provider {provider!r}")
    n = world.config.n_domains
    rng = np.random.default_rng(
        zlib.crc32(f"{world.config.seed}:toplist:{provider}".encode("utf-8"))
    )
    ranks = np.arange(1, n + 1, dtype=np.float64)
    scores = 1.0 / ranks
    scores *= np.exp(rng.normal(0.0, _NOISE_SCALE[provider], size=n))

    if provider == "umbrella":
        # Boost infrastructure domains; scanning the site class is
        # bounded to the head of the list, which is where it matters.
        limit = min(infra_scan_limit, n)
        for rank in range(1, limit + 1):
            if world._class_of(rank) == "infrastructure":
                scores[rank - 1] *= _INFRA_BOOST
    elif provider == "quantcast":
        tail = np.arange(n) + 1 > _QUANTCAST_TAIL_START
        drop = rng.random(n) < 0.5
        scores[tail & drop] = 0.0

    order = np.argsort(-scores, kind="stable") + 1
    order = order[scores[order - 1] > 0.0]
    return ProviderRanking(
        provider=provider, order=order.astype(np.int64), n_domains=n
    )


# ----------------------------------------------------------------------
# Per-country, rank-magnitude-bucketed lists (the CrUX shape)
# ----------------------------------------------------------------------
#: TLD -> ISO country of registration. EU ccTLDs map to their member
#: state; the generic TLDs the synthetic world hands to non-EU sites
#: are attributed to the US (where CrUX's generic-TLD traffic is
#: heaviest); anything unknown falls into the "ZZ" (unattributed)
#: bucket rather than being dropped.
COUNTRY_OF_TLD: Dict[str, str] = {
    "de": "DE", "co.uk": "GB", "fr": "FR", "it": "IT", "nl": "NL",
    "es": "ES", "pl": "PL", "se": "SE", "eu": "EU", "at": "AT",
    "dk": "DK", "ie": "IE",
    "com": "US", "org": "US", "net": "US", "io": "US", "co": "US",
    "us": "US", "ca": "CA", "com.au": "AU", "co.jp": "JP",
    "com.br": "BR", "in": "IN",
}

#: Countries whose ccTLD belongs to an EU/EEA member (region edges in
#: the consent graph; the EU-vantage crawls "see" these natively).
EU_COUNTRIES: Tuple[str, ...] = (
    "AT", "DE", "DK", "ES", "EU", "FR", "IE", "IT", "NL", "PL", "SE",
)

#: CrUX-style rank-magnitude buckets: a listed domain's rank is only
#: known up to the smallest of these magnitudes covering it.
RANK_BUCKETS: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)


def country_of_domain(domain: str) -> str:
    """The registration country of a synthetic-world domain (by TLD)."""
    _, _, tld = domain.partition(".")
    return COUNTRY_OF_TLD.get(tld, "ZZ")


def rank_bucket(rank: int, buckets: Tuple[int, ...] = RANK_BUCKETS) -> int:
    """The smallest magnitude bucket covering a 1-based rank."""
    if rank < 1:
        raise ValueError("ranks are 1-based")
    for bucket in buckets:
        if rank <= bucket:
            return bucket
    return buckets[-1]


@dataclass(frozen=True)
class CountryToplist:
    """One country's rank-bucketed toplist (the CrUX shape).

    ``entries`` are ``(bucket, domain)`` pairs sorted by ``(bucket,
    domain)``: within a bucket every domain shares the same published
    rank magnitude, so the domain name is the only deterministic
    tie-break. (An earlier cut emitted entries in per-country dict
    insertion order, which leaked the aggregate list's ordering into
    the bucketed output -- pinned by the regression test.)
    """

    country: str
    entries: Tuple[Tuple[int, str], ...]

    def __len__(self) -> int:
        return len(self.entries)

    def domains_within(self, bucket: int) -> List[str]:
        """Domains whose rank magnitude is at most *bucket*, sorted by
        ``(bucket, domain)`` -- the prefix the per-country Figure 5
        analysis evaluates."""
        return [d for b, d in self.entries if b <= bucket]

    def buckets(self) -> List[int]:
        """The distinct magnitudes present, ascending."""
        return sorted({b for b, _ in self.entries})


def per_country_toplists(
    world: World,
    tranco,
    *,
    max_rank: Optional[int] = None,
    buckets: Tuple[int, ...] = RANK_BUCKETS,
) -> Dict[str, CountryToplist]:
    """Bucket the aggregate toplist into per-country CrUX-style lists.

    Walks the Tranco order to *max_rank* (default: the whole list),
    attributes each domain to its registration country, assigns its
    1-based *country rank* (position among that country's domains) and
    publishes only the rank's magnitude bucket. Returns one
    :class:`CountryToplist` per country, keyed by country code, with
    entries deterministically ordered by ``(bucket, domain)``.
    """
    depth = len(tranco) if max_rank is None else min(max_rank, len(tranco))
    collected: Dict[str, List[Tuple[int, str]]] = {}
    for domain in tranco.top(depth):
        country = country_of_domain(domain)
        entries = collected.setdefault(country, [])
        entries.append((rank_bucket(len(entries) + 1, buckets), domain))
    return {
        country: CountryToplist(
            country=country,
            # Deterministic tie-break: equal-rank (same-bucket) domains
            # order by name, never by aggregate-list/dict order.
            entries=tuple(sorted(collected[country])),
        )
        for country in sorted(collected)
    }
