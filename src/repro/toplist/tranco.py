"""Tranco list construction (Dowdall-rule aggregation).

Tranco combines the provider lists with the Dowdall rule: every domain
scores the sum of the reciprocals of its ranks across providers, and the
aggregate list orders domains by descending score (Le Pochat et al.,
NDSS '19). The result is hardened against manipulation of any single
provider and less susceptible to daily fluctuation -- properties we
inherit by construction.

Following the paper, domains with the same TLD+1 are *not* collapsed
("services may vary in their behavior across TLDs", Section 3.5); on the
synthetic web every site already is a distinct eTLD+1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.toplist.providers import PROVIDER_NAMES, provider_ranking
from repro.web.worldgen import World


@dataclass(frozen=True)
class TrancoList:
    """An aggregated toplist over a world.

    ``order[i]`` is the *true* popularity rank of the domain at Tranco
    rank ``i + 1``. Domain names are materialized lazily via the world.
    """

    world: World
    order: np.ndarray

    def __len__(self) -> int:
        return len(self.order)

    def true_rank_at(self, tranco_rank: int) -> int:
        """True popularity rank of the site at 1-based *tranco_rank*."""
        if not 1 <= tranco_rank <= len(self.order):
            raise IndexError(f"tranco rank {tranco_rank} out of range")
        return int(self.order[tranco_rank - 1])

    def top(self, n: int) -> List[str]:
        """Domain names of the Tranco top *n* (generates those sites)."""
        n = min(n, len(self.order))
        return [
            self.world.site(int(true_rank)).domain
            for true_rank in self.order[:n]
        ]

    def top_true_ranks(self, n: int) -> np.ndarray:
        """True ranks of the Tranco top *n*, without site generation."""
        return self.order[: min(n, len(self.order))].copy()

    def tranco_rank_of_true(self, true_rank: int) -> Optional[int]:
        """Tranco rank of a site given its true rank, or ``None``."""
        matches = np.nonzero(self.order == true_rank)[0]
        if len(matches) == 0:
            return None
        return int(matches[0]) + 1


def build_tranco(
    world: World, providers: Sequence[str] = PROVIDER_NAMES
) -> TrancoList:
    """Aggregate the provider rankings into a Tranco list."""
    if not providers:
        raise ValueError("need at least one provider")
    n = world.config.n_domains
    scores = np.zeros(n, dtype=np.float64)
    for name in providers:
        ranking = provider_ranking(world, name)
        positions = ranking.position_of().astype(np.float64)
        listed = positions > 0
        # Dowdall: 1 / rank for listed domains, nothing otherwise.
        scores[listed] += 1.0 / positions[listed]
    order = np.argsort(-scores, kind="stable") + 1
    return TrancoList(world=world, order=order.astype(np.int64))
