"""TCF v2 purposes and features.

Version 2 of the framework refined v1's five purposes into ten, added
*special purposes* (which users cannot opt out of), and split features
into features and *special features* (which require opt-in). The v2
definitions respond directly to the criticism -- cited by the paper --
that v1's purposes were not specific enough to be legally compliant
(Matte, Santos & Bielova, APF 2020).
"""

from __future__ import annotations

from typing import Mapping, Tuple

from repro.tcf.purposes import Feature, Purpose

#: The ten purposes of TCF v2.
PURPOSES_V2: Tuple[Purpose, ...] = (
    Purpose(1, "Store and/or access information on a device",
            "Cookies, device identifiers, or other information can be "
            "stored or accessed on your device."),
    Purpose(2, "Select basic ads",
            "Ads can be shown based on the content you're viewing, the "
            "app you're using, your approximate location, or device type."),
    Purpose(3, "Create a personalised ads profile",
            "A profile can be built about you and your interests to show "
            "you personalised ads that are relevant to you."),
    Purpose(4, "Select personalised ads",
            "Personalised ads can be shown based on a profile about you."),
    Purpose(5, "Create a personalised content profile",
            "A profile can be built about you and your interests to show "
            "you personalised content that is relevant to you."),
    Purpose(6, "Select personalised content",
            "Personalised content can be shown based on a profile about "
            "you."),
    Purpose(7, "Measure ad performance",
            "The performance and effectiveness of ads can be measured."),
    Purpose(8, "Measure content performance",
            "The performance and effectiveness of content can be "
            "measured."),
    Purpose(9, "Apply market research to generate audience insights",
            "Market research can be used to learn more about the "
            "audiences who visit sites/apps and view ads."),
    Purpose(10, "Develop and improve products",
            "Your data can be used to improve existing systems and "
            "software, and to develop new products."),
)

#: Special purposes: processing users cannot object to.
SPECIAL_PURPOSES: Tuple[Purpose, ...] = (
    Purpose(1, "Ensure security, prevent fraud, and debug",
            "Your data can be used to monitor for and prevent fraudulent "
            "activity, and ensure systems work properly and securely."),
    Purpose(2, "Technically deliver ads or content",
            "Your device can receive and send information that allows you "
            "to see and interact with ads and content."),
)

#: v2 features (disclosed, no separate opt-in).
FEATURES_V2: Tuple[Feature, ...] = (
    Feature(1, "Match and combine offline data sources",
            "Data from offline sources can be combined with your online "
            "activity in support of one or more purposes."),
    Feature(2, "Link different devices",
            "Different devices can be determined as belonging to you or "
            "your household."),
    Feature(3, "Receive and use automatically-sent device characteristics "
               "for identification",
            "Your device might be distinguished from other devices based "
            "on information it automatically sends."),
)

#: Special features: require an explicit opt-in.
SPECIAL_FEATURES: Tuple[Feature, ...] = (
    Feature(1, "Use precise geolocation data",
            "Your precise geolocation data can be used in support of one "
            "or more purposes (within a radius of 500 metres)."),
    Feature(2, "Actively scan device characteristics for identification",
            "Your device can be identified based on a scan of your "
            "device's unique combination of characteristics."),
)

PURPOSE_IDS_V2: Tuple[int, ...] = tuple(p.id for p in PURPOSES_V2)
SPECIAL_FEATURE_IDS: Tuple[int, ...] = tuple(f.id for f in SPECIAL_FEATURES)

PURPOSES_V2_BY_ID: Mapping[int, Purpose] = {p.id: p for p in PURPOSES_V2}


def validate_purpose_ids_v2(ids) -> frozenset:
    """Validate and freeze a collection of v2 purpose ids."""
    out = frozenset(int(i) for i in ids)
    unknown = out - set(PURPOSE_IDS_V2)
    if unknown:
        raise ValueError(f"unknown v2 purpose ids: {sorted(unknown)}")
    return out


def validate_special_feature_ids(ids) -> frozenset:
    """Validate and freeze a collection of special-feature ids."""
    out = frozenset(int(i) for i in ids)
    unknown = out - set(SPECIAL_FEATURE_IDS)
    if unknown:
        raise ValueError(f"unknown special feature ids: {sorted(unknown)}")
    return out
