"""Synthetic GVL v2 history: the ecosystem after the paper's window.

The IAB's switch-over deadline fell in August 2020, a month before the
paper's observation window closes. This generator continues the story:
the final v1 list is migrated wholesale (:func:`~repro.tcf.v2.gvl2.
migrate_list`), then evolves weekly in the v2 vocabulary -- joins,
leaves, purpose changes, and vendors gradually declaring *flexible*
purposes as publishers start using publisher restrictions.

Together with ``GvlAnalysis(purpose_ids=range(1, 11))`` this extends the
Figure 7/8 analyses past September 2020.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.tcf.gvl import GlobalVendorList
from repro.tcf.gvlgen import _poisson
from repro.tcf.v2.gvl2 import GlobalVendorListV2, VendorV2, migrate_list
from repro.tcf.v2.purposes import PURPOSE_IDS_V2

V2_CUTOVER = dt.date(2020, 8, 15)


@dataclass(frozen=True)
class Gvl2GenConfig:
    """Parameters of the post-cutover v2 evolution."""

    seed: int = 21
    cutover: dt.date = V2_CUTOVER
    last_date: dt.date = dt.date(2021, 6, 30)
    weekly_join_rate: float = 2.5
    weekly_leave_prob: float = 0.0015
    li_to_consent_prob: float = 0.0022
    consent_to_li_prob: float = 0.0005
    #: Weekly probability per declared purpose of becoming flexible.
    declare_flexible_prob: float = 0.0040
    #: Purpose-10 adoption ("develop and improve products" has no v1
    #: ancestor, so the migrated list starts with nobody declaring it).
    declare_p10_prob: float = 0.0100


def generate_gvl2_history(
    v1_final: GlobalVendorList,
    config: Optional[Gvl2GenConfig] = None,
) -> List[GlobalVendorListV2]:
    """Migrate *v1_final* and evolve it weekly until ``last_date``."""
    config = config or Gvl2GenConfig()
    rng = random.Random(f"{config.seed}:gvl2")
    first = migrate_list(v1_final, version=1, migrated_on=config.cutover)
    vendors: Dict[int, VendorV2] = {v.id: v for v in first.vendors}
    next_id = first.max_vendor_id + 1

    versions = [first]
    date = config.cutover + dt.timedelta(days=7)
    version = 2
    while date <= config.last_date:
        next_id = _advance(rng, vendors, next_id, config)
        versions.append(
            GlobalVendorListV2(
                version=version,
                last_updated=date,
                vendors=tuple(vendors.values()),
            )
        )
        date += dt.timedelta(days=7)
        version += 1
    return versions


def _advance(
    rng: random.Random,
    vendors: Dict[int, VendorV2],
    next_id: int,
    config: Gvl2GenConfig,
) -> int:
    for _ in range(_poisson(rng, config.weekly_join_rate)):
        vendors[next_id] = _new_vendor(rng, next_id)
        next_id += 1
    for vid in list(vendors):
        if rng.random() < config.weekly_leave_prob:
            del vendors[vid]

    for vid, vendor in list(vendors.items()):
        consent: Set[int] = set(vendor.purpose_ids)
        leg_int: Set[int] = set(vendor.leg_int_purpose_ids)
        flexible: Set[int] = set(vendor.flexible_purpose_ids)
        changed = False
        for pid in PURPOSE_IDS_V2:
            if pid in leg_int and rng.random() < config.li_to_consent_prob:
                leg_int.discard(pid)
                consent.add(pid)
                changed = True
            elif pid in consent and rng.random() < config.consent_to_li_prob:
                consent.discard(pid)
                flexible.discard(pid)
                leg_int.add(pid)
                changed = True
        if 10 not in consent | leg_int and rng.random() < config.declare_p10_prob:
            consent.add(10)
            changed = True
        declared = consent | leg_int
        for pid in declared - flexible:
            if rng.random() < config.declare_flexible_prob:
                flexible.add(pid)
                changed = True
        flexible &= declared
        if changed:
            vendors[vid] = VendorV2(
                id=vendor.id,
                name=vendor.name,
                policy_url=vendor.policy_url,
                purpose_ids=frozenset(consent),
                leg_int_purpose_ids=frozenset(leg_int),
                flexible_purpose_ids=frozenset(flexible),
                special_purpose_ids=vendor.special_purpose_ids,
                feature_ids=vendor.feature_ids,
                special_feature_ids=vendor.special_feature_ids,
            )
    return next_id


def _new_vendor(rng: random.Random, vid: int) -> VendorV2:
    consent: Set[int] = set()
    leg_int: Set[int] = set()
    declare_probs = {1: 0.95, 2: 0.7, 3: 0.5, 4: 0.5, 5: 0.3, 6: 0.3,
                     7: 0.6, 8: 0.35, 9: 0.3, 10: 0.4}
    for pid, p in declare_probs.items():
        if rng.random() < p:
            if rng.random() < 0.25:
                leg_int.add(pid)
            else:
                consent.add(pid)
    if not consent and not leg_int:
        consent.add(1)
    return VendorV2(
        id=vid,
        name=f"V2 Vendor {vid}",
        policy_url=f"https://vendor{vid}.example/privacy",
        purpose_ids=frozenset(consent),
        leg_int_purpose_ids=frozenset(leg_int),
        special_purpose_ids=frozenset({1}),
        feature_ids=frozenset(
            fid for fid in (1, 2, 3) if rng.random() < 0.2
        ),
        special_feature_ids=frozenset(
            fid for fid in (1, 2) if rng.random() < 0.12
        ),
    )
