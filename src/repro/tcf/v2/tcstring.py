"""Bit-exact IAB TCF v2 TC-string codec.

The v2 TC string consists of dot-separated, web-safe base64 segments:

* a mandatory **core** segment (version 2) carrying metadata, per-purpose
  consent and legitimate-interest transparency bits, special-feature
  opt-ins, two vendor sections (consent and legitimate interest) and
  publisher restrictions;
* optional **disclosed vendors** (segment type 1) and **allowed
  vendors** (type 2) segments, used with globally-scoped strings;
* an optional **publisher TC** segment (type 3) with the publisher's own
  purpose consents, including custom purposes.

Vendor sections use the same bitfield-vs-range trade-off as v1, except
that v2 ranges have no default-consent bit. This module implements the
format precisely enough that strings round-trip bit-for-bit, which the
property-based tests verify.
"""

from __future__ import annotations

import base64
import datetime as dt
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.tcf.consentstring import (
    BitReader,
    BitWriter,
    ConsentStringError,
    _from_deciseconds,
    _to_deciseconds,
)
from repro.tcf.v2.purposes import (
    validate_purpose_ids_v2,
    validate_special_feature_ids,
)

#: Publisher-restriction types (RestrictionType field).
RESTRICTION_NOT_ALLOWED = 0
RESTRICTION_REQUIRE_CONSENT = 1
RESTRICTION_REQUIRE_LI = 2

_SEGMENT_CORE = 0
_SEGMENT_DISCLOSED_VENDORS = 1
_SEGMENT_ALLOWED_VENDORS = 2
_SEGMENT_PUBLISHER_TC = 3


@dataclass(frozen=True)
class PublisherRestriction:
    """One publisher restriction: the publisher narrows how listed
    vendors may process one purpose."""

    purpose_id: int
    restriction_type: int
    vendor_ids: FrozenSet[int]

    def __post_init__(self) -> None:
        validate_purpose_ids_v2((self.purpose_id,))
        if self.restriction_type not in (0, 1, 2):
            raise ValueError(
                f"unknown restriction type {self.restriction_type}"
            )
        object.__setattr__(
            self, "vendor_ids", frozenset(int(v) for v in self.vendor_ids)
        )
        if not self.vendor_ids:
            raise ValueError("restriction must list at least one vendor")
        if min(self.vendor_ids) < 1:
            raise ValueError("vendor ids are 1-based")


@dataclass(frozen=True)
class PublisherTC:
    """The optional publisher-TC segment."""

    purposes_consent: FrozenSet[int] = frozenset()
    purposes_li_transparency: FrozenSet[int] = frozenset()
    #: Consent bits for the publisher's custom purposes, index 1-based.
    custom_purposes_consent: FrozenSet[int] = frozenset()
    custom_purposes_li: FrozenSet[int] = frozenset()
    num_custom_purposes: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "purposes_consent",
            validate_purpose_ids_v2(self.purposes_consent),
        )
        object.__setattr__(
            self,
            "purposes_li_transparency",
            validate_purpose_ids_v2(self.purposes_li_transparency),
        )
        for name in ("custom_purposes_consent", "custom_purposes_li"):
            ids = frozenset(int(i) for i in getattr(self, name))
            if ids and (min(ids) < 1 or max(ids) > self.num_custom_purposes):
                raise ValueError(
                    f"{name} outside [1, {self.num_custom_purposes}]"
                )
            object.__setattr__(self, name, ids)
        if not 0 <= self.num_custom_purposes < 64:
            raise ValueError("num_custom_purposes must fit in 6 bits")


@dataclass(frozen=True)
class TCString:
    """A decoded TCF v2 TC string."""

    created: dt.datetime
    last_updated: dt.datetime
    cmp_id: int
    cmp_version: int
    consent_screen: int
    consent_language: str
    vendor_list_version: int
    tcf_policy_version: int = 2
    is_service_specific: bool = False
    use_non_standard_stacks: bool = False
    special_feature_opt_ins: FrozenSet[int] = frozenset()
    purposes_consent: FrozenSet[int] = frozenset()
    purposes_li_transparency: FrozenSet[int] = frozenset()
    purpose_one_treatment: bool = False
    publisher_cc: str = "AA"
    vendor_consents: FrozenSet[int] = frozenset()
    vendor_li: FrozenSet[int] = frozenset()
    publisher_restrictions: Tuple[PublisherRestriction, ...] = ()
    disclosed_vendors: Optional[FrozenSet[int]] = None
    allowed_vendors: Optional[FrozenSet[int]] = None
    publisher_tc: Optional[PublisherTC] = None
    version: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "special_feature_opt_ins",
            validate_special_feature_ids(self.special_feature_opt_ins),
        )
        object.__setattr__(
            self,
            "purposes_consent",
            validate_purpose_ids_v2(self.purposes_consent),
        )
        object.__setattr__(
            self,
            "purposes_li_transparency",
            validate_purpose_ids_v2(self.purposes_li_transparency),
        )
        for name in ("vendor_consents", "vendor_li"):
            ids = frozenset(int(v) for v in getattr(self, name))
            if ids and min(ids) < 1:
                raise ValueError("vendor ids are 1-based")
            object.__setattr__(self, name, ids)
        for name in ("disclosed_vendors", "allowed_vendors"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(
                    self, name, frozenset(int(v) for v in value)
                )
        if len(self.consent_language) != 2 or len(self.publisher_cc) != 2:
            raise ValueError("language/country codes are 2 letters")

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        *,
        cmp_id: int,
        vendor_list_version: int,
        created: dt.datetime = dt.datetime(1970, 1, 1, tzinfo=dt.timezone.utc),
        **kwargs,
    ) -> "TCString":
        return cls(
            created=created,
            last_updated=created,
            cmp_id=cmp_id,
            cmp_version=kwargs.pop("cmp_version", 1),
            consent_screen=kwargs.pop("consent_screen", 1),
            consent_language=kwargs.pop("consent_language", "EN"),
            vendor_list_version=vendor_list_version,
            **kwargs,
        )

    def permits(self, vendor_id: int, purpose_id: int) -> bool:
        """True if the string grants *vendor_id* consent for
        *purpose_id*, honouring publisher restrictions."""
        for restriction in self.publisher_restrictions:
            if (
                restriction.purpose_id == purpose_id
                and vendor_id in restriction.vendor_ids
                and restriction.restriction_type == RESTRICTION_NOT_ALLOWED
            ):
                return False
        return (
            purpose_id in self.purposes_consent
            and vendor_id in self.vendor_consents
        )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self) -> str:
        segments = [self._encode_core()]
        if self.disclosed_vendors is not None:
            segments.append(
                _encode_vendor_segment(
                    _SEGMENT_DISCLOSED_VENDORS, self.disclosed_vendors
                )
            )
        if self.allowed_vendors is not None:
            segments.append(
                _encode_vendor_segment(
                    _SEGMENT_ALLOWED_VENDORS, self.allowed_vendors
                )
            )
        if self.publisher_tc is not None:
            segments.append(_encode_publisher_tc(self.publisher_tc))
        return ".".join(segments)

    def _encode_core(self) -> str:
        w = BitWriter()
        w.write_int(self.version, 6)
        w.write_int(_to_deciseconds(self.created), 36)
        w.write_int(_to_deciseconds(self.last_updated), 36)
        w.write_int(self.cmp_id, 12)
        w.write_int(self.cmp_version, 12)
        w.write_int(self.consent_screen, 6)
        for letter in self.consent_language:
            w.write_letter(letter)
        w.write_int(self.vendor_list_version, 12)
        w.write_int(self.tcf_policy_version, 6)
        w.write_bool(self.is_service_specific)
        w.write_bool(self.use_non_standard_stacks)
        w.write_int(_bits_from_ids(self.special_feature_opt_ins, 12), 12)
        w.write_int(_bits_from_ids(self.purposes_consent, 24), 24)
        w.write_int(_bits_from_ids(self.purposes_li_transparency, 24), 24)
        w.write_bool(self.purpose_one_treatment)
        for letter in self.publisher_cc:
            w.write_letter(letter)
        _write_vendor_section(w, self.vendor_consents)
        _write_vendor_section(w, self.vendor_li)
        w.write_int(len(self.publisher_restrictions), 12)
        for restriction in self.publisher_restrictions:
            w.write_int(restriction.purpose_id, 6)
            w.write_int(restriction.restriction_type, 2)
            _write_range_entries(w, sorted(restriction.vendor_ids))
        return _b64(w)


def decode_tc_string(encoded: str) -> TCString:
    """Decode a full (possibly multi-segment) TC string."""
    if not encoded:
        raise ConsentStringError("empty TC string")
    segments = encoded.split(".")
    core = _decode_core(segments[0])
    disclosed: Optional[FrozenSet[int]] = None
    allowed: Optional[FrozenSet[int]] = None
    publisher_tc: Optional[PublisherTC] = None
    for segment in segments[1:]:
        r = BitReader(_unb64(segment))
        segment_type = r.read_int(3)
        if segment_type == _SEGMENT_DISCLOSED_VENDORS:
            disclosed = _read_vendor_section(r)
        elif segment_type == _SEGMENT_ALLOWED_VENDORS:
            allowed = _read_vendor_section(r)
        elif segment_type == _SEGMENT_PUBLISHER_TC:
            publisher_tc = _decode_publisher_tc(r)
        else:
            raise ConsentStringError(
                f"unknown segment type {segment_type}"
            )
    return TCString(
        **{
            **core,
            "disclosed_vendors": disclosed,
            "allowed_vendors": allowed,
            "publisher_tc": publisher_tc,
        }
    )


# ----------------------------------------------------------------------
# Internal encoding helpers
# ----------------------------------------------------------------------
def _b64(w: BitWriter) -> str:
    return base64.urlsafe_b64encode(w.to_bytes()).decode("ascii").rstrip("=")


def _unb64(segment: str) -> bytes:
    padded = segment + "=" * (-len(segment) % 4)
    try:
        return base64.urlsafe_b64decode(padded)
    except (ValueError, TypeError) as exc:
        raise ConsentStringError(f"invalid base64 segment: {exc}") from exc


def _bits_from_ids(ids: Iterable[int], width: int) -> int:
    bits = 0
    for i in ids:
        if not 1 <= i <= width:
            raise ConsentStringError(f"id {i} outside bitfield width {width}")
        bits |= 1 << (width - i)
    return bits


def _ids_from_bits(bits: int, width: int) -> FrozenSet[int]:
    return frozenset(
        i for i in range(1, width + 1) if bits & (1 << (width - i))
    )


def _ranges(ids: Sequence[int]) -> List[Tuple[int, int]]:
    out: List[Tuple[int, int]] = []
    for vid in ids:
        if out and out[-1][1] == vid - 1:
            out[-1] = (out[-1][0], vid)
        else:
            out.append((vid, vid))
    return out


def _write_range_entries(w: BitWriter, ids: Sequence[int]) -> None:
    ranges = _ranges(ids)
    w.write_int(len(ranges), 12)
    for start, end in ranges:
        if start == end:
            w.write_bool(False)
            w.write_int(start, 16)
        else:
            w.write_bool(True)
            w.write_int(start, 16)
            w.write_int(end, 16)


def _read_range_entries(r: BitReader, max_vendor_id: int) -> FrozenSet[int]:
    out: set = set()
    num_entries = r.read_int(12)
    for _ in range(num_entries):
        if r.read_bool():
            start, end = r.read_int(16), r.read_int(16)
        else:
            start = end = r.read_int(16)
        if not 1 <= start <= end <= max(1, max_vendor_id):
            raise ConsentStringError(
                f"invalid vendor range {start}-{end} (max {max_vendor_id})"
            )
        out.update(range(start, end + 1))
    return frozenset(out)


def _write_vendor_section(w: BitWriter, ids: FrozenSet[int]) -> None:
    max_vendor = max(ids) if ids else 0
    w.write_int(max_vendor, 16)
    if max_vendor == 0:
        w.write_bool(False)  # empty bitfield
        return
    ranges = _ranges(sorted(ids))
    range_cost = 12 + sum(33 if a != b else 17 for a, b in ranges)
    if range_cost < max_vendor:
        w.write_bool(True)
        _write_range_entries(w, sorted(ids))
    else:
        w.write_bool(False)
        for vid in range(1, max_vendor + 1):
            w.write_bool(vid in ids)


def _read_vendor_section(r: BitReader) -> FrozenSet[int]:
    max_vendor = r.read_int(16)
    is_range = r.read_bool()
    if max_vendor == 0:
        return frozenset()
    if is_range:
        return _read_range_entries(r, max_vendor)
    return frozenset(
        vid for vid in range(1, max_vendor + 1) if r.read_bool()
    )


def _encode_vendor_segment(segment_type: int, ids: FrozenSet[int]) -> str:
    w = BitWriter()
    w.write_int(segment_type, 3)
    _write_vendor_section(w, ids)
    return _b64(w)


def _encode_publisher_tc(pub: PublisherTC) -> str:
    w = BitWriter()
    w.write_int(_SEGMENT_PUBLISHER_TC, 3)
    w.write_int(_bits_from_ids(pub.purposes_consent, 24), 24)
    w.write_int(_bits_from_ids(pub.purposes_li_transparency, 24), 24)
    w.write_int(pub.num_custom_purposes, 6)
    for i in range(1, pub.num_custom_purposes + 1):
        w.write_bool(i in pub.custom_purposes_consent)
    for i in range(1, pub.num_custom_purposes + 1):
        w.write_bool(i in pub.custom_purposes_li)
    return _b64(w)


def _decode_publisher_tc(r: BitReader) -> PublisherTC:
    purposes_consent = _ids_from_bits(r.read_int(24), 24)
    purposes_li = _ids_from_bits(r.read_int(24), 24)
    num_custom = r.read_int(6)
    custom_consent = frozenset(
        i for i in range(1, num_custom + 1) if r.read_bool()
    )
    custom_li = frozenset(
        i for i in range(1, num_custom + 1) if r.read_bool()
    )
    return PublisherTC(
        purposes_consent=frozenset(p for p in purposes_consent if p <= 10),
        purposes_li_transparency=frozenset(p for p in purposes_li if p <= 10),
        custom_purposes_consent=custom_consent,
        custom_purposes_li=custom_li,
        num_custom_purposes=num_custom,
    )


def _decode_core(segment: str) -> dict:
    r = BitReader(_unb64(segment))
    version = r.read_int(6)
    if version != 2:
        raise ConsentStringError(f"not a v2 TC string (version={version})")
    created = _from_deciseconds(r.read_int(36))
    last_updated = _from_deciseconds(r.read_int(36))
    cmp_id = r.read_int(12)
    cmp_version = r.read_int(12)
    consent_screen = r.read_int(6)
    language = r.read_letter() + r.read_letter()
    vendor_list_version = r.read_int(12)
    tcf_policy_version = r.read_int(6)
    is_service_specific = r.read_bool()
    use_non_standard_stacks = r.read_bool()
    special_features = frozenset(
        i for i in _ids_from_bits(r.read_int(12), 12) if i <= 2
    )
    purposes_consent = frozenset(
        p for p in _ids_from_bits(r.read_int(24), 24) if p <= 10
    )
    purposes_li = frozenset(
        p for p in _ids_from_bits(r.read_int(24), 24) if p <= 10
    )
    purpose_one_treatment = r.read_bool()
    publisher_cc = r.read_letter() + r.read_letter()
    vendor_consents = _read_vendor_section(r)
    vendor_li = _read_vendor_section(r)
    restrictions: List[PublisherRestriction] = []
    num_restrictions = r.read_int(12)
    for _ in range(num_restrictions):
        purpose_id = r.read_int(6)
        restriction_type = r.read_int(2)
        vendors = _read_range_entries(r, 0xFFFF)
        restrictions.append(
            PublisherRestriction(
                purpose_id=purpose_id,
                restriction_type=restriction_type,
                vendor_ids=vendors,
            )
        )
    return dict(
        created=created,
        last_updated=last_updated,
        cmp_id=cmp_id,
        cmp_version=cmp_version,
        consent_screen=consent_screen,
        consent_language=language,
        vendor_list_version=vendor_list_version,
        tcf_policy_version=tcf_policy_version,
        is_service_specific=is_service_specific,
        use_non_standard_stacks=use_non_standard_stacks,
        special_feature_opt_ins=special_features,
        purposes_consent=purposes_consent,
        purposes_li_transparency=purposes_li,
        purpose_one_treatment=purpose_one_treatment,
        publisher_cc=publisher_cc,
        vendor_consents=vendor_consents,
        vendor_li=vendor_li,
        publisher_restrictions=tuple(restrictions),
        version=version,
    )
