"""IAB Transparency and Consent Framework v2.

TCF v2.0 replaced v1 at the very end of the paper's observation window
(the IAB's switch-over deadline was August 2020), so the paper measures
v1 but flags v2 as the ecosystem's next stage. This subpackage
implements the v2 machinery as the natural extension:

* :mod:`repro.tcf.v2.purposes` -- the ten v2 purposes, two special
  purposes, three features and two special features;
* :mod:`repro.tcf.v2.tcstring` -- a bit-exact codec for the v2 TC string
  (core segment with publisher restrictions, plus the optional
  disclosed-vendors and publisher-TC segments);
* :mod:`repro.tcf.v2.cmpapi` -- the ``__tcfapi()`` surface that replaced
  ``__cmp()``.
"""

from repro.tcf.v2.purposes import (
    FEATURES_V2,
    PURPOSES_V2,
    SPECIAL_FEATURES,
    SPECIAL_PURPOSES,
)
from repro.tcf.v2.tcstring import (
    PublisherRestriction,
    PublisherTC,
    TCString,
    decode_tc_string,
)

__all__ = [
    "PURPOSES_V2",
    "SPECIAL_PURPOSES",
    "FEATURES_V2",
    "SPECIAL_FEATURES",
    "TCString",
    "PublisherRestriction",
    "PublisherTC",
    "decode_tc_string",
]
