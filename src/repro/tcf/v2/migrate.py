"""v1 -> v2 consent-string migration.

When TCF v2 replaced v1 at the end of the paper's window, CMPs had to
re-prompt or migrate stored v1 consent. The IAB's migration guidance
maps v1's five coarse purposes onto v2's ten refined ones; this module
implements that mapping so a stored ``euconsent`` cookie can be upgraded
into a TC string (marked so that vendors can tell migrated consent from
freshly collected v2 consent).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.tcf.consentstring import ConsentString
from repro.tcf.v2.tcstring import TCString

#: v1 purpose -> v2 purposes, per the IAB's published correspondence:
#: v1 "Information storage and access" maps to v2 purpose 1;
#: v1 "Personalisation" covers profile building and selection for both
#: ads and content; v1 "Ad selection, delivery, reporting" maps to basic
#: ads plus ad measurement; v1 "Content selection..." to content
#: selection; v1 "Measurement" to content/ad measurement and insights.
V1_TO_V2_PURPOSES: Dict[int, Tuple[int, ...]] = {
    1: (1,),
    2: (3, 4, 5, 6),
    3: (2, 7),
    4: (5, 6),
    5: (8, 9),
}


def upgrade_purposes(v1_purposes: FrozenSet[int]) -> FrozenSet[int]:
    """Map a set of v1 purpose ids to their v2 equivalents."""
    out: set = set()
    for pid in v1_purposes:
        try:
            out.update(V1_TO_V2_PURPOSES[pid])
        except KeyError:
            raise ValueError(f"unknown v1 purpose id {pid}")
    return frozenset(out)


def upgrade_consent_string(
    v1: ConsentString,
    *,
    tcf_policy_version: int = 2,
    publisher_cc: str = "AA",
) -> TCString:
    """Upgrade a stored v1 consent string to a v2 TC string.

    The migrated string keeps the original creation timestamp (the
    consent was given then), carries the same vendor consents, and --
    following the conservative reading of the guidance -- grants **no**
    legitimate-interest transparency and **no** special-feature opt-ins,
    since v1 never asked the user about either.
    """
    return TCString(
        created=v1.created,
        last_updated=v1.last_updated,
        cmp_id=v1.cmp_id,
        cmp_version=v1.cmp_version,
        consent_screen=v1.consent_screen,
        consent_language=v1.consent_language,
        vendor_list_version=v1.vendor_list_version,
        tcf_policy_version=tcf_policy_version,
        is_service_specific=False,
        purposes_consent=upgrade_purposes(v1.allowed_purposes),
        purposes_li_transparency=frozenset(),
        special_feature_opt_ins=frozenset(),
        publisher_cc=publisher_cc,
        vendor_consents=v1.vendor_consents,
        vendor_li=frozenset(),
    )
