"""Emulation of the TCF v2 ``__tcfapi()`` in-page API.

v2 replaced ``__cmp()`` with ``window.__tcfapi(command, version,
callback, ...)`` and an event-driven model: listeners receive a
``TCData`` object whose ``eventStatus`` walks through ``tcloaded`` or
``cmpuishown`` -> ``useractioncomplete``. The measurement instrumentation
that the paper built on ``__cmp('ping')`` polling maps onto
``addEventListener`` here -- the timestamps it yields are the same three
the experiment logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.tcf.v2.tcstring import TCString


class EventStatus(enum.Enum):
    TC_LOADED = "tcloaded"
    CMP_UI_SHOWN = "cmpuishown"
    USER_ACTION_COMPLETE = "useractioncomplete"


@dataclass(frozen=True)
class TCData:
    """The object handed to ``__tcfapi`` listeners."""

    tc_string: Optional[str]
    event_status: EventStatus
    gdpr_applies: bool
    cmp_id: int
    cmp_status: str = "loaded"
    listener_id: Optional[int] = None


Listener = Callable[[TCData, bool], None]


class TcfApiError(RuntimeError):
    """Invalid command sequence on the __tcfapi surface."""


@dataclass
class TcfApi:
    """State machine of one page visit's ``__tcfapi``."""

    cmp_id: int
    gdpr_applies: bool = True
    stored_tc: Optional[TCString] = None

    _listeners: List[Tuple[int, Listener]] = field(
        default_factory=list, init=False
    )
    _next_listener_id: int = field(default=1, init=False)
    _ui_shown_at: Optional[float] = field(default=None, init=False)
    _completed_at: Optional[float] = field(default=None, init=False)
    _tc: Optional[TCString] = field(default=None, init=False)
    _loaded: bool = field(default=False, init=False)

    # ------------------------------------------------------------------
    # Lifecycle (driven by the page simulator)
    # ------------------------------------------------------------------
    def load(self, at: float) -> None:
        if self._loaded:
            raise TcfApiError("CMP already loaded")
        self._loaded = True
        if self.stored_tc is not None:
            self._tc = self.stored_tc
            self._emit(EventStatus.TC_LOADED)
        else:
            self._ui_shown_at = at
            self._emit(EventStatus.CMP_UI_SHOWN)

    def complete(self, tc: TCString, at: float) -> None:
        """The user finishes interacting with the UI."""
        if not self._loaded:
            raise TcfApiError("CMP not loaded")
        if self._ui_shown_at is None:
            raise TcfApiError("no UI was shown (stored decision)")
        if self._completed_at is not None:
            raise TcfApiError("interaction already complete")
        if at < self._ui_shown_at:
            raise TcfApiError("completion precedes UI display")
        self._tc = tc
        self._completed_at = at
        self._emit(EventStatus.USER_ACTION_COMPLETE)

    # ------------------------------------------------------------------
    # The command surface
    # ------------------------------------------------------------------
    def add_event_listener(self, listener: Listener) -> int:
        """``__tcfapi('addEventListener', 2, cb)``; fires immediately
        with the current state, then on every transition."""
        listener_id = self._next_listener_id
        self._next_listener_id += 1
        self._listeners.append((listener_id, listener))
        listener(self._tc_data(self._current_status(), listener_id), True)
        return listener_id

    def remove_event_listener(self, listener_id: int) -> bool:
        """``__tcfapi('removeEventListener', 2, cb, listenerId)``."""
        before = len(self._listeners)
        self._listeners = [
            (lid, cb) for lid, cb in self._listeners if lid != listener_id
        ]
        return len(self._listeners) < before

    def get_tc_data(self) -> TCData:
        """``__tcfapi('getTCData', 2, cb)``."""
        if not self._loaded:
            raise TcfApiError("__tcfapi is not installed yet")
        return self._tc_data(self._current_status(), None)

    def ping(self) -> dict:
        """``__tcfapi('ping', 2, cb)``."""
        return {
            "gdprApplies": self.gdpr_applies,
            "cmpLoaded": self._loaded,
            "cmpStatus": "loaded" if self._loaded else "stub",
            "displayStatus": (
                "visible"
                if self._ui_shown_at is not None
                and self._completed_at is None
                else "hidden"
            ),
            "apiVersion": "2.0",
            "cmpId": self.cmp_id,
        }

    # ------------------------------------------------------------------
    @property
    def interaction_time(self) -> Optional[float]:
        if self._ui_shown_at is None or self._completed_at is None:
            return None
        return self._completed_at - self._ui_shown_at

    def _current_status(self) -> EventStatus:
        if self._completed_at is not None:
            return EventStatus.USER_ACTION_COMPLETE
        if self._ui_shown_at is not None:
            return EventStatus.CMP_UI_SHOWN
        return EventStatus.TC_LOADED

    def _tc_data(
        self, status: EventStatus, listener_id: Optional[int]
    ) -> TCData:
        return TCData(
            tc_string=self._tc.encode() if self._tc is not None else None,
            event_status=status,
            gdpr_applies=self.gdpr_applies,
            cmp_id=self.cmp_id,
            listener_id=listener_id,
        )

    def _emit(self, status: EventStatus) -> None:
        for listener_id, listener in list(self._listeners):
            listener(self._tc_data(status, listener_id), True)
