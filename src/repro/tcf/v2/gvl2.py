"""Global Vendor List v2 model and the v1 -> v2 list migration.

With TCF v2, vendor declarations became richer: besides purposes
(consent) and legitimate-interest purposes, vendors declare *flexible*
purposes (where the publisher may override the legal basis via publisher
restrictions), *special purposes*, features and *special features*.

:func:`migrate_vendor` / :func:`migrate_list` implement the ecosystem's
August 2020 transition: every v1 vendor's declarations are mapped onto
the v2 vocabulary with the same purpose correspondence used for consent
strings (:mod:`repro.tcf.v2.migrate`), which lets the longitudinal
Figure 7/8 analyses extend past the paper's observation window.
"""

from __future__ import annotations

import datetime as dt
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.tcf.gvl import GlobalVendorList, Vendor
from repro.tcf.v2.migrate import upgrade_purposes
from repro.tcf.v2.purposes import (
    PURPOSE_IDS_V2,
    validate_purpose_ids_v2,
    validate_special_feature_ids,
)


@dataclass(frozen=True)
class VendorV2:
    """One advertiser on the v2 Global Vendor List."""

    id: int
    name: str
    policy_url: str
    purpose_ids: FrozenSet[int]
    leg_int_purpose_ids: FrozenSet[int]
    #: Purposes whose legal basis the publisher may flip via a publisher
    #: restriction (must be declared under consent or LI as well).
    flexible_purpose_ids: FrozenSet[int] = frozenset()
    special_purpose_ids: FrozenSet[int] = frozenset()
    feature_ids: FrozenSet[int] = frozenset()
    special_feature_ids: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.id < 1:
            raise ValueError("vendor ids are 1-based")
        for name in ("purpose_ids", "leg_int_purpose_ids",
                     "flexible_purpose_ids"):
            object.__setattr__(
                self, name, validate_purpose_ids_v2(getattr(self, name))
            )
        sp = frozenset(int(i) for i in self.special_purpose_ids)
        if sp - {1, 2}:
            raise ValueError(f"unknown special purposes {sorted(sp - {1, 2})}")
        object.__setattr__(self, "special_purpose_ids", sp)
        ft = frozenset(int(i) for i in self.feature_ids)
        if ft - {1, 2, 3}:
            raise ValueError(f"unknown features {sorted(ft - {1, 2, 3})}")
        object.__setattr__(self, "feature_ids", ft)
        object.__setattr__(
            self,
            "special_feature_ids",
            validate_special_feature_ids(self.special_feature_ids),
        )
        overlap = self.purpose_ids & self.leg_int_purpose_ids
        if overlap:
            raise ValueError(
                f"vendor {self.id} declares purposes {sorted(overlap)} on "
                "both bases"
            )
        stray = self.flexible_purpose_ids - (
            self.purpose_ids | self.leg_int_purpose_ids
        )
        if stray:
            raise ValueError(
                f"flexible purposes {sorted(stray)} not declared at all"
            )

    @property
    def declared_purposes(self) -> FrozenSet[int]:
        return self.purpose_ids | self.leg_int_purpose_ids

    def basis_for(self, purpose_id: int) -> Optional[str]:
        if purpose_id in self.purpose_ids:
            return "consent"
        if purpose_id in self.leg_int_purpose_ids:
            return "legitimate-interest"
        return None


@dataclass(frozen=True)
class GlobalVendorListV2:
    """One published version of the v2 GVL."""

    #: v2 restarted its version counter; ``gvl_specification_version`` is
    #: fixed at 2.
    version: int
    last_updated: dt.date
    vendors: Tuple[VendorV2, ...]
    gvl_specification_version: int = 2
    _by_id: Mapping[int, VendorV2] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        by_id = {}
        for v in self.vendors:
            if v.id in by_id:
                raise ValueError(
                    f"duplicate vendor id {v.id} in GVL v2 #{self.version}"
                )
            by_id[v.id] = v
        object.__setattr__(self, "_by_id", by_id)

    def __len__(self) -> int:
        return len(self.vendors)

    def __contains__(self, vendor_id: int) -> bool:
        return vendor_id in self._by_id

    def get(self, vendor_id: int) -> Optional[VendorV2]:
        return self._by_id.get(vendor_id)

    @property
    def vendor_ids(self) -> FrozenSet[int]:
        return frozenset(self._by_id)

    @property
    def max_vendor_id(self) -> int:
        return max(self._by_id) if self._by_id else 0

    def purpose_histogram(self, basis: str = "any") -> Dict[int, int]:
        counts = {pid: 0 for pid in PURPOSE_IDS_V2}
        for vendor in self.vendors:
            if basis == "consent":
                declared = vendor.purpose_ids
            elif basis == "legitimate-interest":
                declared = vendor.leg_int_purpose_ids
            elif basis == "any":
                declared = vendor.declared_purposes
            else:
                raise ValueError(f"unknown basis {basis!r}")
            for pid in declared:
                counts[pid] += 1
        return counts

    def to_json(self) -> str:
        payload = {
            "gvlSpecificationVersion": self.gvl_specification_version,
            "vendorListVersion": self.version,
            "lastUpdated": self.last_updated.isoformat(),
            "vendors": {
                str(v.id): {
                    "id": v.id,
                    "name": v.name,
                    "policyUrl": v.policy_url,
                    "purposes": sorted(v.purpose_ids),
                    "legIntPurposes": sorted(v.leg_int_purpose_ids),
                    "flexiblePurposes": sorted(v.flexible_purpose_ids),
                    "specialPurposes": sorted(v.special_purpose_ids),
                    "features": sorted(v.feature_ids),
                    "specialFeatures": sorted(v.special_feature_ids),
                }
                for v in sorted(self.vendors, key=lambda v: v.id)
            },
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "GlobalVendorListV2":
        payload = json.loads(text)
        vendors = tuple(
            VendorV2(
                id=v["id"],
                name=v["name"],
                policy_url=v["policyUrl"],
                purpose_ids=frozenset(v["purposes"]),
                leg_int_purpose_ids=frozenset(v["legIntPurposes"]),
                flexible_purpose_ids=frozenset(v.get("flexiblePurposes", ())),
                special_purpose_ids=frozenset(v.get("specialPurposes", ())),
                feature_ids=frozenset(v.get("features", ())),
                special_feature_ids=frozenset(v.get("specialFeatures", ())),
            )
            for v in payload["vendors"].values()
        )
        return cls(
            version=payload["vendorListVersion"],
            last_updated=dt.date.fromisoformat(payload["lastUpdated"]),
            vendors=vendors,
        )


# ----------------------------------------------------------------------
# v1 -> v2 migration
# ----------------------------------------------------------------------
#: v1 features map onto v2 features 1/2 and special feature 1 (precise
#: geolocation became an opt-in special feature).
_V1_FEATURE_TO_V2 = {1: ("feature", 1), 2: ("feature", 2), 3: ("special", 1)}


def migrate_vendor(vendor: Vendor) -> VendorV2:
    """Translate one v1 vendor declaration into the v2 vocabulary.

    Purposes map through the consent correspondence; a purpose whose v2
    images split across both bases stays on its v1 basis for all of
    them. Every migrated vendor gains special purpose 1 (security /
    fraud prevention), which v2 made explicit for the whole ecosystem.
    """
    consent = upgrade_purposes(vendor.purpose_ids)
    leg_int = upgrade_purposes(vendor.leg_int_purpose_ids) - consent
    features: set = set()
    special_features: set = set()
    for fid in vendor.feature_ids:
        kind, target = _V1_FEATURE_TO_V2[fid]
        if kind == "feature":
            features.add(target)
        else:
            special_features.add(target)
    return VendorV2(
        id=vendor.id,
        name=vendor.name,
        policy_url=vendor.policy_url,
        purpose_ids=consent,
        leg_int_purpose_ids=leg_int,
        flexible_purpose_ids=frozenset(),
        special_purpose_ids=frozenset({1}),
        feature_ids=frozenset(features),
        special_feature_ids=frozenset(special_features),
    )


def migrate_list(
    v1_list: GlobalVendorList,
    *,
    version: int = 1,
    migrated_on: Optional[dt.date] = None,
) -> GlobalVendorListV2:
    """Migrate a whole v1 GVL into a v2 list (the August 2020 cut-over)."""
    return GlobalVendorListV2(
        version=version,
        last_updated=migrated_on or v1_list.last_updated,
        vendors=tuple(migrate_vendor(v) for v in v1_list.vendors),
    )
