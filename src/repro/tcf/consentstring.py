"""Bit-exact IAB TCF v1.1 consent-string codec.

The consent string is the payload of the global consent cookie
(``euconsent``) that CMPs store and share (Section 2.2). The paper's
timing experiment reads it back through ``__cmp('getConsentData', ...)``
and via Quantcast's ``CookieAccess`` endpoint; this module implements the
format those tools operate on.

Format (Consent String SDK v1.1):

======================  ====  =======================================
Field                   Bits  Meaning
======================  ====  =======================================
Version                 6     always 1
Created                 36    epoch time in deciseconds
LastUpdated             36    epoch time in deciseconds
CmpId                   12    id of the CMP that wrote the string
CmpVersion              12    CMP version
ConsentScreen           6     screen number within the dialog
ConsentLanguage         12    two 6-bit letters ('A'=0), e.g. "EN"
VendorListVersion       12    GVL version consent was given against
PurposesAllowed         24    bit i (MSB first) = purpose i+1 allowed
MaxVendorId             16    highest vendor id covered
EncodingType            1     0 = bitfield, 1 = range
-- bitfield --          MaxVendorId bits, bit i = vendor i+1 consent
-- range --             DefaultConsent(1) NumEntries(12) then entries:
                        IsRange(1) + VendorId(16) or Start(16)+End(16)
======================  ====  =======================================

The string is serialized as web-safe (URL-safe) base64 without padding.
The encoder automatically picks the smaller of the two vendor encodings,
exactly like the reference SDK does.
"""

from __future__ import annotations

import base64
import datetime as dt
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

from repro.tcf.purposes import validate_purpose_ids


class ConsentStringError(ValueError):
    """Raised when a consent string cannot be decoded."""


# ----------------------------------------------------------------------
# Bit-level plumbing
# ----------------------------------------------------------------------
class BitWriter:
    """Accumulates an MSB-first bit string."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write_int(self, value: int, width: int) -> None:
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_bool(self, value: bool) -> None:
        self._bits.append(1 if value else 0)

    def write_letter(self, letter: str) -> None:
        """Write one 6-bit letter, 'A' = 0 ... 'Z' = 25."""
        code = ord(letter.upper()) - ord("A")
        if not 0 <= code < 26:
            raise ValueError(f"not an ASCII letter: {letter!r}")
        self.write_int(code, 6)

    def __len__(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        bits = self._bits[:]
        while len(bits) % 8:
            bits.append(0)
        out = bytearray()
        for i in range(0, len(bits), 8):
            byte = 0
            for b in bits[i : i + 8]:
                byte = (byte << 1) | b
            out.append(byte)
        return bytes(out)


class BitReader:
    """Reads an MSB-first bit string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read_int(self, width: int) -> int:
        if width > self.remaining:
            raise ConsentStringError("consent string truncated")
        value = 0
        for _ in range(width):
            byte = self._data[self._pos // 8]
            bit = (byte >> (7 - self._pos % 8)) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value

    def read_bool(self) -> bool:
        return self.read_int(1) == 1

    def read_letter(self) -> str:
        code = self.read_int(6)
        if code >= 26:
            raise ConsentStringError(f"invalid language letter code {code}")
        return chr(ord("A") + code)


# ----------------------------------------------------------------------
# The consent string itself
# ----------------------------------------------------------------------
_EPOCH = dt.datetime(1970, 1, 1, tzinfo=dt.timezone.utc)


def _to_deciseconds(when: dt.datetime) -> int:
    if when.tzinfo is None:
        when = when.replace(tzinfo=dt.timezone.utc)
    return int((when - _EPOCH).total_seconds() * 10)


def _from_deciseconds(ds: int) -> dt.datetime:
    return _EPOCH + dt.timedelta(seconds=ds / 10)


@dataclass(frozen=True)
class ConsentString:
    """A decoded TCF v1.1 consent string.

    ``allowed_purposes`` and ``vendor_consents`` are frozen sets of 1-based
    ids. ``max_vendor_id`` bounds the vendor space the string covers;
    consent for vendors above it is undefined (treated as no consent).
    """

    created: dt.datetime
    last_updated: dt.datetime
    cmp_id: int
    cmp_version: int
    consent_screen: int
    consent_language: str
    vendor_list_version: int
    allowed_purposes: FrozenSet[int]
    max_vendor_id: int
    vendor_consents: FrozenSet[int]
    version: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "allowed_purposes", validate_purpose_ids(self.allowed_purposes)
        )
        vc = frozenset(int(v) for v in self.vendor_consents)
        if any(v < 1 or v > self.max_vendor_id for v in vc):
            raise ValueError("vendor id outside [1, max_vendor_id]")
        object.__setattr__(self, "vendor_consents", vc)
        if len(self.consent_language) != 2:
            raise ValueError("consent language must be 2 letters")
        if self.max_vendor_id < 1:
            raise ValueError("max_vendor_id must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        *,
        cmp_id: int,
        vendor_list_version: int,
        max_vendor_id: int,
        allowed_purposes: Iterable[int] = (),
        vendor_consents: Iterable[int] = (),
        created: dt.datetime = _EPOCH,
        cmp_version: int = 1,
        consent_screen: int = 1,
        consent_language: str = "EN",
    ) -> "ConsentString":
        """Convenience constructor with sensible defaults."""
        return cls(
            created=created,
            last_updated=created,
            cmp_id=cmp_id,
            cmp_version=cmp_version,
            consent_screen=consent_screen,
            consent_language=consent_language,
            vendor_list_version=vendor_list_version,
            allowed_purposes=frozenset(allowed_purposes),
            max_vendor_id=max_vendor_id,
            vendor_consents=frozenset(vendor_consents),
        )

    def permits(self, vendor_id: int, purpose_id: int) -> bool:
        """True if this string grants *vendor_id* consent for *purpose_id*."""
        return purpose_id in self.allowed_purposes and vendor_id in self.vendor_consents

    @property
    def consents_to_all_purposes(self) -> bool:
        return self.allowed_purposes == frozenset(range(1, 6))

    @property
    def is_full_opt_out(self) -> bool:
        return not self.allowed_purposes and not self.vendor_consents

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self) -> str:
        """Serialize to the web-safe base64 wire format."""
        w = BitWriter()
        w.write_int(self.version, 6)
        w.write_int(_to_deciseconds(self.created), 36)
        w.write_int(_to_deciseconds(self.last_updated), 36)
        w.write_int(self.cmp_id, 12)
        w.write_int(self.cmp_version, 12)
        w.write_int(self.consent_screen, 6)
        for letter in self.consent_language:
            w.write_letter(letter)
        w.write_int(self.vendor_list_version, 12)
        purpose_bits = 0
        for pid in self.allowed_purposes:
            purpose_bits |= 1 << (24 - pid)
        w.write_int(purpose_bits, 24)
        w.write_int(self.max_vendor_id, 16)

        bitfield_cost = self.max_vendor_id
        ranges, default = self._vendor_ranges()
        range_cost = 1 + 12 + sum(33 if a != b else 17 for a, b in ranges)
        if range_cost < bitfield_cost:
            w.write_bool(True)  # EncodingType = range
            w.write_bool(default)
            w.write_int(len(ranges), 12)
            for start, end in ranges:
                if start == end:
                    w.write_bool(False)
                    w.write_int(start, 16)
                else:
                    w.write_bool(True)
                    w.write_int(start, 16)
                    w.write_int(end, 16)
        else:
            w.write_bool(False)  # EncodingType = bitfield
            for vid in range(1, self.max_vendor_id + 1):
                w.write_bool(vid in self.vendor_consents)
        return base64.urlsafe_b64encode(w.to_bytes()).decode("ascii").rstrip("=")

    def _vendor_ranges(self) -> Tuple[List[Tuple[int, int]], bool]:
        """Compute the range encoding: runs of the *minority* value.

        Returns ``(ranges, default_consent)`` where the ranges list the
        vendor ids whose consent differs from the default.
        """
        consenting = sorted(self.vendor_consents)
        default = len(consenting) > self.max_vendor_id // 2
        if default:
            listed = sorted(
                set(range(1, self.max_vendor_id + 1)) - self.vendor_consents
            )
        else:
            listed = consenting
        ranges: List[Tuple[int, int]] = []
        for vid in listed:
            if ranges and ranges[-1][1] == vid - 1:
                ranges[-1] = (ranges[-1][0], vid)
            else:
                ranges.append((vid, vid))
        return ranges, default


def decode_consent_string(encoded: str) -> ConsentString:
    """Decode a web-safe base64 consent string.

    Raises:
        ConsentStringError: on malformed input (bad base64, unsupported
            version, truncated bitstream, invalid range entries).
    """
    padded = encoded + "=" * (-len(encoded) % 4)
    try:
        data = base64.urlsafe_b64decode(padded)
    except (ValueError, TypeError) as exc:
        raise ConsentStringError(f"invalid base64: {exc}") from exc
    r = BitReader(data)
    version = r.read_int(6)
    if version != 1:
        raise ConsentStringError(f"unsupported consent string version {version}")
    created = _from_deciseconds(r.read_int(36))
    last_updated = _from_deciseconds(r.read_int(36))
    cmp_id = r.read_int(12)
    cmp_version = r.read_int(12)
    consent_screen = r.read_int(6)
    language = r.read_letter() + r.read_letter()
    vendor_list_version = r.read_int(12)
    purpose_bits = r.read_int(24)
    allowed = frozenset(
        pid for pid in range(1, 6) if purpose_bits & (1 << (24 - pid))
    )
    max_vendor_id = r.read_int(16)
    if max_vendor_id < 1:
        raise ConsentStringError("max_vendor_id must be >= 1")
    is_range = r.read_bool()
    consents: set = set()
    if is_range:
        default = r.read_bool()
        num_entries = r.read_int(12)
        listed: set = set()
        for _ in range(num_entries):
            if r.read_bool():
                start, end = r.read_int(16), r.read_int(16)
            else:
                start = end = r.read_int(16)
            if not 1 <= start <= end <= max_vendor_id:
                raise ConsentStringError(
                    f"invalid vendor range {start}-{end} (max {max_vendor_id})"
                )
            listed.update(range(start, end + 1))
        if default:
            consents = set(range(1, max_vendor_id + 1)) - listed
        else:
            consents = listed
    else:
        for vid in range(1, max_vendor_id + 1):
            if r.read_bool():
                consents.add(vid)
    return ConsentString(
        created=created,
        last_updated=last_updated,
        cmp_id=cmp_id,
        cmp_version=cmp_version,
        consent_screen=consent_screen,
        consent_language=language,
        vendor_list_version=vendor_list_version,
        allowed_purposes=allowed,
        max_vendor_id=max_vendor_id,
        vendor_consents=frozenset(consents),
    )
