"""Synthetic Global Vendor List history generator.

The paper downloads all 215 published versions of the real GVL
(Section 3.4). Offline, we generate a synthetic history with the same
observable dynamics, calibrated against Figures 7 and 8:

* the list starts small in spring 2018 and spikes sharply as the GDPR
  comes into effect (2018-05-25), then keeps growing slowly;
* purpose 1 ("Information storage and access") is always the most
  declared purpose;
* for every purpose, at least a fifth of vendors claim legitimate
  interest rather than asking for consent (Section 5.2);
* among existing members, strictly more purpose declarations move from
  legitimate interest to consent than the other way round, with activity
  bursts around GDPR enforcement and again in March/April 2020.

The generator is fully deterministic given a seed, and produces
:class:`~repro.tcf.gvl.GlobalVendorList` objects that round-trip through
the JSON archive format.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.tcf.gvl import GlobalVendorList, Vendor
from repro.tcf.purposes import FEATURE_IDS, PURPOSE_IDS

#: The real list's first public version appeared in late April 2018.
GVL_FIRST_DATE = dt.date(2018, 4, 25)
GVL_LAST_DATE = dt.date(2020, 9, 16)
GDPR_EFFECTIVE = dt.date(2018, 5, 25)

_NAME_PREFIXES = (
    "Ad", "Bid", "Click", "Data", "Pixel", "Reach", "Tag", "Track",
    "Audience", "Churn", "Funnel", "Yield", "Spark", "Nova", "Omni",
    "Meta", "Hyper", "Smart", "Deep", "True", "Pure", "Prime", "Vertex",
)
_NAME_SUFFIXES = (
    "metrics", "works", "lab", "ly", "stream", "grid", "mob", "nexus",
    "matic", "scale", "loop", "logic", "mind", "pulse", "spot", "base",
    "wave", "forge", "lens", "path", "sense", "sync", "verse",
)
_NAME_LEGAL = ("Inc.", "GmbH", "Ltd.", "S.A.", "B.V.", "LLC", "AG")

#: Per-purpose probability that a newly joining vendor declares the
#: purpose at all; purpose 1 is near-universal (Figure 7).
_DECLARE_PROB = {1: 0.97, 2: 0.62, 3: 0.80, 4: 0.38, 5: 0.70}

#: Per-purpose probability that a declaring vendor claims legitimate
#: interest instead of requesting consent. Calibrated so that at least a
#: fifth of vendors claim LI for every purpose (Section 5.2).
_LI_PROB = {1: 0.27, 2: 0.30, 3: 0.31, 4: 0.34, 5: 0.38}


@dataclass(frozen=True)
class GvlGenConfig:
    """Tunable parameters of the synthetic GVL history."""

    seed: int = 20
    first_date: dt.date = GVL_FIRST_DATE
    last_date: dt.date = GVL_LAST_DATE
    #: Vendors on the very first published version.
    initial_vendors: int = 120
    #: Weekly join rate outside any burst window.
    base_join_rate: float = 3.0
    #: Weekly leave probability per vendor.
    leave_prob: float = 0.0020
    #: Weekly probability per (vendor, declared purpose) of an LI->consent
    #: switch outside burst windows; the reverse direction is rarer.
    li_to_consent_prob: float = 0.0030
    consent_to_li_prob: float = 0.0005
    #: Weekly probability of declaring a new purpose / dropping one.
    new_purpose_prob: float = 0.0012
    drop_purpose_prob: float = 0.0005


#: (start, end, join-rate multiplier, switch-rate multiplier) burst
#: windows: the GDPR rush and the March/April 2020 activity the paper
#: observes in Figure 8.
_BURSTS: Tuple[Tuple[dt.date, dt.date, float, float], ...] = (
    (dt.date(2018, 4, 25), dt.date(2018, 7, 15), 18.0, 20.0),
    (dt.date(2020, 3, 1), dt.date(2020, 4, 30), 1.5, 5.0),
)


def _burst_multipliers(date: dt.date) -> Tuple[float, float]:
    join_mult = switch_mult = 1.0
    for start, end, jm, sm in _BURSTS:
        if start <= date <= end:
            join_mult = max(join_mult, jm)
            switch_mult = max(switch_mult, sm)
    return join_mult, switch_mult


class GvlHistoryGenerator:
    """Generates a full synthetic GVL version history."""

    def __init__(self, config: Optional[GvlGenConfig] = None):
        self.config = config or GvlGenConfig()
        self._rng = random.Random(self.config.seed)
        self._next_vendor_id = 1
        self._used_names: Set[str] = set()

    # ------------------------------------------------------------------
    def generate(self) -> List[GlobalVendorList]:
        """Produce the weekly version history, oldest first."""
        vendors: Dict[int, Vendor] = {}
        for _ in range(self.config.initial_vendors):
            v = self._new_vendor()
            vendors[v.id] = v

        # The real list was updated every couple of days in 2018 and
        # weekly from 2019 on, totalling 215 versions over the study
        # window; we mirror that publishing cadence.
        versions: List[GlobalVendorList] = []
        date = self.config.first_date
        version = 1
        while date <= self.config.last_date:
            versions.append(
                GlobalVendorList(
                    version=version,
                    last_updated=date,
                    vendors=tuple(vendors.values()),
                )
            )
            step = 2 if date < dt.date(2019, 1, 1) else 7
            date += dt.timedelta(days=step)
            version += 1
            self._advance(vendors, date, days=step)
        return versions

    # ------------------------------------------------------------------
    def _advance(
        self, vendors: Dict[int, Vendor], date: dt.date, days: int
    ) -> None:
        rng = self._rng
        join_mult, switch_mult = _burst_multipliers(date)
        # Config rates are per week; scale to the publishing interval.
        scale = days / 7.0
        join_mult *= scale
        switch_mult *= scale

        # Joins (Poisson-ish via repeated Bernoulli draws).
        expected_joins = self.config.base_join_rate * join_mult
        n_joins = _poisson(rng, expected_joins)
        for _ in range(n_joins):
            v = self._new_vendor()
            vendors[v.id] = v

        # Leaves.
        leave_prob = self.config.leave_prob * scale
        drop_prob = self.config.drop_purpose_prob * scale
        new_prob = self.config.new_purpose_prob * scale
        for vid in list(vendors):
            if rng.random() < leave_prob:
                del vendors[vid]

        # Purpose-declaration changes of existing members.
        for vid, vendor in list(vendors.items()):
            purposes = set(vendor.purpose_ids)
            leg_int = set(vendor.leg_int_purpose_ids)
            changed = False
            for pid in PURPOSE_IDS:
                if pid in leg_int:
                    if rng.random() < self.config.li_to_consent_prob * switch_mult:
                        leg_int.discard(pid)
                        purposes.add(pid)
                        changed = True
                    elif rng.random() < drop_prob:
                        leg_int.discard(pid)
                        changed = True
                elif pid in purposes:
                    if rng.random() < self.config.consent_to_li_prob * switch_mult:
                        purposes.discard(pid)
                        leg_int.add(pid)
                        changed = True
                    elif rng.random() < drop_prob:
                        purposes.discard(pid)
                        changed = True
                else:
                    if rng.random() < new_prob:
                        if rng.random() < _LI_PROB[pid]:
                            leg_int.add(pid)
                        else:
                            purposes.add(pid)
                        changed = True
            if changed:
                vendors[vid] = Vendor(
                    id=vendor.id,
                    name=vendor.name,
                    policy_url=vendor.policy_url,
                    purpose_ids=frozenset(purposes),
                    leg_int_purpose_ids=frozenset(leg_int),
                    feature_ids=vendor.feature_ids,
                )

    # ------------------------------------------------------------------
    def _new_vendor(self) -> Vendor:
        rng = self._rng
        name = self._fresh_name()
        purposes: Set[int] = set()
        leg_int: Set[int] = set()
        for pid in PURPOSE_IDS:
            if rng.random() < _DECLARE_PROB[pid]:
                if rng.random() < _LI_PROB[pid]:
                    leg_int.add(pid)
                else:
                    purposes.add(pid)
        if not purposes and not leg_int:
            purposes.add(1)
        features = frozenset(
            fid for fid in FEATURE_IDS if rng.random() < 0.25
        )
        slug = name.split()[0].lower()
        vendor = Vendor(
            id=self._next_vendor_id,
            name=name,
            policy_url=f"https://{slug}.example/privacy",
            purpose_ids=frozenset(purposes),
            leg_int_purpose_ids=frozenset(leg_int),
            feature_ids=features,
        )
        self._next_vendor_id += 1
        return vendor

    def _fresh_name(self) -> str:
        rng = self._rng
        for _ in range(1000):
            name = "{}{} {}".format(
                rng.choice(_NAME_PREFIXES),
                rng.choice(_NAME_SUFFIXES),
                rng.choice(_NAME_LEGAL),
            )
            if name not in self._used_names:
                self._used_names.add(name)
                return name
        # Fall back to a numbered name once combinations are exhausted.
        name = f"Vendor {self._next_vendor_id} Inc."
        self._used_names.add(name)
        return name


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler; fine for the small rates used here."""
    if lam <= 0:
        return 0
    threshold = 2.718281828459045 ** (-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def generate_gvl_history(
    config: Optional[GvlGenConfig] = None,
) -> List[GlobalVendorList]:
    """Convenience wrapper around :class:`GvlHistoryGenerator`."""
    return GvlHistoryGenerator(config).generate()
