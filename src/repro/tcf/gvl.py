"""Global Vendor List (GVL) data model and version diffing.

The GVL is the IAB-maintained master list of advertisers participating in
the TCF (Section 2.2). For each vendor it records the purposes for which
the vendor requests *consent*, the purposes for which it claims a
*legitimate interest* (processing without consent, GDPR Art. 6.1b-f), and
the features it relies on.

The paper systematically analyzes all 215 published versions of the list
and measures "every instance when an ad-tech vendor joins or leaves the
GVL, claims a new purpose falls under legitimate interest, begins
requesting consent for a new purpose, stops claiming either, or changes
from collecting consent to claiming legitimate interest or the other way
round" (Section 3.2). :func:`diff_versions` computes exactly those events.
"""

from __future__ import annotations

import datetime as dt
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.tcf.purposes import (
    PURPOSE_IDS,
    validate_feature_ids,
    validate_purpose_ids,
)


@dataclass(frozen=True)
class Vendor:
    """One advertiser on the Global Vendor List."""

    id: int
    name: str
    policy_url: str
    #: Purposes the vendor requests user consent for.
    purpose_ids: FrozenSet[int]
    #: Purposes the vendor claims legitimate interest for (no consent
    #: needed under the GDPR).
    leg_int_purpose_ids: FrozenSet[int]
    feature_ids: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.id < 1:
            raise ValueError("vendor ids are 1-based")
        object.__setattr__(
            self, "purpose_ids", validate_purpose_ids(self.purpose_ids)
        )
        object.__setattr__(
            self,
            "leg_int_purpose_ids",
            validate_purpose_ids(self.leg_int_purpose_ids),
        )
        object.__setattr__(
            self, "feature_ids", validate_feature_ids(self.feature_ids)
        )
        overlap = self.purpose_ids & self.leg_int_purpose_ids
        if overlap:
            raise ValueError(
                f"vendor {self.id} declares purposes {sorted(overlap)} as "
                "both consent and legitimate interest"
            )

    @property
    def declared_purposes(self) -> FrozenSet[int]:
        """All purposes the vendor processes data for, on either basis."""
        return self.purpose_ids | self.leg_int_purpose_ids

    def basis_for(self, purpose_id: int) -> Optional[str]:
        """Return ``"consent"``, ``"legitimate-interest"`` or ``None``."""
        if purpose_id in self.purpose_ids:
            return "consent"
        if purpose_id in self.leg_int_purpose_ids:
            return "legitimate-interest"
        return None


@dataclass(frozen=True)
class GlobalVendorList:
    """One published version of the GVL."""

    version: int
    last_updated: dt.date
    vendors: Tuple[Vendor, ...]
    _by_id: Mapping[int, Vendor] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        by_id = {}
        for v in self.vendors:
            if v.id in by_id:
                raise ValueError(f"duplicate vendor id {v.id} in GVL v{self.version}")
            by_id[v.id] = v
        object.__setattr__(self, "_by_id", by_id)

    def __len__(self) -> int:
        return len(self.vendors)

    def __contains__(self, vendor_id: int) -> bool:
        return vendor_id in self._by_id

    def get(self, vendor_id: int) -> Optional[Vendor]:
        return self._by_id.get(vendor_id)

    @property
    def vendor_ids(self) -> FrozenSet[int]:
        return frozenset(self._by_id)

    @property
    def max_vendor_id(self) -> int:
        return max(self._by_id) if self._by_id else 0

    def purpose_histogram(self, basis: str = "any") -> Dict[int, int]:
        """Count vendors declaring each purpose.

        Args:
            basis: ``"consent"``, ``"legitimate-interest"`` or ``"any"``.
        """
        counts = {pid: 0 for pid in PURPOSE_IDS}
        for vendor in self.vendors:
            if basis == "consent":
                declared = vendor.purpose_ids
            elif basis == "legitimate-interest":
                declared = vendor.leg_int_purpose_ids
            elif basis == "any":
                declared = vendor.declared_purposes
            else:
                raise ValueError(f"unknown basis {basis!r}")
            for pid in declared:
                counts[pid] += 1
        return counts

    # ------------------------------------------------------------------
    # JSON round-trip in the shape of vendorlist.consensu.org/vXXX/
    # vendor-list.json, which is how the paper archived the real list.
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "vendorListVersion": self.version,
            "lastUpdated": self.last_updated.isoformat(),
            "vendors": [
                {
                    "id": v.id,
                    "name": v.name,
                    "policyUrl": v.policy_url,
                    "purposeIds": sorted(v.purpose_ids),
                    "legIntPurposeIds": sorted(v.leg_int_purpose_ids),
                    "featureIds": sorted(v.feature_ids),
                }
                for v in sorted(self.vendors, key=lambda v: v.id)
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "GlobalVendorList":
        payload = json.loads(text)
        vendors = tuple(
            Vendor(
                id=v["id"],
                name=v["name"],
                policy_url=v["policyUrl"],
                purpose_ids=frozenset(v["purposeIds"]),
                leg_int_purpose_ids=frozenset(v["legIntPurposeIds"]),
                feature_ids=frozenset(v.get("featureIds", ())),
            )
            for v in payload["vendors"]
        )
        return cls(
            version=payload["vendorListVersion"],
            last_updated=dt.date.fromisoformat(payload["lastUpdated"]),
            vendors=vendors,
        )


# ----------------------------------------------------------------------
# Version diffing (the events Figure 8 is built from)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PurposeChange:
    """A change to one vendor's declaration for one purpose."""

    vendor_id: int
    purpose_id: int
    #: Legal basis before the change: "consent", "legitimate-interest" or
    #: None (purpose not declared).
    before: Optional[str]
    #: Legal basis after the change.
    after: Optional[str]

    @property
    def kind(self) -> str:
        """Classify per the taxonomy of Section 3.2.

        One of ``"new-consent"``, ``"new-li"``, ``"dropped-consent"``,
        ``"dropped-li"``, ``"li-to-consent"``, ``"consent-to-li"``.
        """
        table = {
            (None, "consent"): "new-consent",
            (None, "legitimate-interest"): "new-li",
            ("consent", None): "dropped-consent",
            ("legitimate-interest", None): "dropped-li",
            ("legitimate-interest", "consent"): "li-to-consent",
            ("consent", "legitimate-interest"): "consent-to-li",
        }
        return table[(self.before, self.after)]


@dataclass(frozen=True)
class GvlDiff:
    """All changes between two consecutive GVL versions."""

    from_version: int
    to_version: int
    date: dt.date
    joined: FrozenSet[int]
    left: FrozenSet[int]
    purpose_changes: Tuple[PurposeChange, ...]

    def changes_of_kind(self, kind: str) -> List[PurposeChange]:
        return [c for c in self.purpose_changes if c.kind == kind]

    @property
    def net_li_to_consent(self) -> int:
        """Net number of purpose declarations moving LI -> consent.

        Positive values mean vendors are, on net, obtaining consent for
        purposes they previously claimed as legitimate interest -- the
        paper's headline finding for I5 (Figure 8).
        """
        return len(self.changes_of_kind("li-to-consent")) - len(
            self.changes_of_kind("consent-to-li")
        )


def diff_versions(
    old: GlobalVendorList,
    new: GlobalVendorList,
    purpose_ids: Tuple[int, ...] = PURPOSE_IDS,
) -> GvlDiff:
    """Compute every vendor event between two GVL versions.

    Purpose changes are only tracked for vendors present in both versions
    ("changes made by existing members", Section 4.2); joins and leaves
    are reported separately. *purpose_ids* defaults to TCF v1's five
    purposes; pass v2's ten to diff v2 lists (the function is duck-typed
    over anything with ``vendor_ids``/``get``/``basis_for``).
    """
    joined = new.vendor_ids - old.vendor_ids
    left = old.vendor_ids - new.vendor_ids
    changes: List[PurposeChange] = []
    for vid in old.vendor_ids & new.vendor_ids:
        before_v = old.get(vid)
        after_v = new.get(vid)
        assert before_v is not None and after_v is not None
        for pid in purpose_ids:
            before = before_v.basis_for(pid)
            after = after_v.basis_for(pid)
            if before != after:
                changes.append(PurposeChange(vid, pid, before, after))
    return GvlDiff(
        from_version=old.version,
        to_version=new.version,
        date=new.last_updated,
        joined=frozenset(joined),
        left=frozenset(left),
        purpose_changes=tuple(changes),
    )


def diff_history(
    versions: Iterable[GlobalVendorList],
    purpose_ids: Tuple[int, ...] = PURPOSE_IDS,
) -> List[GvlDiff]:
    """Diff every consecutive pair in a version history."""
    versions = sorted(versions, key=lambda g: g.version)
    return [
        diff_versions(a, b, purpose_ids)
        for a, b in zip(versions, versions[1:])
    ]
