"""Global consent storage and cross-site consent sharing.

The TCF v1 "global scope" stores the consent cookie under the CMP's
``.consensu.org`` subdomain, so one decision is shared across every
website using that CMP (Figure 2: "forward consent decisions to ad-tech
vendors and also share it globally across websites"). The paper probes
this directly: it fetches ``https://api.quantcast.mgr.consensu.org/
CookieAccess``, which returns the user's existing Quantcast TCF cookie,
to filter repeat visitors out of the timing experiment (Section 3.2).

This module models that machinery:

* :class:`GlobalConsentStore` -- the per-browser cookie jar scoped to
  ``.consensu.org``, keyed by CMP;
* :class:`CookieAccessEndpoint` -- the ``CookieAccess`` probe;
* :func:`consent_coalition` -- the set of sites across which one stored
  decision is reused, the phenomenon Woods & Böhme call the
  "commodification of consent".
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cmps.base import cmp_by_key
from repro.net.http import Cookie
from repro.tcf.consentstring import ConsentString, decode_consent_string

#: The shared parent domain of TCF v1 global consent cookies.
CONSENSU_SUFFIX = "mgr.consensu.org"

#: Name of the global consent cookie.
GLOBAL_COOKIE_NAME = "euconsent"


class GlobalConsentStore:
    """One browser's global (cross-site) consent state.

    TCF v1 global scope means the cookie lives under the CMP's
    ``<cmp>.mgr.consensu.org`` origin: any site embedding that CMP can
    read the decision back through the CMP's iframe. The store therefore
    keys decisions by CMP, not by website.
    """

    def __init__(self) -> None:
        self._by_cmp: Dict[str, ConsentString] = {}

    def __len__(self) -> int:
        return len(self._by_cmp)

    def __contains__(self, cmp_key: str) -> bool:
        return cmp_key in self._by_cmp

    def record_decision(self, cmp_key: str, consent: ConsentString) -> Cookie:
        """Store a decision made on *any* site embedding *cmp_key*.

        Returns the cookie as the browser would persist it.
        """
        model = cmp_by_key(cmp_key)  # validates the key
        self._by_cmp[cmp_key] = consent
        return Cookie(
            name=GLOBAL_COOKIE_NAME,
            value=consent.encode(),
            domain=f".{model.key}.{CONSENSU_SUFFIX}",
            secure=True,
            max_age=86400 * 390,  # ~13 months
        )

    def stored_consent(self, cmp_key: str) -> Optional[ConsentString]:
        """The decision a new site embedding *cmp_key* would inherit."""
        return self._by_cmp.get(cmp_key)

    def clear(self, cmp_key: Optional[str] = None) -> None:
        if cmp_key is None:
            self._by_cmp.clear()
        else:
            self._by_cmp.pop(cmp_key, None)

    @classmethod
    def from_cookies(cls, cookies: Iterable[Cookie]) -> "GlobalConsentStore":
        """Reconstruct the store from a browser cookie jar."""
        store = cls()
        for cookie in cookies:
            if cookie.name != GLOBAL_COOKIE_NAME:
                continue
            domain = cookie.domain.lstrip(".")
            if not domain.endswith(CONSENSU_SUFFIX):
                continue
            cmp_key = domain[: -len(CONSENSU_SUFFIX) - 1]
            try:
                cmp_by_key(cmp_key)
            except KeyError:
                continue
            store._by_cmp[cmp_key] = decode_consent_string(cookie.value)
        return store


@dataclass(frozen=True)
class CookieAccessResult:
    """Response of the ``CookieAccess`` probe."""

    cmp_key: str
    has_cookie: bool
    consent: Optional[ConsentString] = None

    @property
    def is_repeat_visitor(self) -> bool:
        """Repeat visitors are excluded from the timing experiment: the
        CMP stores the first decision and shows no further dialogs."""
        return self.has_cookie


class CookieAccessEndpoint:
    """The ``https://api.<cmp>.mgr.consensu.org/CookieAccess`` probe."""

    def __init__(self, store: GlobalConsentStore):
        self._store = store

    def fetch(self, cmp_key: str) -> CookieAccessResult:
        consent = self._store.stored_consent(cmp_key)
        return CookieAccessResult(
            cmp_key=cmp_key,
            has_cookie=consent is not None,
            consent=consent,
        )


def consent_coalition(
    world, cmp_key: str, date: dt.date, *, max_rank: Optional[int] = None
) -> Tuple[str, ...]:
    """Domains across which one global consent decision is shared.

    One decision made on any member of the coalition is silently reused
    by every other member (Section 4.1: "As CMPs share consent across
    websites, this unreliable consent signal will then be re-used by
    other websites and third parties").
    """
    limit = max_rank if max_rank is not None else world.n_domains
    members: List[str] = []
    for rank in range(1, limit + 1):
        site = world.site(rank)
        if site.cmp_on(date) == cmp_key:
            members.append(site.domain)
    return tuple(members)


def shared_consent_reach(
    world, date: dt.date, *, max_rank: Optional[int] = None
) -> Dict[str, int]:
    """Coalition sizes per CMP -- how far one click reaches."""
    limit = max_rank if max_rank is not None else world.n_domains
    reach: Dict[str, int] = {}
    for rank in range(1, limit + 1):
        key = world.site(rank).cmp_on(date)
        if key is not None:
            reach[key] = reach.get(key, 0) + 1
    return reach
