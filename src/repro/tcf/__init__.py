"""IAB Transparency and Consent Framework (TCF) v1 implementation.

The TCF is the technical standard that most of the CMPs measured in the
paper implement (Section 2.2). This package provides:

* :mod:`repro.tcf.purposes` -- the five purposes and three features of
  TCF v1 exactly as defined in Table A.1;
* :mod:`repro.tcf.consentstring` -- a bit-exact codec for the IAB TCF v1.1
  consent string (the value of the global ``euconsent`` cookie);
* :mod:`repro.tcf.gvl` -- the Global Vendor List data model and version
  diffing, the input to the paper's vendor-behaviour analyses (I4/I5);
* :mod:`repro.tcf.gvlgen` -- a calibrated generator producing a synthetic
  215-version GVL history mirroring the real list's growth dynamics;
* :mod:`repro.tcf.cmpapi` -- an emulation of the in-page ``__cmp()`` API
  used by the paper's timing instrumentation (Section 3.2).
"""

from repro.tcf.consentstring import ConsentString, decode_consent_string
from repro.tcf.gvl import GlobalVendorList, GvlDiff, Vendor, diff_versions
from repro.tcf.purposes import FEATURES, PURPOSES, Feature, Purpose

__all__ = [
    "PURPOSES",
    "FEATURES",
    "Purpose",
    "Feature",
    "ConsentString",
    "decode_consent_string",
    "Vendor",
    "GlobalVendorList",
    "GvlDiff",
    "diff_versions",
]
