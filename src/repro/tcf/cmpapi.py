"""Emulation of the in-page ``__cmp()`` JavaScript API.

The TCF v1 standard requires every CMP to expose a ``window.__cmp()``
function. The paper's timing instrumentation (Section 3.2) calls:

* ``__cmp('ping', ...)`` -- polled to detect when the CMP has loaded and
  whether the dialog ("consent UI") is being shown;
* ``__cmp('getConsentData', ...)`` -- returns the consent string once the
  user has made a decision;
* ``__cmp('getVendorConsents', ...)`` -- per-vendor consent booleans.

This module models that surface together with the event timeline of a
page visit, so the measurement code can record the same three timestamps
the paper logs: ``DOMContentLoaded``, dialog shown, dialog closed.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.tcf.consentstring import ConsentString


class CmpApiError(RuntimeError):
    """Raised on invalid command sequences (e.g. reading consent data
    before the CMP has loaded)."""


@dataclass
class PingResult:
    """Result of ``__cmp('ping')``."""

    gdpr_applies: bool
    cmp_loaded: bool


@dataclass
class ConsentDataResult:
    """Result of ``__cmp('getConsentData')``."""

    consent_data: str
    gdpr_applies: bool
    has_global_scope: bool


@dataclass
class VendorConsentsResult:
    """Result of ``__cmp('getVendorConsents')``."""

    metadata: str
    gdpr_applies: bool
    has_global_scope: bool
    purpose_consents: Dict[int, bool]
    vendor_consents: Dict[int, bool]


@dataclass
class CmpApi:
    """State machine of a CMP embedded on one page visit.

    The lifecycle is: construct -> :meth:`load` (script downloaded and
    executed) -> :meth:`show_dialog` (consent UI appears, unless a stored
    decision exists) -> :meth:`submit_decision`.

    All times are seconds since navigation start, mirroring how the
    paper's collection script timestamps events relative to page load.
    """

    cmp_id: int
    gdpr_applies: bool = True
    has_global_scope: bool = True
    #: A previously stored consent string (global consent cookie), if any.
    stored_consent: Optional[ConsentString] = None

    _loaded_at: Optional[float] = field(default=None, init=False)
    _dialog_shown_at: Optional[float] = field(default=None, init=False)
    _decided_at: Optional[float] = field(default=None, init=False)
    _consent: Optional[ConsentString] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.stored_consent is not None:
            self._consent = self.stored_consent

    # ------------------------------------------------------------------
    # Lifecycle driven by the page / dialog simulator
    # ------------------------------------------------------------------
    def load(self, at: float) -> None:
        """Mark the CMP script as loaded at *at* seconds."""
        if self._loaded_at is not None:
            raise CmpApiError("CMP already loaded")
        self._loaded_at = at

    def show_dialog(self, at: float) -> None:
        """Mark the consent UI as shown.

        Repeated visitors with a stored decision are never shown a new
        dialog (Section 3.2: "Repeated visitors will not be counted as
        the CMP stores the first consent decision").
        """
        if self._loaded_at is None:
            raise CmpApiError("cannot show dialog before the CMP loads")
        if self.stored_consent is not None:
            raise CmpApiError("stored consent present; dialog suppressed")
        if at < self._loaded_at:
            raise CmpApiError("dialog cannot appear before the CMP loads")
        self._dialog_shown_at = at

    def submit_decision(self, consent: ConsentString, at: float) -> None:
        """Record the user's decision at *at* seconds."""
        if self._dialog_shown_at is None:
            raise CmpApiError("no dialog was shown")
        if at < self._dialog_shown_at:
            raise CmpApiError("decision cannot precede the dialog")
        if self._decided_at is not None:
            raise CmpApiError("decision already recorded")
        self._consent = consent
        self._decided_at = at

    # ------------------------------------------------------------------
    # The __cmp() command surface
    # ------------------------------------------------------------------
    def ping(self, at: float) -> PingResult:
        loaded = self._loaded_at is not None and at >= self._loaded_at
        return PingResult(gdpr_applies=self.gdpr_applies, cmp_loaded=loaded)

    def dialog_visible(self, at: float) -> bool:
        """True while the consent UI is on screen at time *at*."""
        if self._dialog_shown_at is None or at < self._dialog_shown_at:
            return False
        return self._decided_at is None or at < self._decided_at

    def get_consent_data(self, at: float) -> Optional[ConsentDataResult]:
        """``__cmp('getConsentData')``: ``None`` until a decision exists."""
        if self._loaded_at is None or at < self._loaded_at:
            raise CmpApiError("__cmp is not installed yet")
        consent = self._available_consent(at)
        if consent is None:
            return None
        return ConsentDataResult(
            consent_data=consent.encode(),
            gdpr_applies=self.gdpr_applies,
            has_global_scope=self.has_global_scope,
        )

    def get_vendor_consents(self, at: float) -> Optional[VendorConsentsResult]:
        if self._loaded_at is None or at < self._loaded_at:
            raise CmpApiError("__cmp is not installed yet")
        consent = self._available_consent(at)
        if consent is None:
            return None
        return VendorConsentsResult(
            metadata=consent.encode(),
            gdpr_applies=self.gdpr_applies,
            has_global_scope=self.has_global_scope,
            purpose_consents={
                pid: pid in consent.allowed_purposes for pid in range(1, 6)
            },
            vendor_consents={
                vid: vid in consent.vendor_consents
                for vid in range(1, consent.max_vendor_id + 1)
            },
        )

    def _available_consent(self, at: float) -> Optional[ConsentString]:
        if self.stored_consent is not None:
            return self.stored_consent
        if self._decided_at is not None and at >= self._decided_at:
            return self._consent
        return None

    # ------------------------------------------------------------------
    # The three timestamps the paper logs
    # ------------------------------------------------------------------
    @property
    def dialog_shown_at(self) -> Optional[float]:
        return self._dialog_shown_at

    @property
    def decided_at(self) -> Optional[float]:
        return self._decided_at

    @property
    def interaction_time(self) -> Optional[float]:
        """Seconds from dialog shown to decision, the paper's core metric."""
        if self._dialog_shown_at is None or self._decided_at is None:
            return None
        return self._decided_at - self._dialog_shown_at
