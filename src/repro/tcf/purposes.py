"""TCF v1 purposes and features (Table A.1).

In TCF 1.0, *purposes* define reasons for collecting personal data and
*features* describe methods of data use that overlap multiple purposes
(Section 2.2). Both must be disclosed to users, but users are only given
control over consenting to individual purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple


@dataclass(frozen=True)
class Purpose:
    """A TCF v1 data-processing purpose."""

    id: int
    name: str
    description: str


@dataclass(frozen=True)
class Feature:
    """A TCF v1 feature (a method of data use spanning purposes)."""

    id: int
    name: str
    description: str


#: The five purposes of TCF v1, verbatim from Table A.1. Purpose 1 is
#: always the most popular among vendors (Figure 7); the paper notes it is
#: technically an artefact of Article 5(3) of the ePrivacy Directive
#: rather than a data-processing purpose in itself.
PURPOSES: Tuple[Purpose, ...] = (
    Purpose(
        1,
        "Information storage and access",
        "The storage of information, or access to information that is "
        "already stored, on your device such as advertising identifiers, "
        "device identifiers, cookies, and similar technologies.",
    ),
    Purpose(
        2,
        "Personalisation",
        "The collection and processing of information about your use of "
        "this service to subsequently personalise advertising and/or "
        "content for you in other contexts, such as on other websites or "
        "apps, over time.",
    ),
    Purpose(
        3,
        "Ad selection, delivery, reporting",
        "The collection of information, and combination with previously "
        "collected information, to select and deliver advertisements for "
        "you, and to measure the delivery and effectiveness of such "
        "advertisements.",
    ),
    Purpose(
        4,
        "Content selection, delivery, reporting",
        "The collection of information, and combination with previously "
        "collected information, to select and deliver content for you, "
        "and to measure the delivery and effectiveness of such content.",
    ),
    Purpose(
        5,
        "Measurement",
        "The collection of information about your use of the content, and "
        "combination with previously collected information, used to "
        "measure, understand, and report on your usage of the service.",
    ),
)

#: The three features of TCF v1, verbatim from Table A.1.
FEATURES: Tuple[Feature, ...] = (
    Feature(
        1,
        "Offline data matching",
        "Combining data from offline sources that were initially collected "
        "in other contexts with data collected online in support of one or "
        "more purposes.",
    ),
    Feature(
        2,
        "Device linking",
        "Processing data to link multiple devices that belong to the same "
        "user in support of one or more purposes.",
    ),
    Feature(
        3,
        "Precise geographic location data",
        "Collecting and supporting precise geographic location data in "
        "support of one or more purposes.",
    ),
)

PURPOSE_IDS: Tuple[int, ...] = tuple(p.id for p in PURPOSES)
FEATURE_IDS: Tuple[int, ...] = tuple(f.id for f in FEATURES)

PURPOSES_BY_ID: Mapping[int, Purpose] = {p.id: p for p in PURPOSES}
FEATURES_BY_ID: Mapping[int, Feature] = {f.id: f for f in FEATURES}


def validate_purpose_ids(ids) -> frozenset:
    """Validate and freeze a collection of purpose ids."""
    out = frozenset(int(i) for i in ids)
    unknown = out - set(PURPOSE_IDS)
    if unknown:
        raise ValueError(f"unknown purpose ids: {sorted(unknown)}")
    return out


def validate_feature_ids(ids) -> frozenset:
    """Validate and freeze a collection of feature ids."""
    out = frozenset(int(i) for i in ids)
    unknown = out - set(FEATURE_IDS)
    if unknown:
        raise ValueError(f"unknown feature ids: {sorted(unknown)}")
    return out
