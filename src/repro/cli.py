"""Command-line interface.

A small front-end over the :class:`~repro.core.pipeline.Study` facade so
the headline analyses can be run without writing Python:

.. code-block:: sh

    repro crawl     --days 90 --out observations.jsonl
    repro table1    --date 2020-05-15
    repro figure5   --date 2020-05-15
    repro figure6   --in observations.jsonl
    repro gvl
    repro timing

Every command accepts ``--seed`` and ``--domains`` to size the synthetic
world; results are deterministic for a given seed.

Caching: pass ``--cache-dir .repro-cache`` to persist crawl stores and
derived analyses across invocations; a warm rerun serves them from disk
bit-identically (``--no-cache`` forces a cold compute).

Observability: pass ``--metrics-out metrics.jsonl`` and/or
``--trace-out trace.jsonl`` to record pipeline metrics and trace spans
(see ``docs/ARCHITECTURE.md``); a human-readable summary is printed
after the command. Results are bit-identical with or without these
flags.
"""

from __future__ import annotations

import argparse
import datetime as dt
import sys
from typing import List, Optional

from repro.core.pipeline import Study, StudyConfig
from repro.obs import Observability


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Measuring the Emergence of Consent "
        "Management on the Web' (IMC 2020)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--domains", type=int, default=20_000, help="synthetic world size"
    )
    parser.add_argument(
        "--toplist", type=int, default=2_000, help="toplist size to analyze"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="crawl-phase worker count (1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="worker-pool backend used when --workers > 1",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persistent artifact cache; warm reruns skip the crawl "
        "phase and are bit-identical to cold ones",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and compute everything cold",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="ROWS",
        help="crawl-phase memory budget in resident capture rows: "
        "stores spill full segments to disk past this bound, keeping "
        "peak RSS flat at any study size; an execution knob like "
        "--workers, results are bit-identical either way",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write pipeline metrics as JSONL and print a run summary",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write trace spans/events as JSONL and print a run summary",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    crawl = sub.add_parser(
        "crawl", help="run the social-media platform and store observations"
    )
    crawl.add_argument("--days", type=int, default=90)
    crawl.add_argument(
        "--start", type=dt.date.fromisoformat, default=dt.date(2020, 3, 1)
    )
    crawl.add_argument("--events-per-day", type=int, default=400)
    crawl.add_argument("--out", required=True, help="JSONL output path")

    table1 = sub.add_parser(
        "table1", help="Table 1: CMP occurrence by vantage point"
    )
    table1.add_argument(
        "--date", type=dt.date.fromisoformat, default=dt.date(2020, 5, 15)
    )

    fig5 = sub.add_parser(
        "figure5", help="Figure 5: marketshare by toplist size"
    )
    fig5.add_argument(
        "--date", type=dt.date.fromisoformat, default=dt.date(2020, 5, 15)
    )

    fig6 = sub.add_parser(
        "figure6", help="Figure 6: adoption over time from stored observations"
    )
    fig6.add_argument("--in", dest="infile", required=True)

    sub.add_parser("gvl", help="Figures 7/8: Global Vendor List analysis")
    sub.add_parser("timing", help="Figures 9/10: dialog time costs")

    compliance = sub.add_parser(
        "compliance", help="Section 7: regulator-style dialog audit"
    )
    compliance.add_argument(
        "--date", type=dt.date.fromisoformat, default=dt.date(2020, 5, 15)
    )

    burden = sub.add_parser(
        "burden",
        help="Section 5.2: dialog burden under global vs per-site consent",
    )
    burden.add_argument("--visits", type=int, default=1_000)
    burden.add_argument(
        "--date", type=dt.date.fromisoformat, default=dt.date(2020, 5, 15)
    )

    study_cmd = sub.add_parser(
        "study",
        help="incremental streaming study engine (repro.stream)",
    )
    study_cmd.add_argument(
        "--follow",
        action="store_true",
        help="ingest the share stream day by day, maintaining results "
        "online (byte-identical to a batch run at every watermark)",
    )
    study_cmd.add_argument(
        "--start", type=dt.date.fromisoformat, default=dt.date(2020, 3, 1)
    )
    study_cmd.add_argument(
        "--days", type=int, default=60, help="event days to ingest"
    )
    study_cmd.add_argument("--events-per-day", type=int, default=400)
    study_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="DAYS",
        help="write a resumable checkpoint every N ingested days "
        "(requires --cache-dir; 0 = never)",
    )
    study_cmd.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in --cache-dir instead "
        "of starting cold",
    )
    study_cmd.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="PORT",
        help="after catching up, serve adoption/marketshare/vantage "
        "queries over HTTP until interrupted (0 picks a free port)",
    )
    study_sub = study_cmd.add_subparsers(dest="study_command")
    graph_query = study_sub.add_parser(
        "graph-query",
        help="build the consent ecosystem graph (repro.graph) and run "
        "one of the paper analyses as a graph query",
    )
    graph_query.add_argument(
        "query",
        choices=(
            "summary",
            "marketshare",
            "adoption",
            "vantage",
            "gvl-churn",
            "country-fig5",
        ),
        help="summary: node/edge counts and canonical digest; "
        "marketshare: Figure 5 over ADOPTED edges; adoption: monthly "
        "CMP counts from CAPTURED edges; vantage: Table 1 from "
        "CAPTURED edges; gvl-churn: Figures 7/8 from MEMBER_OF edge "
        "diffs; country-fig5: per-country Figure 5 over a CrUX-shaped "
        "bucketed ranking",
    )
    graph_query.add_argument(
        "--date",
        type=dt.date.fromisoformat,
        default=None,
        help="evaluation date for marketshare/country-fig5 "
        "(default: end of the study window)",
    )
    graph_query.add_argument(
        "--country",
        default=None,
        metavar="CC",
        help="country code for country-fig5 (e.g. DE, FR, US); "
        "omit to list the available countries",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    observe = args.metrics_out is not None or args.trace_out is not None
    obs = Observability() if observe else None
    study = Study(
        StudyConfig(
            seed=args.seed,
            n_domains=args.domains,
            toplist_size=min(args.toplist, args.domains),
            parallelism=args.workers,
            backend=args.backend,
            cache_dir=None if args.no_cache else args.cache_dir,
            memory_budget=args.memory_budget,
        ),
        obs=obs,
    )
    handler = {
        "crawl": _cmd_crawl,
        "table1": _cmd_table1,
        "figure5": _cmd_figure5,
        "figure6": _cmd_figure6,
        "gvl": _cmd_gvl,
        "timing": _cmd_timing,
        "compliance": _cmd_compliance,
        "burden": _cmd_burden,
        "study": _cmd_study,
    }[args.command]
    rc = handler(study, args)
    if obs is not None:
        obs.write(metrics_out=args.metrics_out, trace_out=args.trace_out)
        for path, what in (
            (args.metrics_out, "metrics"),
            (args.trace_out, "trace"),
        ):
            if path is not None:
                print(f"{what} written to {path}")
        summary = obs.summary()
        if summary:
            print("-- observability summary --")
            print(summary)
    return rc


def _cmd_crawl(study: Study, args) -> int:
    from repro.crawler.storage import save_store

    end = args.start + dt.timedelta(days=args.days)
    print(f"crawling {args.start} .. {end} "
          f"({args.events_per_day} URL shares/day)...")
    store = study.run_social_crawl(args.start, end)
    n = save_store(store, args.out)
    print(f"{n:,} observations ({store.unique_domains:,} domains) "
          f"written to {args.out}")
    stats = study.last_crawl_stats
    if stats is not None and stats.executor is not None:
        print(f"executor: {stats.executor.summary()}")
    return 0


def _cmd_table1(study: Study, args) -> int:
    table = study.vantage_table(args.date)
    print(table.format_table())
    return 0


def _cmd_figure5(study: Study, args) -> int:
    curve = study.marketshare_curve(args.date)
    for size, total, per_cmp in curve.rows():
        detail = "  ".join(
            f"{k}={v * 100:.2f}%" for k, v in per_cmp.items() if v
        )
        print(f"top {size:>9,}: {total * 100:5.2f}%   {detail}")
    return 0


def _cmd_figure6(study: Study, args) -> int:
    from repro.core.adoption import AdoptionSeries
    from repro.crawler.storage import load_store

    store = load_store(args.infile)
    series = AdoptionSeries.from_store(store.by_domain())
    for date in study.monthly_dates():
        counts = series.counts_on(date)
        total = sum(counts.values())
        if total:
            print(f"{date}  {total:>5}  {dict(counts)}")
    return 0


def _cmd_gvl(study: Study, args) -> int:
    from repro.core.gvl_analysis import GvlAnalysis
    from repro.tcf.gvlgen import generate_gvl_history

    analysis = GvlAnalysis(generate_gvl_history())
    for date, count in analysis.vendor_count_series()[::15]:
        print(f"{date}  {count:>4} vendors")
    print(f"net LI -> consent: {analysis.net_li_to_consent():+d}")
    return 0


def _cmd_timing(study: Study, args) -> int:
    from repro.core.timing import OptOutStudy, TimingStudy
    from repro.users.experiment import run_quantcast_experiment

    timing = TimingStudy(run_quantcast_experiment())
    for key, value in timing.summary().items():
        print(f"{key:<24} {value:.3f}")
    optout = OptOutStudy.run(n_runs=48)
    for label, value in optout.rows():
        print(f"{label:<34} {value:8.2f}")
    return 0


def _cmd_compliance(study: Study, args) -> int:
    from repro.core.compliance import audit_captures

    crawl = study.run_toplist_crawl(args.date, configs=("eu-univ-extended",))
    audit = audit_captures(crawl.captures_for("eu-univ-extended"))
    print(f"sites audited: {audit.sites_audited}, "
          f"with findings: {audit.sites_with_findings}")
    for code, count, rate in audit.rows():
        print(f"{code:<26} {count:>5}  ({rate * 100:.1f}% of sites)")
    return 0


def _cmd_study(study: Study, args) -> int:
    import dataclasses

    from repro.stream import QueryServer

    if getattr(args, "study_command", None) == "graph-query":
        return _cmd_graph_query(study, args)
    if not args.follow:
        print("nothing to do: pass --follow to run the streaming engine")
        return 2
    end = args.start + dt.timedelta(days=args.days)
    # Re-window the study to the requested follow range; everything
    # else (seed, world size, cache, obs) carries over.
    study = Study(
        dataclasses.replace(
            study.config,
            study_start=args.start,
            study_end=end,
            events_per_day=args.events_per_day,
            checkpoint_every_days=args.checkpoint_every,
        ),
        obs=study.obs,
    )
    if args.resume:
        from repro.cache import CacheError

        try:
            engine = study.streaming_engine(resume=True)
        except CacheError as exc:
            print(f"cannot resume: {exc}")
            print(
                "checkpoints are keyed by the full study config "
                "(the synthetic world depends on the window): resume "
                "with the same --seed/--domains/--toplist/--days/"
                "--events-per-day the checkpoint was written with"
            )
            return 1
        print(f"resumed from checkpoint at watermark {engine.watermark}")
    else:
        engine = study.streaming_engine()
    print(f"following {args.start} .. {end} "
          f"({args.events_per_day} URL shares/day)...")
    while engine.next_day < end:
        engine.advance_day()
        if engine.days_ingested % 10 == 0 or engine.next_day >= end:
            live = engine.live_counts()
            print(f"  watermark {engine.watermark}: "
                  f"{engine.rows_ingested:,} rows, "
                  f"{sum(live.values())} live CMP domains")
    stats = engine.stats_payload()
    print(f"caught up: {stats['days_ingested']} days, "
          f"{stats['rows_ingested']:,} rows, "
          f"skip rate {stats['skip_rate'] * 100:.1f}%")
    if args.serve is not None:
        server = QueryServer(engine, port=args.serve)
        print(f"query server on http://127.0.0.1:{server.port} "
              "(/healthz /stats /adoption /marketshare /vantage; "
              "Ctrl-C to stop)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
    return 0


def _cmd_graph_query(study: Study, args) -> int:
    import dataclasses

    from repro.graph import (
        adoption_series,
        country_fig5,
        fig5_curve,
        graph_countries,
        gvl_churn,
        vantage_table,
    )

    end = args.start + dt.timedelta(days=args.days)
    study = Study(
        dataclasses.replace(
            study.config,
            study_start=args.start,
            study_end=end,
            events_per_day=args.events_per_day,
        ),
        obs=study.obs,
    )
    date = args.date or end
    gvl_versions = None
    if args.query == "gvl-churn":
        from repro.tcf.gvlgen import generate_gvl_history

        gvl_versions = generate_gvl_history()
    print(f"crawling {args.start} .. {end} and building the graph...")
    store = study.run_social_crawl()
    graph = study.build_graph(store, gvl_versions=gvl_versions)
    print(f"graph: {graph.n_nodes:,} nodes, {graph.n_edges:,} edges, "
          f"digest {graph.digest()[:16]}")
    with study.obs.span("graph.query", query=args.query):
        if args.query == "summary":
            for label, count in graph.stats().items():
                print(f"  {label:<22} {count:>7,}")
        elif args.query == "marketshare":
            curve = fig5_curve(graph, date)
            for size, total, per_cmp in curve.rows():
                detail = "  ".join(
                    f"{k}={v * 100:.2f}%" for k, v in per_cmp.items() if v
                )
                print(f"top {size:>9,}: {total * 100:5.2f}%   {detail}")
        elif args.query == "adoption":
            series = adoption_series(graph)
            for when in study.monthly_dates():
                counts = series.counts_on(when)
                total = sum(counts.values())
                if total:
                    print(f"{when}  {total:>5}  {dict(counts)}")
        elif args.query == "vantage":
            print(vantage_table(graph).format_table())
        elif args.query == "gvl-churn":
            churn = gvl_churn(graph)
            for when, count in churn["vendor_counts"][::15]:
                print(f"{when}  {count:>4} vendors")
            for kind, count in churn["events"]:
                print(f"  {kind:<22} {count:>5}")
            print(f"net LI -> consent: {churn['net_li_to_consent']:+d}")
        else:  # country-fig5
            countries = graph_countries(graph)
            if args.country is None or args.country not in countries:
                print("pass --country CC; available: "
                      + " ".join(countries))
                return 2 if args.country is not None else 0
            curve = country_fig5(graph, args.country, date)
            for size, total, per_cmp in curve.rows():
                detail = "  ".join(
                    f"{k}={v * 100:.2f}%" for k, v in per_cmp.items() if v
                )
                print(f"{args.country} top {size:>7,}: "
                      f"{total * 100:5.2f}%   {detail}")
    return 0


def _cmd_burden(study: Study, args) -> int:
    from repro.users.session import compare_consent_scopes

    reports = compare_consent_scopes(
        study.world, args.date, n_visits=args.visits, seed=args.seed
    )
    for scope, r in reports.items():
        print(f"{scope:<8} scope: {r.dialogs_shown:>4} dialogs over "
              f"{r.n_visits} visits, "
              f"{r.total_interaction_seconds:7.1f}s interaction")
    return 0


if __name__ == "__main__":
    sys.exit(main())
