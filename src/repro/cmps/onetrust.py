"""OneTrust.

OneTrust became the overall market leader by offering a flexible solution
that could be tailored to the requirements of the CCPA (Section 4.1). It
deploys very different dialog designs with no shared JavaScript code or
CSS classes, but all of them perform HTTP requests to
``cdn.cookielaw.org`` on page load -- which is exactly why the paper uses
network fingerprints instead of DOM parsing.

Observed customization in the paper's 414-site EU-university sample:

* 61%   conventional cookie banner (1-click accept + settings link);
* 2.4%  banner with an opt-out button ("Do Not Sell", "Deny All", ...),
        of which 40% require further clicks to confirm;
* 5.5%  "script banner" (Accept / Reject-Manage *Scripts*);
* 7.5%  no banner, only a footer link (11x "Do Not Sell",
        15x "California Privacy Rights", 4x "Privacy Policy" -- two of
        the latter show banners only when accessed from a US IP);
* ~8%   CMP embedded for its API only, custom publisher UI;
* rest  modal dialogs with a More-Options flow.
"""

from __future__ import annotations

import datetime as dt
import random

from repro.cmps.base import CmpModel, DialogButton, DialogDescriptor

MODEL = CmpModel(
    key="onetrust",
    name="OneTrust",
    fingerprint_host="cdn.cookielaw.org",
    auxiliary_hosts=("geolocation.onetrust.com", "optanon.blob.core.windows.net"),
    launch_date=dt.date(2017, 6, 1),
    implements_tcf=True,
    tcf_cmp_id=5,
    primary_market="US",
    eu_tld_share=0.163,
)

#: Dialog-archetype mixture from Section 4.1 (sums to 1.0). This is the
#: May-2020 state; the CCPA-specific archetypes ("Do Not Sell" opt-out
#: banners and California footer links) only exist for configurations
#: created in the CCPA era.
ARCHETYPE_SHARES = (
    ("conventional-banner", 0.610),
    ("optout-banner", 0.024),
    ("script-banner", 0.055),
    ("footer-link", 0.075),
    ("api-only", 0.080),
    ("modal-options", 0.156),
)

#: Pre-CCPA mixture: the opt-out/footer archetypes fold back into the
#: conventional banner.
PRE_CCPA_ARCHETYPE_SHARES = (
    ("conventional-banner", 0.709),
    ("script-banner", 0.055),
    ("api-only", 0.080),
    ("modal-options", 0.156),
)

#: Among opt-out banners, the share whose opt-out needs a confirmation
#: click on a second page (Section 4.1: 40%).
OPTOUT_NEEDS_CONFIRM_SHARE = 0.40

_OPTOUT_LABELS = ("Do Not Sell", "Reject Cookies", "Manage Cookies", "Deny All")
#: Footer link texts with their observed absolute counts (11 / 15 / 4).
_FOOTER_LABELS = (
    ("Do Not Sell My Personal Information", 11),
    ("California Privacy Rights", 15),
    ("Privacy Policy", 4),
)


def sample_dialog(rng: random.Random, era: str = "ccpa") -> DialogDescriptor:
    """Draw one publisher's OneTrust dialog configuration.

    ``era`` is ``"ccpa"`` for configurations created from late 2019 on
    (the product's CCPA-oriented archetypes are available) and
    ``"pre-ccpa"`` before that.
    """
    archetype = _pick_archetype(rng, era)
    accept = DialogButton("Accept All Cookies", "accept-all")
    if archetype == "conventional-banner":
        return DialogDescriptor(
            cmp_key=MODEL.key,
            kind="banner",
            buttons=(
                accept,
                DialogButton("Cookie Settings", "settings-link"),
                DialogButton("Confirm My Choices", "confirm-reject", page=2),
                DialogButton("Save Settings", "save", page=2),
            ),
            accept_wording=accept.label,
        )
    if archetype == "optout-banner":
        label = rng.choice(_OPTOUT_LABELS)
        if rng.random() < OPTOUT_NEEDS_CONFIRM_SHARE:
            buttons = (
                accept,
                DialogButton(label, "more-options"),
                DialogButton("Confirm", "confirm-reject", page=2),
            )
        else:
            buttons = (accept, DialogButton(label, "reject-all"))
        return DialogDescriptor(
            cmp_key=MODEL.key,
            kind="banner",
            buttons=buttons,
            accept_wording=accept.label,
        )
    if archetype == "script-banner":
        return DialogDescriptor(
            cmp_key=MODEL.key,
            kind="script-banner",
            buttons=(
                DialogButton("Accept Scripts", "accept-all"),
                DialogButton("Reject/Manage Scripts", "reject-all"),
            ),
            accept_wording="Accept Scripts",
        )
    if archetype == "footer-link":
        label = _weighted_choice(rng, _FOOTER_LABELS)
        # Two of the four "Privacy Policy" sites showed cookie banners
        # only when accessed from a US IP (Section 4.1).
        us_only_banner = label == "Privacy Policy" and rng.random() < 0.5
        return DialogDescriptor(
            cmp_key=MODEL.key,
            kind="footer-link" if not us_only_banner else "banner",
            buttons=(DialogButton(label, "settings-link"),),
            shown_regions=frozenset({"US"}) if us_only_banner else frozenset({"EU", "US"}),
            accept_wording="",
        )
    if archetype == "api-only":
        return DialogDescriptor(
            cmp_key=MODEL.key, kind="none", custom_api_only=True
        )
    # modal-options
    return DialogDescriptor(
        cmp_key=MODEL.key,
        kind="modal",
        buttons=(
            accept,
            DialogButton("More Options", "more-options"),
            DialogButton("Reject All", "confirm-reject", page=2),
            DialogButton("Confirm My Choices", "save", page=2),
        ),
        accept_wording=accept.label,
    )


def _pick_archetype(rng: random.Random, era: str = "ccpa") -> str:
    shares = (
        ARCHETYPE_SHARES if era == "ccpa" else PRE_CCPA_ARCHETYPE_SHARES
    )
    roll = rng.random() * sum(s for _, s in shares)
    acc = 0.0
    for name, share in shares:
        acc += share
        if roll < acc:
            return name
    return shares[-1][0]


def _weighted_choice(rng: random.Random, weighted) -> str:
    total = sum(w for _, w in weighted)
    roll = rng.random() * total
    acc = 0.0
    for value, weight in weighted:
        acc += weight
        if roll < acc:
            return value
    return weighted[-1][0]
