"""Quantcast Choice.

Quantcast's CMP is targeted at the GDPR, implements the TCF, and achieved
early market dominance after May 2018 (Section 4.1). Its dialogs are the
most standardized of the six: a modal with exactly two first-page buttons,
where closed customization is the publisher's choice between a direct
"reject all" second button (55% of publishers) and a "More Options" button
leading to a second page (45%). Button wording is openly customizable:
87% of publishers use a variation of "I agree/consent/accept", the rest
use free-form texts such as "Whatever" that may not qualify as
affirmative consent.
"""

from __future__ import annotations

import datetime as dt
import random

from repro.cmps.base import CmpModel, DialogButton, DialogDescriptor

MODEL = CmpModel(
    key="quantcast",
    name="Quantcast",
    fingerprint_host="quantcast.mgr.consensu.org",
    auxiliary_hosts=("cmp.quantcast.com", "static.quantcast.mgr.consensu.org"),
    launch_date=dt.date(2018, 4, 10),
    implements_tcf=True,
    tcf_cmp_id=10,
    primary_market="EU",
    eu_tld_share=0.383,
)

#: Share of publishers whose second button is a direct "reject all"
#: (Section 4.1: "55% offer a 1-click reject all").
DIRECT_REJECT_SHARE = 0.55

#: Share of publishers whose accept wording is a variation of
#: "I agree/consent/accept" (Section 4.1: 87%).
CONVENTIONAL_WORDING_SHARE = 0.87

#: Share of publishers using the CMP for its API only with a custom UI
#: (Section 4.1 estimates about 8% across CMPs).
API_ONLY_SHARE = 0.08

_AGREE_WORDINGS = (
    "I ACCEPT",
    "I AGREE",
    "I CONSENT",
    "AGREE",
    "ACCEPT",
    "ICH STIMME ZU",
    "J'ACCEPTE",
    "ACEPTO",
    "ACCETTO",
)

#: Free-form wordings observed in the wild that "may not qualify as
#: affirmative consent" (Section 4.1).
_FREEFORM_WORDINGS = (
    "Whatever",
    "Sounds good",
    "Accept and move on",
    "Got it!",
    "OK, fine",
    "Continue to site",
)


def sample_dialog(rng: random.Random) -> DialogDescriptor:
    """Draw one publisher's Quantcast dialog configuration."""
    if rng.random() < API_ONLY_SHARE:
        return DialogDescriptor(
            cmp_key=MODEL.key, kind="none", custom_api_only=True
        )
    if rng.random() < CONVENTIONAL_WORDING_SHARE:
        accept_label = rng.choice(_AGREE_WORDINGS)
    else:
        accept_label = rng.choice(_FREEFORM_WORDINGS)
    accept = DialogButton(accept_label, "accept-all")
    if rng.random() < DIRECT_REJECT_SHARE:
        # Figure A.1: explicit first-page reject button.
        buttons = (DialogButton("I DO NOT ACCEPT", "reject-all"), accept)
    else:
        # Figure A.2: "More Options" leads to a second page from which
        # the user can reject everything (Figure A.3).
        buttons = (
            DialogButton("MORE OPTIONS", "more-options"),
            accept,
            DialogButton("REJECT ALL", "confirm-reject", page=2),
            DialogButton("SAVE & EXIT", "save", page=2),
        )
    return DialogDescriptor(
        cmp_key=MODEL.key,
        kind="modal",
        buttons=buttons,
        accept_wording=accept_label,
    )
