"""Textual rendering of consent dialogs (Figures A.1--A.3).

The paper's appendix shows the two Quantcast dialog configurations as
screenshots. Offline, we render a dialog descriptor as a text box -- the
equivalent artefact for documentation, examples, and quick manual
inspection of sampled configurations.
"""

from __future__ import annotations

from typing import List

from repro.cmps.base import DialogDescriptor, cmp_by_key

_WIDTH = 64


def render_dialog(dialog: DialogDescriptor, page: int = 1) -> str:
    """Render one page of a dialog as an ASCII box."""
    if dialog.kind == "none":
        return "(no dialog rendered: publisher uses the CMP API only)"
    model = cmp_by_key(dialog.cmp_key)
    lines: List[str] = []
    lines.append("+" + "-" * (_WIDTH - 2) + "+")
    lines.append(_center("We value your privacy"))
    lines.append(_center(""))
    body = (
        "We and our partners use technologies, such as cookies, and "
        "process personal data to personalise ads and content."
    )
    for chunk in _wrap(body, _WIDTH - 6):
        lines.append(_left(chunk))
    lines.append(_center(""))

    buttons = dialog.buttons_on_page(page)
    if buttons:
        labels = [f"[ {b.label} ]" for b in buttons if b.action != "settings-link"]
        links = [b.label for b in buttons if b.action == "settings-link"]
        if labels:
            lines.append(_center("   ".join(labels)))
        for link in links:
            lines.append(_center(f"~ {link} ~"))
    lines.append(_center(""))
    lines.append(_right(f"Powered by {model.name}  "))
    lines.append("+" + "-" * (_WIDTH - 2) + "+")
    if dialog.kind == "modal":
        lines.insert(0, "(modal overlay, page dimmed behind)")
    elif dialog.kind == "footer-link":
        return "(no banner: footer link only: " + ", ".join(
            b.label for b in dialog.buttons
        ) + ")"
    return "\n".join(lines)


def _center(text: str) -> str:
    return "|" + text.center(_WIDTH - 2) + "|"


def _left(text: str) -> str:
    return "|  " + text.ljust(_WIDTH - 4) + "|"


def _right(text: str) -> str:
    return "|" + text.rjust(_WIDTH - 2) + "|"


def _wrap(text: str, width: int) -> List[str]:
    words = text.split()
    lines: List[str] = []
    current = ""
    for word in words:
        if len(current) + len(word) + 1 > width:
            lines.append(current)
            current = word
        else:
            current = f"{current} {word}".strip()
    if current:
        lines.append(current)
    return lines
