"""Common CMP model types and the registry of the six CMPs under study.

A :class:`CmpModel` describes one consent-management product as the
crawler can observe it. The concrete instances live in the per-vendor
modules (:mod:`repro.cmps.quantcast` etc.) and are collected in the
:data:`CMPS` registry.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

#: Regions distinguished by the geo-dependent behaviour in the paper.
REGIONS = ("EU", "US")


@dataclass(frozen=True)
class DialogButton:
    """One button (or link) in a consent dialog.

    ``action`` is one of:

    * ``accept-all`` -- consent to everything in one click;
    * ``reject-all`` -- refuse everything in one click;
    * ``more-options`` -- open a second page with fine-grained controls;
    * ``settings-link`` -- a link (not a button) to settings / policy;
    * ``confirm-reject`` -- the final opt-out confirmation on page >= 2;
    * ``save`` -- persist per-purpose choices from a settings page.
    """

    label: str
    action: str
    page: int = 1

    _ACTIONS = (
        "accept-all",
        "reject-all",
        "more-options",
        "settings-link",
        "confirm-reject",
        "save",
    )

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ValueError(f"unknown button action {self.action!r}")
        if self.page < 1:
            raise ValueError("dialog pages are 1-based")


@dataclass(frozen=True)
class DialogDescriptor:
    """A publisher's concrete dialog configuration.

    This is what the EU-university crawl reconstructs from the DOM tree
    and full-page screenshots for the customization analysis (I3).

    ``kind`` is one of ``modal``, ``banner``, ``script-banner``,
    ``footer-link`` or ``none`` (CMP embedded for its API only).
    """

    cmp_key: str
    kind: str
    buttons: Tuple[DialogButton, ...] = ()
    #: Regions of the visitor for which the dialog is rendered at all.
    shown_regions: FrozenSet[str] = frozenset(REGIONS)
    #: Publisher replaced the CMP's UI with a custom one (uses API only).
    custom_api_only: bool = False
    #: A first-page opt-out that must contact multiple partners before
    #: the dialog closes (TrustArc-style waterfall, measured in Fig 9).
    opt_out_waterfall: bool = False
    #: Free-text label of the primary accept control (open customization).
    accept_wording: str = "I ACCEPT"

    _KINDS = ("modal", "banner", "script-banner", "footer-link", "none")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown dialog kind {self.kind!r}")
        bad = set(self.shown_regions) - set(REGIONS)
        if bad:
            raise ValueError(f"unknown regions {sorted(bad)}")

    # -- derived properties used by the customization classifier ------
    def buttons_on_page(self, page: int) -> Tuple[DialogButton, ...]:
        return tuple(b for b in self.buttons if b.page == page)

    @property
    def has_first_page_reject(self) -> bool:
        """True if the user can fully opt out with a single click."""
        return any(
            b.action == "reject-all" and b.page == 1 for b in self.buttons
        )

    @property
    def clicks_to_reject(self) -> int:
        """Minimum number of clicks to a full opt-out, 0 if impossible."""
        if self.has_first_page_reject:
            return 1
        page = 1
        clicks = 0
        while True:
            page_buttons = self.buttons_on_page(page)
            opener = next(
                (
                    b
                    for b in page_buttons
                    if b.action in ("more-options", "settings-link")
                ),
                None,
            )
            closer = next(
                (
                    b
                    for b in page_buttons
                    if b.action in ("reject-all", "confirm-reject")
                ),
                None,
            )
            if closer is not None:
                return clicks + 1
            if opener is None:
                return 0
            clicks += 1
            page += 1
            if page > 10:  # defensive: malformed config
                return 0

    def shown_to(self, region: str) -> bool:
        return region in self.shown_regions and self.kind not in ("none",)


@dataclass(frozen=True)
class CmpModel:
    """Everything the measurement pipeline knows about one CMP product."""

    #: Stable lowercase key used across the codebase, e.g. ``"onetrust"``.
    key: str
    #: Display name as used in the paper's tables.
    name: str
    #: The unique fingerprint hostname from Table A.2.
    fingerprint_host: str
    #: Additional hostnames the embed contacts (non-unique, shared infra).
    auxiliary_hosts: Tuple[str, ...] = ()
    #: Date the product became available on the market.
    launch_date: dt.date = dt.date(2018, 1, 1)
    #: Whether the product implements the IAB TCF (not all do: products
    #: targeting the US market often skip it, Section 2.2).
    implements_tcf: bool = True
    #: TCF CMP id (only meaningful when implements_tcf).
    tcf_cmp_id: int = 0
    #: Primary jurisdiction the product is tailored to ("EU", "US", or
    #: "global"); drives the EU+UK TLD share observed in Section 4.1.
    primary_market: str = "global"
    #: Share of this CMP's customers with an EU+UK TLD (Section 4.1 gives
    #: 38.3% for Quantcast and 16.3% for OneTrust).
    eu_tld_share: float = 0.25

    def __post_init__(self) -> None:
        if self.primary_market not in ("EU", "US", "global"):
            raise ValueError(f"unknown market {self.primary_market!r}")
        if not 0.0 <= self.eu_tld_share <= 1.0:
            raise ValueError("eu_tld_share must be a fraction")

    @property
    def all_hosts(self) -> Tuple[str, ...]:
        return (self.fingerprint_host,) + self.auxiliary_hosts

    def available_on(self, date: dt.date) -> bool:
        return date >= self.launch_date


def _build_registry() -> Dict[str, CmpModel]:
    # Imported lazily to avoid circular imports between base and the
    # per-vendor modules.
    from repro.cmps import (
        cookiebot,
        crownpeak,
        liveramp,
        onetrust,
        quantcast,
        trustarc,
    )

    # Fixed tuple, so the dict's insertion (= iteration) order is the
    # paper's table order (CMP_KEYS) on every run and in every worker
    # process -- values()/items()/__iter__ below rely on that.
    models = (
        onetrust.MODEL,
        quantcast.MODEL,
        trustarc.MODEL,
        cookiebot.MODEL,
        liveramp.MODEL,
        crownpeak.MODEL,
    )
    return {m.key: m for m in models}


_REGISTRY: Optional[Dict[str, CmpModel]] = None


def _registry() -> Dict[str, CmpModel]:
    global _REGISTRY
    if _REGISTRY is None:
        # Benign race: _build_registry() is deterministic, so workers
        # racing here store equal dicts and the rebind is atomic.
        _REGISTRY = _build_registry()  # repro-lint: disable=RACE001
    return _REGISTRY


def cmp_by_key(key: str) -> CmpModel:
    """Look up a CMP model by its stable key."""
    try:
        return _registry()[key]
    except KeyError:
        raise KeyError(f"unknown CMP {key!r}; known: {sorted(_registry())}")


class _CmpRegistryView:
    """Lazy, read-only view over the CMP registry."""

    def __iter__(self):
        return iter(_registry().values())

    def __len__(self) -> int:
        return len(_registry())

    def __getitem__(self, key: str) -> CmpModel:
        return cmp_by_key(key)

    def keys(self):
        # Sorted so callers can't bake the registry's insertion order
        # into an export; iteration in the paper's table order goes
        # through CMP_KEYS instead.
        return tuple(sorted(_registry().keys()))

    def values(self):
        return _registry().values()

    def items(self):
        return _registry().items()


#: Registry of the six CMPs under study, keyed by :attr:`CmpModel.key`.
CMPS = _CmpRegistryView()

#: Stable ordering used in tables: descending Tranco-10k occurrence.
CMP_KEYS = (
    "onetrust",
    "quantcast",
    "trustarc",
    "cookiebot",
    "liveramp",
    "crownpeak",
)

#: Version of the CMP registry contents. Part of every cache
#: fingerprint (:mod:`repro.cache`): bump when CMPs are added/removed or
#: a model's detection-relevant behaviour changes, so cached detection
#: results computed against the old registry are invalidated.
REGISTRY_VERSION = 1
