"""LiveRamp (Faktor).

LiveRamp's CMP is the new entrant among the six: it launched in December
2019 (Section 3.2) and therefore only appears in the later part of the
longitudinal data, with single-digit counts in the Tranco 10k (Table 1).
"""

from __future__ import annotations

import datetime as dt
import random

from repro.cmps.base import CmpModel, DialogButton, DialogDescriptor

MODEL = CmpModel(
    key="liveramp",
    name="LiveRamp",
    fingerprint_host="cmp.choice.faktor.io",
    auxiliary_hosts=("api.faktor.io",),
    launch_date=dt.date(2019, 12, 1),
    implements_tcf=True,
    tcf_cmp_id=3,
    primary_market="global",
    eu_tld_share=0.30,
)


def sample_dialog(rng: random.Random) -> DialogDescriptor:
    """Draw one publisher's LiveRamp dialog configuration."""
    accept = DialogButton("Accept", "accept-all")
    if rng.random() < 0.40:
        buttons = (accept, DialogButton("Decline", "reject-all"))
    else:
        buttons = (
            accept,
            DialogButton("Manage Choices", "more-options"),
            DialogButton("Reject All", "confirm-reject", page=2),
            DialogButton("Save", "save", page=2),
        )
    return DialogDescriptor(
        cmp_key=MODEL.key,
        kind="modal",
        buttons=buttons,
        accept_wording=accept.label,
    )
