"""Crownpeak (Evidon).

Crownpeak's consent product (built on the Evidon acquisition) is the
smallest of the six in the Tranco 10k, holding a steady single-digit
count of sites throughout the observation period (Tables 1 and A.3).
"""

from __future__ import annotations

import datetime as dt
import random

from repro.cmps.base import CmpModel, DialogButton, DialogDescriptor

MODEL = CmpModel(
    key="crownpeak",
    name="Crownpeak",
    fingerprint_host="iabmap.evidon.com",
    auxiliary_hosts=("c.evidon.com", "l3.evidon.com"),
    launch_date=dt.date(2017, 1, 1),
    implements_tcf=True,
    tcf_cmp_id=6,
    primary_market="US",
    eu_tld_share=0.15,
)


def sample_dialog(rng: random.Random) -> DialogDescriptor:
    """Draw one publisher's Crownpeak dialog configuration."""
    accept = DialogButton("Accept", "accept-all")
    if rng.random() < 0.25:
        buttons = (accept, DialogButton("Decline", "reject-all"))
    else:
        buttons = (
            accept,
            DialogButton("Options", "more-options"),
            DialogButton("Opt Out", "confirm-reject", page=2),
        )
    return DialogDescriptor(
        cmp_key=MODEL.key,
        kind="banner",
        buttons=buttons,
        accept_wording=accept.label,
    )
