"""Behavioural models of the six Consent Management Providers under study.

The paper restricts its analysis to six CMPs: the five major players
identified by Nouwens et al. plus LiveRamp, a new entrant that launched in
December 2019 (Section 3.2). Each model captures everything a crawler can
observe about the product:

* the unique fingerprint hostname contacted on page load (Table A.2);
* the auxiliary requests its embed performs;
* the dialog configurations it offers publishers (closed and open
  customization, Section 4.1);
* geo-gating behaviour (embed/show only for EU or US visitors);
* for TrustArc, the multi-partner opt-out waterfall measured in Figure 9.
"""

from repro.cmps.base import (
    CMP_KEYS,
    CMPS,
    CmpModel,
    DialogButton,
    DialogDescriptor,
    cmp_by_key,
)
from repro.cmps.dialog_history import dialog_template_history
from repro.cmps.distribution import distribute_consent, distribution_comparison
from repro.cmps.render import render_dialog
from repro.cmps.trustarc import OptOutWaterfall, trustarc_optout_waterfall

__all__ = [
    "CmpModel",
    "CMPS",
    "CMP_KEYS",
    "cmp_by_key",
    "DialogButton",
    "DialogDescriptor",
    "OptOutWaterfall",
    "trustarc_optout_waterfall",
    "dialog_template_history",
    "distribute_consent",
    "distribution_comparison",
    "render_dialog",
]
