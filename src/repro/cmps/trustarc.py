"""TrustArc.

TrustArc's product is tailored to the CCPA: its dialogs tend to define
"essential" cookies with no opt-out, 4.4% of configurations hide the
dialog from EU IP addresses entirely, and the opt-out path is dramatically
more expensive than the accept path. Consent prompts disappear
immediately if one accepts, but otherwise the user waits "tens of
seconds" while opt-out requests are sent to a hodgepodge of third parties
(Section 3.2). Figure 9 measures this waterfall on forbes.com: at least
7 clicks and 34 s, causing an additional 279 HTTP(S) requests to
25 domains and an additional 1.2 MB / 5.8 MB of data transfer
(compressed / uncompressed).

This module models both the dialog-configuration mixture (Section 4.1)
and the opt-out waterfall itself.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass
from typing import Set, Tuple

from repro.cmps.base import CmpModel, DialogButton, DialogDescriptor
from repro.net.http import HttpRequest, HttpResponse, HttpTransaction
from repro.net.url import URL

MODEL = CmpModel(
    key="trustarc",
    name="TrustArc",
    fingerprint_host="consent.trustarc.com",
    auxiliary_hosts=("consent-pref.trustarc.com", "trustarc.mgr.consensu.org"),
    launch_date=dt.date(2017, 1, 1),
    implements_tcf=True,
    tcf_cmp_id=21,
    primary_market="US",
    eu_tld_share=0.12,
)

#: Dialog-archetype mixture from Section 4.1 (156 TrustArc sites):
#: 7% first-page instant opt-out; 12% first-page opt-out that must
#: establish connections with multiple partners; 44% a first-page button
#: implying autonomy; 31% a link/button that does not imply control;
#: 4.4% hide the dialog from EU IPs; the remainder use the API only.
ARCHETYPE_SHARES = (
    ("instant-optout", 0.070),
    ("waterfall-optout", 0.120),
    ("autonomy-button", 0.440),
    ("no-control-link", 0.310),
    ("hidden-from-eu", 0.044),
    ("api-only", 0.016),
)


def sample_dialog(rng: random.Random) -> DialogDescriptor:
    """Draw one publisher's TrustArc dialog configuration."""
    archetype = _pick_archetype(rng)
    accept = DialogButton("Accept All", "accept-all")
    if archetype == "instant-optout":
        return DialogDescriptor(
            cmp_key=MODEL.key,
            kind="banner",
            buttons=(accept, DialogButton("Decline All", "reject-all")),
            accept_wording=accept.label,
        )
    if archetype == "waterfall-optout":
        return DialogDescriptor(
            cmp_key=MODEL.key,
            kind="banner",
            buttons=(accept, DialogButton("Decline All", "reject-all")),
            opt_out_waterfall=True,
            accept_wording=accept.label,
        )
    if archetype == "autonomy-button":
        return DialogDescriptor(
            cmp_key=MODEL.key,
            kind="banner",
            buttons=(
                accept,
                DialogButton("Manage Preferences", "more-options"),
                DialogButton("Required Only", "confirm-reject", page=2),
                DialogButton("Submit Preferences", "save", page=2),
            ),
            accept_wording=accept.label,
        )
    if archetype == "no-control-link":
        return DialogDescriptor(
            cmp_key=MODEL.key,
            kind="banner",
            buttons=(
                accept,
                DialogButton("Cookie Policy", "settings-link"),
            ),
            accept_wording=accept.label,
        )
    if archetype == "hidden-from-eu":
        return DialogDescriptor(
            cmp_key=MODEL.key,
            kind="banner",
            buttons=(accept, DialogButton("Manage Preferences", "more-options")),
            shown_regions=frozenset({"US"}),
            accept_wording=accept.label,
        )
    return DialogDescriptor(cmp_key=MODEL.key, kind="none", custom_api_only=True)


def _pick_archetype(rng: random.Random) -> str:
    roll = rng.random()
    acc = 0.0
    for name, share in ARCHETYPE_SHARES:
        acc += share
        if roll < acc:
            return name
    return ARCHETYPE_SHARES[-1][0]


# ----------------------------------------------------------------------
# The opt-out waterfall (Figure 9)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaterfallStep:
    """One step of the opt-out flow.

    ``kind`` is ``"click"`` (a user click -- its duration is the UI
    response time, not the user's thinking time), ``"js-timeout"`` (a
    hard-coded JavaScript wait) or ``"partner-batch"`` (opt-out requests
    to a batch of third-party domains).
    """

    kind: str
    label: str
    duration: float
    transactions: Tuple[HttpTransaction, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("click", "js-timeout", "partner-batch"):
            raise ValueError(f"unknown step kind {self.kind!r}")
        if self.duration < 0:
            raise ValueError("durations are non-negative")


@dataclass(frozen=True)
class OptOutWaterfall:
    """A full recording of one opt-out run."""

    steps: Tuple[WaterfallStep, ...]

    @property
    def total_duration(self) -> float:
        """Raw waiting time in seconds, not including user interaction."""
        return sum(s.duration for s in self.steps)

    @property
    def n_clicks(self) -> int:
        return sum(1 for s in self.steps if s.kind == "click")

    @property
    def transactions(self) -> Tuple[HttpTransaction, ...]:
        return tuple(tx for s in self.steps for tx in s.transactions)

    @property
    def extra_requests(self) -> int:
        """Requests beyond the accept path (which issues none)."""
        return len(self.transactions)

    @property
    def partner_domains(self) -> Set[str]:
        return {tx.request.url.host for tx in self.transactions}

    @property
    def wire_bytes(self) -> int:
        return sum(tx.wire_bytes for tx in self.transactions)

    @property
    def uncompressed_bytes(self) -> int:
        return sum(tx.uncompressed_bytes for tx in self.transactions)


#: Synthetic opt-out endpoints standing in for the 25 third-party domains
#: contacted on forbes.com (ad exchanges, DMPs, verification vendors).
PARTNER_DOMAINS: Tuple[str, ...] = tuple(
    f"optout.{name}.com"
    for name in (
        "adsrvr", "bidswitch", "casalemedia", "pubmatic", "rubiconproject",
        "openx", "criteo", "adnxs", "taboola", "outbrain",
        "amazon-adsystem", "doubleclick", "scorecardresearch", "quantserve",
        "mathtag", "bluekai", "demdex", "krxd", "exelator", "eyeota",
        "tapad", "rlcdn", "agkn", "dotomi", "turn",
    )
)


def trustarc_optout_waterfall(
    rng: random.Random,
    *,
    n_partner_domains: int = 25,
    requests_per_domain_mean: float = 11.8,
    js_timeout: float = 10.0,
) -> OptOutWaterfall:
    """Simulate one full opt-out run of the TrustArc dialog.

    The defaults reproduce the medians of Figure 9: ~7 clicks, ~34 s of
    raw waiting, ~279 additional requests to 25 domains with ~1.2 MB /
    5.8 MB (compressed / uncompressed) of extra transfer. ``rng`` drives
    hour-to-hour variation, so repeated calls model the paper's hourly
    measurements over two weeks.
    """
    if not 1 <= n_partner_domains <= len(PARTNER_DOMAINS):
        raise ValueError(
            f"n_partner_domains must be in [1, {len(PARTNER_DOMAINS)}]"
        )
    steps = [
        WaterfallStep("click", "open cookie preferences", _jit(rng, 1.8)),
        WaterfallStep("click", "consent iframe loads", _jit(rng, 2.6)),
        WaterfallStep("click", "switch to manage preferences", _jit(rng, 1.2)),
        WaterfallStep("click", "open purposes tab", _jit(rng, 0.9)),
        WaterfallStep("click", "toggle required-only", _jit(rng, 0.8)),
        WaterfallStep("click", "submit opt-out", _jit(rng, 0.7)),
        WaterfallStep(
            "js-timeout", "hard-coded script wait", _jit(rng, js_timeout, 0.05)
        ),
    ]
    # Opt-out requests are fired in sequential batches of partners; the
    # dialog stays open until every batch settles.
    domains = list(PARTNER_DOMAINS[:n_partner_domains])
    rng.shuffle(domains)
    batch_size = 5
    now = sum(s.duration for s in steps)
    for i in range(0, len(domains), batch_size):
        batch = domains[i : i + batch_size]
        txs = []
        batch_duration = 0.0
        for domain in batch:
            # Domains within a batch are contacted concurrently; each
            # domain's own requests form a sequential redirect chain.
            domain_cursor = 0.0
            n_requests = max(1, int(rng.gauss(requests_per_domain_mean, 2.0)))
            for j in range(n_requests):
                wire = max(400, int(rng.gauss(4300, 1500)))
                uncompressed = int(wire * max(1.5, rng.gauss(4.8, 0.8)))
                latency = max(0.05, rng.gauss(0.25, 0.10))
                txs.append(
                    HttpTransaction(
                        request=HttpRequest(
                            url=URL.parse(
                                f"https://{domain}/optout?step={j}"
                            ),
                            resource_type="xhr",
                        ),
                        response=HttpResponse(
                            status=200,
                            body_size=wire,
                            body_size_uncompressed=uncompressed,
                        ),
                        started_at=now + domain_cursor,
                        duration=latency,
                    )
                )
                domain_cursor += latency
            batch_duration = max(batch_duration, domain_cursor)
        steps.append(
            WaterfallStep(
                "partner-batch",
                f"opt-out batch {i // batch_size + 1}",
                batch_duration,
                tuple(txs),
            )
        )
        now += batch_duration
    steps.append(WaterfallStep("click", "close confirmation", _jit(rng, 0.8)))
    return OptOutWaterfall(steps=tuple(steps))


def trustarc_accept_path(rng: random.Random) -> OptOutWaterfall:
    """The accept path: one click, dialog closes immediately, no extra
    requests (Section 3.2)."""
    return OptOutWaterfall(
        steps=(WaterfallStep("click", "accept all", _jit(rng, 0.4)),)
    )


def _jit(rng: random.Random, mean: float, rel_sd: float = 0.18) -> float:
    """A jittered positive duration around *mean*."""
    return max(0.05, rng.gauss(mean, mean * rel_sd))
