"""Versioned CMP dialog-template history.

Figure 1's caption notes that "the consent prompt of a single CMP
(Quantcast) changed 38 times in our observation period", and Section 3.4
describes collecting that change history (via the vendor's CDN and the
Wayback Machine). This module reproduces the artefact: a deterministic
history of dialog-template versions for each CMP, with structured diffs
("what changed") and the change-frequency analysis that motivates the
paper's plea for longitudinal measurement -- a point-in-time study
captures exactly one of these versions.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets import STUDY_END, STUDY_START

#: Aspects of a dialog template that vendors iterate on.
CHANGE_KINDS = (
    "wording",
    "button-layout",
    "color-scheme",
    "vendor-list-ui",
    "purposes-screen",
    "consent-storage",
)

#: Calibrated number of template changes per CMP over the study window;
#: Quantcast's 38 is from the paper, the others are plausible relative
#: magnitudes (OneTrust ships many product variants, Crownpeak is slow).
TEMPLATE_CHANGES = {
    "quantcast": 38,
    "onetrust": 55,
    "trustarc": 21,
    "cookiebot": 26,
    "liveramp": 9,
    "crownpeak": 6,
}


@dataclass(frozen=True)
class DialogTemplateVersion:
    """One released version of a CMP's dialog template."""

    cmp_key: str
    version: int
    released: dt.date
    #: What changed relative to the previous version (empty for v1).
    changes: Tuple[str, ...]

    def __post_init__(self) -> None:
        unknown = set(self.changes) - set(CHANGE_KINDS)
        if unknown:
            raise ValueError(f"unknown change kinds {sorted(unknown)}")


def dialog_template_history(
    cmp_key: str,
    *,
    seed: int = 17,
    start: dt.date = STUDY_START,
    end: dt.date = STUDY_END,
) -> List[DialogTemplateVersion]:
    """The template-version history of one CMP over a window.

    Release dates are drawn deterministically; the count follows
    :data:`TEMPLATE_CHANGES`. Returned oldest first; version 1 is the
    template in effect at the window start.
    """
    try:
        n_changes = TEMPLATE_CHANGES[cmp_key]
    except KeyError:
        raise KeyError(f"unknown CMP {cmp_key!r}")
    rng = random.Random(f"{seed}:dialog-history:{cmp_key}")
    span = (end - start).days
    release_offsets = sorted(rng.sample(range(1, span), n_changes))
    versions = [
        DialogTemplateVersion(
            cmp_key=cmp_key, version=1, released=start, changes=()
        )
    ]
    for i, offset in enumerate(release_offsets, start=2):
        n_kinds = 1 + (rng.random() < 0.3)
        changes = tuple(rng.sample(CHANGE_KINDS, n_kinds))
        versions.append(
            DialogTemplateVersion(
                cmp_key=cmp_key,
                version=i,
                released=start + dt.timedelta(days=offset),
                changes=changes,
            )
        )
    return versions


def template_on(
    history: Sequence[DialogTemplateVersion], date: dt.date
) -> Optional[DialogTemplateVersion]:
    """The template version in effect on *date*, or ``None`` before v1."""
    current: Optional[DialogTemplateVersion] = None
    for version in history:
        if version.released <= date:
            current = version
        else:
            break
    return current


def changes_between(
    history: Sequence[DialogTemplateVersion],
    start: dt.date,
    end: dt.date,
) -> int:
    """How many template changes fall inside ``[start, end]``.

    This is the number a point-in-time study silently ignores: a
    snapshot observes one version and cannot tell whether its findings
    (wording, button layout) still hold a month later.
    """
    return sum(1 for v in history[1:] if start <= v.released <= end)


def snapshot_staleness(
    history: Sequence[DialogTemplateVersion],
    snapshot_date: dt.date,
    horizon_days: int = 180,
) -> int:
    """Template changes within *horizon_days* after a snapshot study."""
    return changes_between(
        history,
        snapshot_date,
        snapshot_date + dt.timedelta(days=horizon_days),
    )


def change_kind_histogram(
    history: Sequence[DialogTemplateVersion],
) -> Dict[str, int]:
    """Distribution of what the vendor iterated on."""
    out = {kind: 0 for kind in CHANGE_KINDS}
    for version in history:
        for kind in version.changes:
            out[kind] += 1
    return out
