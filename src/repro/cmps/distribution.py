"""Consent distribution to third-party vendors (I6).

Item I6 asks "how long does it take CMPs to distribute consent
decisions". The answer differs wildly by CMP and by decision:

* TCF CMPs (Quantcast, Cookiebot, ...) distribute *accepts* almost for
  free -- the consent string is written once and vendors read it through
  ``__cmp()``/the global cookie; only a burst of parallel pixel syncs
  (with a ``gdpr_consent=`` parameter) follows;
* TrustArc-style *opt-outs* trigger the sequential multi-partner
  waterfall measured in Figure 9.

This module models the accept- and reject-path distribution for every
CMP, so the Figure 9 asymmetry can be put in ecosystem context.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cmps.base import CMP_KEYS, cmp_by_key
from repro.cmps.trustarc import trustarc_optout_waterfall
from repro.net.http import HttpRequest, HttpResponse, HttpTransaction
from repro.net.url import URL

#: Per CMP: (number of vendor-sync pixels fired on accept, whether the
#: reject path runs a sequential partner waterfall).
_DISTRIBUTION_TRAITS: Dict[str, Tuple[int, bool]] = {
    "quantcast": (24, False),
    "onetrust": (12, False),
    "trustarc": (8, True),
    "cookiebot": (6, False),
    "liveramp": (18, False),
    "crownpeak": (5, False),
}


@dataclass(frozen=True)
class DistributionRun:
    """One consent-distribution measurement."""

    cmp_key: str
    decision: str  # "accept" | "reject"
    transactions: Tuple[HttpTransaction, ...]
    #: Seconds until every vendor has been informed.
    completion_time: float

    @property
    def n_requests(self) -> int:
        return len(self.transactions)

    @property
    def vendor_domains(self) -> Tuple[str, ...]:
        return tuple(sorted({t.request.url.host for t in self.transactions}))


def distribute_consent(
    cmp_key: str,
    decision: str,
    rng: random.Random,
    *,
    consent_param: str = "BOk",
) -> DistributionRun:
    """Simulate distributing one decision to the CMP's vendors."""
    if decision not in ("accept", "reject"):
        raise ValueError(f"unknown decision {decision!r}")
    model = cmp_by_key(cmp_key)
    n_pixels, waterfall_on_reject = _DISTRIBUTION_TRAITS[cmp_key]

    if decision == "reject" and waterfall_on_reject:
        run = trustarc_optout_waterfall(rng)
        return DistributionRun(
            cmp_key=cmp_key,
            decision=decision,
            transactions=run.transactions,
            completion_time=run.total_duration,
        )

    # Parallel pixel syncs: the consent string travels as a URL
    # parameter; completion is the slowest pixel, not the sum.
    txs: List[HttpTransaction] = []
    completion = 0.15  # writing the cookie / consent string itself
    n = n_pixels if decision == "accept" else max(2, n_pixels // 3)
    for i in range(n):
        latency = max(0.03, rng.gauss(0.22, 0.09))
        txs.append(
            HttpTransaction(
                request=HttpRequest(
                    url=URL.parse(
                        f"https://sync{i}.adpartners.net/px?"
                        f"gdpr=1&gdpr_consent={consent_param}"
                    ),
                    resource_type="image",
                ),
                response=HttpResponse(status=200, body_size=43),
                started_at=0.15,
                duration=latency,
            )
        )
        completion = max(completion, 0.15 + latency)
    return DistributionRun(
        cmp_key=cmp_key,
        decision=decision,
        transactions=tuple(txs),
        completion_time=completion,
    )


def distribution_comparison(
    seed: int = 31, runs_per_cell: int = 25
) -> Dict[Tuple[str, str], float]:
    """Median completion time per (CMP, decision) cell."""
    from repro.stats.descriptive import median

    rng = random.Random(seed)
    out: Dict[Tuple[str, str], float] = {}
    for cmp_key in CMP_KEYS:
        for decision in ("accept", "reject"):
            times = [
                distribute_consent(cmp_key, decision, rng).completion_time
                for _ in range(runs_per_cell)
            ]
            out[(cmp_key, decision)] = median(times)
    return out
