"""Cookiebot (Cybot).

Cookiebot is an inexpensive, easy-to-embed CMP that the paper identifies
as a "gateway CMP": many websites adopt it first and later migrate onto
other CMPs, making it the clear loser of inter-CMP competition -- it lost
an order of magnitude more websites than it gained (Figure 4).
"""

from __future__ import annotations

import datetime as dt
import random

from repro.cmps.base import CmpModel, DialogButton, DialogDescriptor

MODEL = CmpModel(
    key="cookiebot",
    name="Cookiebot",
    fingerprint_host="consent.cookiebot.com",
    auxiliary_hosts=("consentcdn.cookiebot.com",),
    launch_date=dt.date(2017, 1, 1),
    implements_tcf=True,
    tcf_cmp_id=14,
    primary_market="EU",
    eu_tld_share=0.45,
)

#: Cookiebot offers little customization: most sites run the stock
#: two-page banner; a minority enable the one-click "Deny" layout.
DIRECT_DENY_SHARE = 0.30
API_ONLY_SHARE = 0.05


def sample_dialog(rng: random.Random) -> DialogDescriptor:
    """Draw one publisher's Cookiebot dialog configuration."""
    if rng.random() < API_ONLY_SHARE:
        return DialogDescriptor(
            cmp_key=MODEL.key, kind="none", custom_api_only=True
        )
    accept = DialogButton("OK", "accept-all")
    if rng.random() < DIRECT_DENY_SHARE:
        buttons = (
            DialogButton("Deny", "reject-all"),
            DialogButton("Customize", "more-options"),
            accept,
            DialogButton("Allow selection", "save", page=2),
        )
    else:
        buttons = (
            DialogButton("Show details", "more-options"),
            accept,
            DialogButton("Use necessary cookies only", "confirm-reject", page=2),
            DialogButton("Allow selection", "save", page=2),
        )
    return DialogDescriptor(
        cmp_key=MODEL.key,
        kind="banner",
        buttons=buttons,
        accept_wording=accept.label,
    )
