"""The CMP detection engine.

Applies the network fingerprints to captures. Detection deliberately
relies on HTTP request patterns only -- no HTML or DOM parsing -- which
the paper found far more reliable, and which detects CMPs even when no
dialog is shown (e.g. a EU-centric site visited from the US).

Includes the one documented manual correction: for a two-day period in
July 2018, Quantcast embedded parts of its CMP script for all customers
of its *analytics* product, a different line of the firm's business; the
paper manually excludes this outlier (Section 3.5, "CMP Detection").

Detection is bitmask-based: each fingerprint owns one bit (in
``FINGERPRINTS`` table order), every distinct host resolves -- once,
memoized -- to the mask of fingerprints it matches, and a capture's
detection state is the OR of its contacted hosts' masks. All per-mask
derived values (matched keys, first match, overcount flag) come from
precomputed 64-entry tables, which is what makes the columnar batch
path (:meth:`DetectionEngine.detect_batch`) a table lookup per crawl
instead of a fingerprint loop per capture.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crawler.capture import Capture
from repro.detect.fingerprints import FINGERPRINTS
from repro.obs import Observability, resolve_obs

#: The two-day Quantcast analytics outlier window (Section 3.5).
QUANTCAST_OUTLIER_WINDOW = (dt.date(2018, 7, 10), dt.date(2018, 7, 11))

_WIN_LO = QUANTCAST_OUTLIER_WINDOW[0].toordinal()
_WIN_HI = QUANTCAST_OUTLIER_WINDOW[1].toordinal()

#: Fingerprint bit i <-> FINGERPRINTS[i] (table order == match order).
_FP_KEYS: Tuple[str, ...] = tuple(fp.cmp_key for fp in FINGERPRINTS)
_QBIT = 1 << _FP_KEYS.index("quantcast")

#: Per-mask derived tables (2**len(FINGERPRINTS) == 64 entries).
_MASK_KEYS: Tuple[Tuple[str, ...], ...] = tuple(
    tuple(key for i, key in enumerate(_FP_KEYS) if mask & (1 << i))
    for mask in range(1 << len(_FP_KEYS))
)
_MASK_FIRST: Tuple[Optional[str], ...] = tuple(
    keys[0] if keys else None for keys in _MASK_KEYS
)
_MASK_COUNT: Tuple[int, ...] = tuple(len(keys) for keys in _MASK_KEYS)

#: host -> fingerprint mask, filled on first sight of each host.
_HOST_MASKS: Dict[str, int] = {}


def host_mask(host: str) -> int:
    """The fingerprint bitmask of one host (memoized).

    The host vocabulary of a run is small (site domains plus a handful
    of CMP/third-party hosts), so after warm-up this is one dict hit
    per contacted host.
    """
    mask = _HOST_MASKS.get(host)
    if mask is None:
        mask = 0
        for i, fp in enumerate(FINGERPRINTS):
            if fp.matches_host(host):
                mask |= 1 << i
        # Benign race: the mask is a pure function of the host, so
        # thread workers racing here store equal values.
        _HOST_MASKS[host] = mask  # repro-lint: disable=RACE001
    return mask


def hosts_mask(hosts: Sequence[str]) -> int:
    """The combined fingerprint mask of a host sequence."""
    mask = 0
    masks = _HOST_MASKS
    for host in hosts:
        m = masks.get(host)
        if m is None:
            m = host_mask(host)
        mask |= m
    return mask


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of running detection on one capture."""

    #: All CMPs whose unique hostname was contacted.
    matched: Tuple[str, ...]
    #: Matches dropped by manual corrections (the Quantcast outlier).
    excluded: Tuple[str, ...] = ()

    @property
    def cmp_key(self) -> Optional[str]:
        """The detected CMP (first match), or ``None``."""
        return self.matched[0] if self.matched else None

    @property
    def overcounted(self) -> bool:
        """More than one CMP present -- affects 0.01% of captures."""
        return len(self.matched) > 1


class DetectionEngine:
    """Stateful wrapper tracking detection statistics."""

    def __init__(
        self,
        apply_outlier_exclusion: bool = True,
        obs: "Optional[Observability]" = None,
    ):
        self.apply_outlier_exclusion = apply_outlier_exclusion
        self.captures_seen = 0
        self.overcounted = 0
        metrics = resolve_obs(obs).metrics
        self._m_captures = metrics.counter(
            "detect_captures_total", "captures run through CMP detection"
        )
        self._m_matches = metrics.counter(
            "detect_matches_total", "fingerprint matches by CMP"
        )
        self._m_overcounted = metrics.counter(
            "detect_overcounted_total", "captures matching >1 CMP"
        )
        self._m_excluded = metrics.counter(
            "detect_excluded_total",
            "matches dropped by manual corrections (Section 3.5)",
        )

    def detect(self, capture: Capture) -> DetectionResult:
        result = detect_cmp(
            capture, apply_outlier_exclusion=self.apply_outlier_exclusion
        )
        self.captures_seen += 1
        self._m_captures.inc()
        if result.cmp_key is not None:
            self._m_matches.inc(cmp=result.cmp_key)
        for excluded in result.excluded:
            self._m_excluded.inc(cmp=excluded)
        if result.overcounted:
            self.overcounted += 1
            self._m_overcounted.inc()
        return result

    def detect_compact(self, mask: int, date_ordinal: int) -> Optional[str]:
        """Columnar-path detection: one precomputed host mask in, the
        detected CMP key out. Bit-identical to :meth:`detect` on the
        capture the mask came from (pinned by tests)."""
        self.captures_seen += 1
        self._m_captures.inc()
        if (
            self.apply_outlier_exclusion
            and mask & _QBIT
            and _WIN_LO <= date_ordinal <= _WIN_HI
        ):
            mask &= ~_QBIT
            self._m_excluded.inc(cmp="quantcast")
        key = _MASK_FIRST[mask]
        if key is not None:
            self._m_matches.inc(cmp=key)
            if _MASK_COUNT[mask] > 1:
                self.overcounted += 1
                self._m_overcounted.inc()
        return key

    def detect_batch(
        self, masks: Sequence[int], date_ordinals: Sequence[int]
    ) -> List[Optional[str]]:
        """Detect a whole column batch; metrics are metered in aggregate
        (one counter update per label instead of per crawl)."""
        exclusion = self.apply_outlier_exclusion
        first = _MASK_FIRST
        count = _MASK_COUNT
        keys: List[Optional[str]] = []
        append = keys.append
        matches: Dict[str, int] = {}
        excluded = 0
        overcounted = 0
        for mask, ordinal in zip(masks, date_ordinals):
            if exclusion and mask & _QBIT and _WIN_LO <= ordinal <= _WIN_HI:
                mask &= ~_QBIT
                excluded += 1
            key = first[mask]
            if key is not None:
                matches[key] = matches.get(key, 0) + 1
                if count[mask] > 1:
                    overcounted += 1
            append(key)
        n = len(keys)
        self.captures_seen += n
        self.overcounted += overcounted
        if n:
            self._m_captures.inc(n)
        for key, hits in matches.items():
            self._m_matches.inc(hits, cmp=key)
        if excluded:
            self._m_excluded.inc(excluded, cmp="quantcast")
        if overcounted:
            self._m_overcounted.inc(overcounted)
        return keys

    def absorb(
        self,
        captures_seen: int,
        overcounted: int,
        matches: Optional[Dict[str, int]] = None,
    ) -> None:
        """Fold counts from a shard-local engine into this one.

        Shard workers run their own engine without observability; the
        parent replays the aggregate counts here so process-level
        metrics stay complete. Per-CMP match counts are reconstructed
        from the merged observations by the caller; exclusion events are
        not persisted in shard results and are only metered where
        detection runs in-process.
        """
        self.captures_seen += captures_seen
        self.overcounted += overcounted
        if captures_seen:
            self._m_captures.inc(captures_seen)
        if overcounted:
            self._m_overcounted.inc(overcounted)
        for cmp_key, count in (matches or {}).items():
            self._m_matches.inc(count, cmp=cmp_key)

    @property
    def overcount_rate(self) -> float:
        return self.overcounted / self.captures_seen if self.captures_seen else 0.0


def detect_cmp(
    capture: Capture, *, apply_outlier_exclusion: bool = True
) -> DetectionResult:
    """Detect the CMP(s) present in one capture from its network traffic."""
    mask = hosts_mask(capture.contacted_hosts)
    excluded: Tuple[str, ...] = ()
    if (
        apply_outlier_exclusion
        and mask & _QBIT
        and _in_quantcast_outlier_window(capture.captured_at.date())
    ):
        mask &= ~_QBIT
        excluded = ("quantcast",)
    return DetectionResult(matched=_MASK_KEYS[mask], excluded=excluded)


def _in_quantcast_outlier_window(date: dt.date) -> bool:
    start, end = QUANTCAST_OUTLIER_WINDOW
    return start <= date <= end
