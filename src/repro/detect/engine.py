"""The CMP detection engine.

Applies the network fingerprints to captures. Detection deliberately
relies on HTTP request patterns only -- no HTML or DOM parsing -- which
the paper found far more reliable, and which detects CMPs even when no
dialog is shown (e.g. a EU-centric site visited from the US).

Includes the one documented manual correction: for a two-day period in
July 2018, Quantcast embedded parts of its CMP script for all customers
of its *analytics* product, a different line of the firm's business; the
paper manually excludes this outlier (Section 3.5, "CMP Detection").
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crawler.capture import Capture
from repro.detect.fingerprints import FINGERPRINTS

#: The two-day Quantcast analytics outlier window (Section 3.5).
QUANTCAST_OUTLIER_WINDOW = (dt.date(2018, 7, 10), dt.date(2018, 7, 11))


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of running detection on one capture."""

    #: All CMPs whose unique hostname was contacted.
    matched: Tuple[str, ...]
    #: Matches dropped by manual corrections (the Quantcast outlier).
    excluded: Tuple[str, ...] = ()

    @property
    def cmp_key(self) -> Optional[str]:
        """The detected CMP (first match), or ``None``."""
        return self.matched[0] if self.matched else None

    @property
    def overcounted(self) -> bool:
        """More than one CMP present -- affects 0.01% of captures."""
        return len(self.matched) > 1


class DetectionEngine:
    """Stateful wrapper tracking detection statistics."""

    def __init__(self, apply_outlier_exclusion: bool = True):
        self.apply_outlier_exclusion = apply_outlier_exclusion
        self.captures_seen = 0
        self.overcounted = 0

    def detect(self, capture: Capture) -> DetectionResult:
        result = detect_cmp(
            capture, apply_outlier_exclusion=self.apply_outlier_exclusion
        )
        self.captures_seen += 1
        if result.overcounted:
            self.overcounted += 1
        return result

    @property
    def overcount_rate(self) -> float:
        return self.overcounted / self.captures_seen if self.captures_seen else 0.0


def detect_cmp(
    capture: Capture, *, apply_outlier_exclusion: bool = True
) -> DetectionResult:
    """Detect the CMP(s) present in one capture from its network traffic."""
    hosts = set(capture.contacted_hosts)
    matched = []
    for fp in FINGERPRINTS:
        if any(fp.matches_host(h) for h in hosts):
            matched.append(fp.cmp_key)
    excluded = []
    if (
        apply_outlier_exclusion
        and "quantcast" in matched
        and _in_quantcast_outlier_window(capture.captured_at.date())
    ):
        matched.remove("quantcast")
        excluded.append("quantcast")
    return DetectionResult(matched=tuple(matched), excluded=tuple(excluded))


def _in_quantcast_outlier_window(date: dt.date) -> bool:
    start, end = QUANTCAST_OUTLIER_WINDOW
    return start <= date <= end
