"""The CMP detection engine.

Applies the network fingerprints to captures. Detection deliberately
relies on HTTP request patterns only -- no HTML or DOM parsing -- which
the paper found far more reliable, and which detects CMPs even when no
dialog is shown (e.g. a EU-centric site visited from the US).

Includes the one documented manual correction: for a two-day period in
July 2018, Quantcast embedded parts of its CMP script for all customers
of its *analytics* product, a different line of the firm's business; the
paper manually excludes this outlier (Section 3.5, "CMP Detection").
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crawler.capture import Capture
from repro.detect.fingerprints import FINGERPRINTS
from repro.obs import Observability, resolve_obs

#: The two-day Quantcast analytics outlier window (Section 3.5).
QUANTCAST_OUTLIER_WINDOW = (dt.date(2018, 7, 10), dt.date(2018, 7, 11))


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of running detection on one capture."""

    #: All CMPs whose unique hostname was contacted.
    matched: Tuple[str, ...]
    #: Matches dropped by manual corrections (the Quantcast outlier).
    excluded: Tuple[str, ...] = ()

    @property
    def cmp_key(self) -> Optional[str]:
        """The detected CMP (first match), or ``None``."""
        return self.matched[0] if self.matched else None

    @property
    def overcounted(self) -> bool:
        """More than one CMP present -- affects 0.01% of captures."""
        return len(self.matched) > 1


class DetectionEngine:
    """Stateful wrapper tracking detection statistics."""

    def __init__(
        self,
        apply_outlier_exclusion: bool = True,
        obs: "Optional[Observability]" = None,
    ):
        self.apply_outlier_exclusion = apply_outlier_exclusion
        self.captures_seen = 0
        self.overcounted = 0
        metrics = resolve_obs(obs).metrics
        self._m_captures = metrics.counter(
            "detect_captures_total", "captures run through CMP detection"
        )
        self._m_matches = metrics.counter(
            "detect_matches_total", "fingerprint matches by CMP"
        )
        self._m_overcounted = metrics.counter(
            "detect_overcounted_total", "captures matching >1 CMP"
        )
        self._m_excluded = metrics.counter(
            "detect_excluded_total",
            "matches dropped by manual corrections (Section 3.5)",
        )

    def detect(self, capture: Capture) -> DetectionResult:
        result = detect_cmp(
            capture, apply_outlier_exclusion=self.apply_outlier_exclusion
        )
        self.captures_seen += 1
        self._m_captures.inc()
        if result.cmp_key is not None:
            self._m_matches.inc(cmp=result.cmp_key)
        for excluded in result.excluded:
            self._m_excluded.inc(cmp=excluded)
        if result.overcounted:
            self.overcounted += 1
            self._m_overcounted.inc()
        return result

    def absorb(
        self,
        captures_seen: int,
        overcounted: int,
        matches: Optional[Dict[str, int]] = None,
    ) -> None:
        """Fold counts from a shard-local engine into this one.

        Shard workers run their own engine without observability; the
        parent replays the aggregate counts here so process-level
        metrics stay complete. Per-CMP match counts are reconstructed
        from the merged observations by the caller; exclusion events are
        not persisted in shard results and are only metered where
        detection runs in-process.
        """
        self.captures_seen += captures_seen
        self.overcounted += overcounted
        if captures_seen:
            self._m_captures.inc(captures_seen)
        if overcounted:
            self._m_overcounted.inc(overcounted)
        for cmp_key, count in (matches or {}).items():
            self._m_matches.inc(count, cmp=cmp_key)

    @property
    def overcount_rate(self) -> float:
        return self.overcounted / self.captures_seen if self.captures_seen else 0.0


def detect_cmp(
    capture: Capture, *, apply_outlier_exclusion: bool = True
) -> DetectionResult:
    """Detect the CMP(s) present in one capture from its network traffic."""
    hosts = set(capture.contacted_hosts)
    matched = []
    for fp in FINGERPRINTS:
        if any(fp.matches_host(h) for h in hosts):
            matched.append(fp.cmp_key)
    excluded = []
    if (
        apply_outlier_exclusion
        and "quantcast" in matched
        and _in_quantcast_outlier_window(capture.captured_at.date())
    ):
        matched.remove("quantcast")
        excluded.append("quantcast")
    return DetectionResult(matched=tuple(matched), excluded=tuple(excluded))


def _in_quantcast_outlier_window(date: dt.date) -> bool:
    start, end = QUANTCAST_OUTLIER_WINDOW
    return start <= date <= end
