"""Fingerprint validation against captured screenshots/DOM.

Section 3.2 describes the validation loop behind Table A.2: candidate
fingerprints were checked against toplist screenshots and historic
captures, and every fingerprint that produced false positives was
discarded. This module implements that loop over our captures: for every
capture, compare what the network fingerprints say with what the
rendered dialog (the screenshot stand-in) shows, and classify the
agreement.

The expected asymmetry is the paper's: network detection *without* a
visible dialog is normal (geo-gated or API-only CMPs), while a visible
dialog *without* a network match would be a missed fingerprint -- the
error class the GDPR-phrase search is there to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.crawler.capture import Capture
from repro.detect.domdetect import detect_cmp_from_dialog
from repro.detect.engine import detect_cmp
from repro.detect.phrases import contains_gdpr_phrase


@dataclass
class ValidationReport:
    """Agreement between network fingerprints and rendered dialogs."""

    #: Both methods agree on the same CMP.
    agreements: int = 0
    #: Network match, no dialog rendered (expected: geo-gating,
    #: API-only publishers, dialog-free configurations).
    network_only: int = 0
    #: Rendered dialog with NO network match: a missed fingerprint.
    missed_fingerprints: List[str] = field(default_factory=list)
    #: Network and dialog disagree on the CMP: a wrong fingerprint.
    conflicts: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Captures whose page text contains GDPR phrases but no fingerprint
    #: matched -- candidates for manual review (Section 3.2).
    phrase_only_domains: List[str] = field(default_factory=list)
    captures_checked: int = 0

    @property
    def is_clean(self) -> bool:
        """True when no fingerprint produced false or missing matches."""
        return not self.missed_fingerprints and not self.conflicts


def validate_fingerprints(
    captures: Iterable[Capture],
) -> ValidationReport:
    """Run the validation loop over toplist captures (with DOM stored)."""
    report = ValidationReport()
    for capture in captures:
        report.captures_checked += 1
        network = detect_cmp(capture).cmp_key
        visual = detect_cmp_from_dialog(
            capture.dom_dialog, capture.dialog_shown
        )
        if network is not None and visual is not None:
            if network == visual:
                report.agreements += 1
            else:
                report.conflicts.append(
                    (capture.final_domain, network, visual)
                )
        elif network is not None:
            report.network_only += 1
        elif visual is not None:
            report.missed_fingerprints.append(capture.final_domain)
        else:
            # Neither fired; flag pages that *talk* like consent
            # dialogs for manual review.
            if capture.dialog_shown or contains_gdpr_phrase(
                capture.page_text
            ):
                report.phrase_only_domains.append(capture.final_domain)
    return report
