"""CMP fingerprints (Table A.2).

Each CMP is detected through fingerprints of varying specificity,
assembled by the paper from recorded network traffic, vendor
documentation and manual analysis:

1. a **unique hostname** contacted on page load -- the primary, robust
   indicator (Table A.2);
2. secondary **URL patterns** on specific HTTP requests;
3. **CSS selectors** and **text patterns** -- found "much more
   unreliable" and used only for validation, never for counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cmps.base import CMP_KEYS, cmp_by_key


@dataclass(frozen=True)
class Fingerprint:
    """All indicators for one CMP."""

    cmp_key: str
    #: The unique hostname (Table A.2); the load-bearing indicator.
    unique_hostname: str
    #: Additional URL substrings that corroborate a detection.
    url_patterns: Tuple[str, ...] = ()
    #: CSS selectors of the dialog (validation only).
    css_selectors: Tuple[str, ...] = ()
    #: Characteristic dialog strings (validation only).
    text_patterns: Tuple[str, ...] = ()

    def matches_host(self, host: str) -> bool:
        """True if *host* is (a subdomain of) the unique hostname."""
        host = host.lower()
        return host == self.unique_hostname or host.endswith(
            "." + self.unique_hostname
        )

    def matches_url(self, url: str) -> bool:
        url = url.lower()
        if self.unique_hostname in url:
            return True
        return any(p in url for p in self.url_patterns)


#: The synthesized indicators, in the paper's table order. The unique
#: hostnames are verbatim from Table A.2.
FINGERPRINTS: Tuple[Fingerprint, ...] = (
    Fingerprint(
        cmp_key="onetrust",
        unique_hostname="cdn.cookielaw.org",
        url_patterns=("otsdkstub", "onetrust"),
        css_selectors=("#onetrust-banner-sdk", "#optanon-popup-wrapper"),
        text_patterns=("Powered by OneTrust",),
    ),
    Fingerprint(
        cmp_key="quantcast",
        unique_hostname="quantcast.mgr.consensu.org",
        url_patterns=("cmp.quantcast.com",),
        css_selectors=(".qc-cmp-ui", ".qc-cmp2-container"),
        text_patterns=("Powered by Quantcast",),
    ),
    Fingerprint(
        cmp_key="trustarc",
        unique_hostname="consent.trustarc.com",
        url_patterns=("consent-pref.trustarc.com", "truste.com"),
        css_selectors=("#truste-consent-track",),
        text_patterns=("TrustArc",),
    ),
    Fingerprint(
        cmp_key="cookiebot",
        unique_hostname="consent.cookiebot.com",
        url_patterns=("consentcdn.cookiebot.com",),
        css_selectors=("#CybotCookiebotDialog",),
        text_patterns=("Cookiebot",),
    ),
    Fingerprint(
        cmp_key="liveramp",
        unique_hostname="cmp.choice.faktor.io",
        url_patterns=("faktor.io",),
        css_selectors=(".lr-consent-container",),
        text_patterns=("LiveRamp",),
    ),
    Fingerprint(
        cmp_key="crownpeak",
        unique_hostname="iabmap.evidon.com",
        url_patterns=("evidon.com",),
        css_selectors=("#_evidon_banner",),
        text_patterns=("Evidon",),
    ),
)

_BY_KEY = {fp.cmp_key: fp for fp in FINGERPRINTS}
assert set(_BY_KEY) == set(CMP_KEYS)


def fingerprint_for(cmp_key: str) -> Fingerprint:
    """Look up the fingerprint of one CMP."""
    try:
        return _BY_KEY[cmp_key]
    except KeyError:
        raise KeyError(f"no fingerprint for {cmp_key!r}")


def verify_against_models() -> None:
    """Assert fingerprint hostnames agree with the CMP behaviour models.

    The paper validates its fingerprints against captured traffic and
    historic screenshots; here the equivalent check is that every
    :class:`~repro.cmps.base.CmpModel` emits its fingerprint hostname.
    """
    for fp in FINGERPRINTS:
        model = cmp_by_key(fp.cmp_key)
        if model.fingerprint_host != fp.unique_hostname:
            raise AssertionError(
                f"{fp.cmp_key}: model emits {model.fingerprint_host!r} but "
                f"fingerprint expects {fp.unique_hostname!r}"
            )
