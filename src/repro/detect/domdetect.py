"""Secondary, DOM-based CMP detection.

The paper assembled CSS-selector and text fingerprints alongside the
network patterns, but found DOM parsing "much more unreliable ... for
analyses which we ultimately decided not to include" (Section 3.5):
dialogs are only rendered for some visitors, custom publisher UIs carry
none of the stock markup, and geo-gating hides the dialog entirely while
the network pattern remains visible. This module implements the
DOM-based detector precisely so that unreliability can be quantified
(see ``benchmarks/bench_ablation.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cmps.base import DialogDescriptor
from repro.detect.fingerprints import FINGERPRINTS
from repro.web.dom import DomNode, build_dialog_dom


def detect_cmp_from_dom(dom: DomNode) -> Tuple[str, ...]:
    """CMPs whose CSS-selector fingerprints match the DOM tree."""
    matched = []
    for fp in FINGERPRINTS:
        if any(dom.select(selector) for selector in fp.css_selectors):
            matched.append(fp.cmp_key)
    return tuple(matched)


def detect_cmp_from_text(text: str) -> Tuple[str, ...]:
    """CMPs whose text fingerprints ("Powered by ...") occur in *text*."""
    lowered = text.lower()
    return tuple(
        fp.cmp_key
        for fp in FINGERPRINTS
        if any(pattern.lower() in lowered for pattern in fp.text_patterns)
    )


def detect_cmp_from_dialog(
    dialog: Optional[DialogDescriptor], dialog_shown: bool
) -> Optional[str]:
    """Full DOM-based detection for one capture.

    Renders the dialog descriptor the way the page would have and runs
    both the selector and text fingerprints. Returns the detected CMP
    key or ``None`` -- which happens whenever the dialog was not shown
    to this visitor or the publisher uses a custom UI, the two failure
    modes the paper calls out.
    """
    if dialog is None or not dialog_shown:
        return None
    node = build_dialog_dom(dialog)
    if node is None:
        return None
    by_selector = detect_cmp_from_dom(node)
    if by_selector:
        return by_selector[0]
    by_text = detect_cmp_from_text(node.all_text)
    return by_text[0] if by_text else None
