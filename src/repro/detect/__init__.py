"""CMP detection.

Implements the paper's fingerprint approach (Section 3.2): each CMP is
identified by a unique hostname contacted on page load (Table A.2),
which is robust across heterogeneous dialog designs and works even when
the site's configuration does not trigger a visible dialog. CSS-selector
and text fingerprints exist as secondary validators, and the GDPR phrase
list from Degeling et al. is used to check that no consent dialogs are
missed.
"""

from repro.detect.domdetect import (
    detect_cmp_from_dialog,
    detect_cmp_from_dom,
    detect_cmp_from_text,
)
from repro.detect.engine import DetectionEngine, DetectionResult, detect_cmp
from repro.detect.fingerprints import FINGERPRINTS, Fingerprint, fingerprint_for
from repro.detect.phrases import contains_gdpr_phrase, find_gdpr_phrases

__all__ = [
    "Fingerprint",
    "FINGERPRINTS",
    "fingerprint_for",
    "DetectionEngine",
    "DetectionResult",
    "detect_cmp",
    "detect_cmp_from_dom",
    "detect_cmp_from_text",
    "detect_cmp_from_dialog",
    "contains_gdpr_phrase",
    "find_gdpr_phrases",
]
