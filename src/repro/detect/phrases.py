"""GDPR phrase scanning.

The paper double-checks its fingerprints by searching toplist captures
for the consent-banner phrases catalogued by Degeling et al. (NDSS '19):
any page containing such a phrase but matching no fingerprint would
indicate a missed CMP (Section 3.2).
"""

from __future__ import annotations

from typing import Tuple

from repro.datasets import GDPR_PHRASES


def find_gdpr_phrases(text: str) -> Tuple[str, ...]:
    """All known GDPR consent phrases occurring in *text*."""
    lowered = text.lower()
    return tuple(p for p in GDPR_PHRASES if p in lowered)


def contains_gdpr_phrase(text: str) -> bool:
    """True if *text* contains any known GDPR consent phrase."""
    lowered = text.lower()
    return any(p in lowered for p in GDPR_PHRASES)
