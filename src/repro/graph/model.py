"""The consent ecosystem as a deterministic typed property graph.

One :class:`ConsentGraph` holds every entity the paper's analyses touch
-- domains, CMPs, TCF vendors, GVL versions, rankings, countries,
vantages -- as typed nodes, and every relationship between them as typed
property edges. The analyses that :mod:`repro.core` derives ad hoc per
figure (CMP marketshare, adoption series, vantage tables, GVL churn)
become *projections* of this one relational structure
(:mod:`repro.graph.query`), each pinned bit-identical to the original
derivation by the differential parity suite.

Design rules, all load-bearing:

* **Interning.** A node is keyed ``(type, natural_key)`` and interned on
  first use; adding it again returns the same id, and property updates
  merge (a conflicting re-assignment raises -- two ingestors must never
  disagree about a fact). Edges are keyed ``(etype, src, dst, props)``
  and deduplicate the same way, so every ingestor is idempotent by
  construction (re-ingesting the same source changes nothing).
* **Canonical digest.** :meth:`ConsentGraph.digest` hashes the *sorted*
  node and edge relations, never insertion order. Two graphs holding the
  same facts digest identically no matter which ingestor ran first --
  the property the ingest-order-independence tests pin, and what makes
  the digest usable as a :mod:`repro.cache` content address.
* **Order-free queries.** Nothing in the query layer may read insertion
  order; every traversal sorts explicitly (by natural key, by a ``seq``
  property, by version number). :meth:`adjacency` hands out sorted edge
  lists for exactly this reason.

The graph is deliberately in-memory and plain-Python: at study scale
(tens of thousands of capture rows, a few hundred vendors over a few
hundred GVL versions) a dict-interned edge table builds in well under a
second (``BENCH_graph.json``), and the cache layer persists it as one
canonical JSON payload.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Property values are JSON scalars only, so the canonical payload
#: round-trips exactly and digests are stable across Python versions.
PropValue = object  # str | int | float | bool | None

#: The node types the ingestors populate. Not enforced as a closed set
#: (new ingestors may extend the schema), but declared for docs/tests.
NODE_TYPES: Tuple[str, ...] = (
    "domain",
    "cmp",
    "vendor",
    "gvl_version",
    "purpose",
    "ranking",
    "country",
    "region",
    "vantage",
)

#: Edge types, same contract as :data:`NODE_TYPES`.
EDGE_TYPES: Tuple[str, ...] = (
    "CAPTURED",      # domain -> vantage, one per capture row {seq, day, cmp}
    "OBSERVES",      # domain -> cmp, deduplicated "ever seen with"
    "ADOPTED",       # domain -> cmp, worldgen episode {start, end}
    "RANK",          # domain -> ranking {rank} or {bucket}
    "COUNTRY",       # ranking -> country
    "REGISTERED_IN", # domain -> country (TLD-derived)
    "IN_REGION",     # country/vantage -> region
    "MEMBER_OF",     # vendor -> gvl_version {consent, li} purpose CSVs
    "DECLARES",      # vendor -> purpose, deduplicated "ever declared"
)


class GraphError(ValueError):
    """Raised on contradictory graph construction (conflicting facts)."""


def _canonical_props(props: Dict[str, PropValue]) -> Tuple[Tuple[str, PropValue], ...]:
    return tuple(sorted(props.items()))


class ConsentGraph:
    """An interned, digestable typed property graph."""

    def __init__(self) -> None:
        #: (type, key) -> node id, first-appearance interned.
        self._node_ids: Dict[Tuple[str, str], int] = {}
        #: node id -> (type, key).
        self._nodes: List[Tuple[str, str]] = []
        #: node id -> merged property dict.
        self._node_props: List[Dict[str, PropValue]] = []
        #: (etype, src, dst, canonical props) -> edge id.
        self._edge_ids: Dict[
            Tuple[str, int, int, Tuple[Tuple[str, PropValue], ...]], int
        ] = {}
        #: edge id -> (etype, src, dst, props dict).
        self._edges: List[Tuple[str, int, int, Dict[str, PropValue]]] = []
        #: etype -> edge ids (insertion order; queries must re-sort).
        self._edges_by_type: Dict[str, List[int]] = {}
        #: (src id, etype) -> edge ids, for adjacency walks.
        self._out: Dict[Tuple[int, str], List[int]] = {}
        #: (dst id, etype) -> edge ids.
        self._in: Dict[Tuple[int, str], List[int]] = {}
        self._digest_cache: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, ntype: str, key: str, **props: PropValue) -> int:
        """Intern ``(ntype, key)`` and merge *props* onto it.

        Returns the node id. Setting a property to the value it already
        holds is a no-op (idempotent re-ingest); setting it to a
        *different* value raises :class:`GraphError` -- two ingestors
        claiming contradictory facts is a bug, never a merge.
        """
        node_key = (ntype, key)
        node_id = self._node_ids.get(node_key)
        if node_id is None:
            node_id = len(self._nodes)
            self._node_ids[node_key] = node_id
            self._nodes.append(node_key)
            self._node_props.append({})
            self._digest_cache = None
        if props:
            merged = self._node_props[node_id]
            for name, value in sorted(props.items()):
                existing = merged.get(name, _MISSING)
                if existing is _MISSING:
                    merged[name] = value
                    self._digest_cache = None
                elif existing != value:
                    raise GraphError(
                        f"node {ntype}:{key} property {name!r} conflict: "
                        f"{existing!r} != {value!r}"
                    )
        return node_id

    def add_edge(
        self, etype: str, src: int, dst: int, **props: PropValue
    ) -> int:
        """Add (or find) the edge ``src -[etype props]-> dst``.

        Edges are identified by their full ``(etype, src, dst, props)``
        tuple: adding the same edge twice returns the existing id, so
        ingestors are idempotent; rows that must stay distinct carry a
        distinguishing property (the capture ingestor's ``seq``).
        """
        for node_id in (src, dst):
            if not 0 <= node_id < len(self._nodes):
                raise GraphError(f"unknown node id {node_id}")
        edge_key = (etype, src, dst, _canonical_props(props))
        edge_id = self._edge_ids.get(edge_key)
        if edge_id is not None:
            return edge_id
        edge_id = len(self._edges)
        self._edge_ids[edge_key] = edge_id
        self._edges.append((etype, src, dst, dict(props)))
        self._edges_by_type.setdefault(etype, []).append(edge_id)
        self._out.setdefault((src, etype), []).append(edge_id)
        self._in.setdefault((dst, etype), []).append(edge_id)
        self._digest_cache = None
        return edge_id

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def node_id(self, ntype: str, key: str) -> Optional[int]:
        return self._node_ids.get((ntype, key))

    def node(self, node_id: int) -> Tuple[str, str]:
        """The ``(type, key)`` of a node id."""
        return self._nodes[node_id]

    def node_key(self, node_id: int) -> str:
        return self._nodes[node_id][1]

    def props(self, node_id: int) -> Dict[str, PropValue]:
        """A copy of the node's merged properties."""
        return dict(self._node_props[node_id])

    def nodes_of_type(self, ntype: str) -> List[int]:
        """Node ids of one type, sorted by natural key (never insertion
        order -- the ingest-order-independence contract)."""
        return [
            self._node_ids[(t, k)]
            for t, k in sorted(self._node_ids)
            if t == ntype
        ]

    def edge(
        self, edge_id: int
    ) -> Tuple[str, int, int, Dict[str, PropValue]]:
        etype, src, dst, props = self._edges[edge_id]
        return etype, src, dst, dict(props)

    def edges_of_type(
        self, etype: str
    ) -> List[Tuple[int, int, Dict[str, PropValue]]]:
        """All ``(src, dst, props)`` of one edge type, canonically sorted
        by ``(src (type, key), dst (type, key), props)``."""
        out = [
            (self._edges[e][1], self._edges[e][2], self._edges[e][3])
            for e in self._edges_by_type.get(etype, ())
        ]
        out.sort(
            key=lambda row: (
                self._nodes[row[0]],
                self._nodes[row[1]],
                _canonical_props(row[2]),
            )
        )
        return out

    def adjacency(
        self, node_id: int, etype: str, *, direction: str = "out"
    ) -> List[Tuple[int, Dict[str, PropValue]]]:
        """Sorted ``(neighbor id, edge props)`` pairs for one node.

        *direction* is ``"out"`` (edges leaving *node_id*) or ``"in"``.
        The list is sorted by ``(neighbor (type, key), props)`` --
        adjacency walks see a canonical order, not insertion order.
        """
        if direction == "out":
            table, pick = self._out, 2
        elif direction == "in":
            table, pick = self._in, 1
        else:
            raise GraphError(f"direction must be 'out' or 'in', not {direction!r}")
        pairs = [
            (self._edges[e][pick], self._edges[e][3])
            for e in table.get((node_id, etype), ())
        ]
        pairs.sort(key=lambda p: (self._nodes[p[0]], _canonical_props(p[1])))
        return pairs

    def degree(self, node_id: int, etype: str, *, direction: str = "in") -> int:
        """Edge count of one type at a node -- the "marketshare as
        CMP-node degree" primitive."""
        table = self._in if direction == "in" else self._out
        return len(table.get((node_id, etype), ()))

    # ------------------------------------------------------------------
    # Canonical form: digest + cache payload
    # ------------------------------------------------------------------
    def _canonical_nodes(self) -> Iterator[Tuple[str, str, Dict[str, PropValue]]]:
        for ntype, key in sorted(self._node_ids):
            yield ntype, key, self._node_props[self._node_ids[(ntype, key)]]

    def _canonical_edges(
        self,
    ) -> List[Tuple[str, Tuple[str, str], Tuple[str, str], Dict[str, PropValue]]]:
        rows = [
            (etype, self._nodes[src], self._nodes[dst], props)
            for etype, src, dst, props in self._edges
        ]
        rows.sort(
            key=lambda r: (r[0], r[1], r[2], _canonical_props(r[3]))
        )
        return rows

    def digest(self) -> str:
        """Canonical SHA-256 of the graph's full relational content.

        Insertion-order independent: the hash walks nodes sorted by
        ``(type, key)`` and edges sorted by ``(etype, endpoints,
        props)``. Equal digests therefore mean equal graphs as *sets of
        facts* -- the fingerprint the ``graph-build`` cache stage and
        the property suite rely on.
        """
        if self._digest_cache is None:
            hasher = hashlib.sha256()
            for ntype, key, props in self._canonical_nodes():
                hasher.update(
                    json.dumps([ntype, key, _sorted_dict(props)],
                               sort_keys=True).encode("utf-8")
                )
                hasher.update(b"\n")
            hasher.update(b"--edges--\n")
            for etype, src, dst, props in self._canonical_edges():
                hasher.update(
                    json.dumps(
                        [etype, list(src), list(dst), _sorted_dict(props)],
                        sort_keys=True,
                    ).encode("utf-8")
                )
                hasher.update(b"\n")
            self._digest_cache = hasher.hexdigest()
        return self._digest_cache

    def to_payload(self) -> dict:
        """The graph as one canonical JSON-serializable payload.

        Nodes and edges are emitted in canonical (sorted) order, so the
        payload bytes -- like the digest -- are insertion-order
        independent, and :meth:`from_payload` rebuilds a graph with the
        identical digest (pinned by tests).
        """
        return {
            "nodes": [
                [ntype, key, _sorted_dict(props)]
                for ntype, key, props in self._canonical_nodes()
            ],
            "edges": [
                [etype, list(src), list(dst), _sorted_dict(props)]
                for etype, src, dst, props in self._canonical_edges()
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ConsentGraph":
        """Exact inverse of :meth:`to_payload`."""
        graph = cls()
        for ntype, key, props in payload["nodes"]:
            graph.add_node(ntype, key, **props)
        for etype, src, dst, props in payload["edges"]:
            graph.add_edge(
                etype,
                graph.add_node(src[0], src[1]),
                graph.add_node(dst[0], dst[1]),
                **props,
            )
        return graph

    def stats(self) -> Dict[str, int]:
        """Node/edge counts per type (sorted keys), for reporting."""
        out: Dict[str, int] = {}
        for ntype, key in sorted(self._node_ids):
            out[f"nodes:{ntype}"] = out.get(f"nodes:{ntype}", 0) + 1
        for etype in sorted(self._edges_by_type):
            out[f"edges:{etype}"] = len(self._edges_by_type[etype])
        return out


def _sorted_dict(props: Dict[str, PropValue]) -> Dict[str, PropValue]:
    return {name: props[name] for name in sorted(props)}


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def merge_graphs(graphs: Sequence[ConsentGraph]) -> ConsentGraph:
    """Union a sequence of graphs into a fresh one.

    Because nodes and edges dedupe on their full identity, the merge is
    associative and commutative up to digest -- merging shard-built
    subgraphs in any grouping yields the same canonical graph as one
    serial build over the concatenated sources (the shard-merge
    associativity property test).
    """
    merged = ConsentGraph()
    for graph in graphs:
        for ntype, key, props in graph._canonical_nodes():
            merged.add_node(ntype, key, **props)
        for etype, src, dst, props in graph._canonical_edges():
            merged.add_edge(
                etype,
                merged.add_node(src[0], src[1]),
                merged.add_node(dst[0], dst[1]),
                **props,
            )
    return merged
