"""Paper analyses re-expressed as consent-graph queries.

Each query here shadows an existing :mod:`repro.core` derivation and is
pinned **bit-identical** to it by ``tests/test_graph_parity.py``:

==============================  =======================================
graph query                     core reference
==============================  =======================================
:func:`adoption_series`         ``AdoptionSeries.from_columnar``
:func:`vantage_table`           ``VantageTable.from_stream_rows``
:func:`observed_curve`          ``observed_marketshare``
:func:`fig5_curve`              ``marketshare_by_toplist_size``
:func:`gvl_churn`               ``GvlAnalysis`` (Figures 7/8)
:func:`country_fig5`            per-country Figure 5 (new; checked
                                against worldgen ground truth)
==============================  =======================================

The bit-identity trick: the graph's canonical form is insertion-order
free, but the reference analyses are order-*sensitive* (per-day CMP
votes tie-break by capture order; payloads serialize dicts in
first-appearance order). Queries therefore never read graph insertion
order -- they re-derive the reference order from edge *properties*:
capture order from the ``CAPTURED`` ``seq`` numbers, toplist order from
``RANK`` positions, version order from ``gvl_version`` numbers. Per-key
arithmetic is integer counting (or replays the reference's exact seeded
sampling sequence), so the floats match to the last bit.
"""

from __future__ import annotations

import datetime as dt
import random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cmps.base import CMP_KEYS
from repro.core.adoption import FADE_OUT_DAYS, AdoptionSeries, DomainTimeline
from repro.core.marketshare import (
    MarketShareCurve,
    _curve_from_buckets,
    default_sizes,
)
from repro.core.vantage import VantageAccumulator, VantageTable
from repro.graph.ingest import parse_purpose_csv
from repro.graph.model import ConsentGraph, GraphError
from repro.tcf.gvl import PurposeChange
from repro.tcf.purposes import PURPOSE_IDS

import bisect


# ----------------------------------------------------------------------
# Capture-order reconstruction (the shared substrate)
# ----------------------------------------------------------------------
def capture_rows(
    graph: ConsentGraph,
) -> List[Tuple[str, int, Optional[str], str]]:
    """Capture rows in original order, recovered from ``seq`` properties.

    Returns ``(domain, date_ordinal, cmp_key, vantage_key)`` tuples
    sorted by the global sequence number each ``CAPTURED`` edge carries
    -- exactly ``CaptureStore.iter_rows()`` order, independent of how
    (or in how many shards) the graph was built.
    """
    rows = [
        (
            props["seq"],
            graph.node_key(src),
            props["day"],
            props["cmp"] or None,
            graph.node_key(dst),
        )
        for src, dst, props in graph.edges_of_type("CAPTURED")
    ]
    rows.sort()
    return [(d, o, c, v) for _, d, o, c, v in rows]


def adoption_series(
    graph: ConsentGraph,
    restrict_to: Optional[Sequence[str]] = None,
    *,
    interpolate: bool = True,
    fade_out_days: int = FADE_OUT_DAYS,
) -> AdoptionSeries:
    """Figure 6 as a graph query (shadow of ``from_columnar``).

    Adoption is a time-windowed filter over ``CAPTURED`` edges: group
    them per domain in ``seq`` order (first-capture domain order, rows
    in capture order -- the order the per-day 1/3 vote and its
    ``Counter`` tie-breaking are defined over) and run the shared
    interval estimator on each group.
    """
    wanted = set(restrict_to) if restrict_to is not None else None
    per_domain: Dict[str, List[Tuple[int, Optional[str]]]] = {}
    for domain, ordinal, cmp_key, _vantage in capture_rows(graph):
        bucket = per_domain.get(domain)
        if bucket is None:
            per_domain[domain] = [(ordinal, cmp_key)]
        else:
            bucket.append((ordinal, cmp_key))
    timelines: Dict[str, DomainTimeline] = {}
    for domain, rows in per_domain.items():
        if wanted is not None and domain not in wanted:
            continue
        timelines[domain] = DomainTimeline.from_day_rows(
            domain,
            rows,
            interpolate=interpolate,
            fade_out_days=fade_out_days,
        )
    return AdoptionSeries(timelines=timelines)


def vantage_table(graph: ConsentGraph) -> VantageTable:
    """Table 1 as a graph query (shadow of ``from_stream_rows``).

    Replays the ``CAPTURED`` edges in ``seq`` order into the shared
    accumulator: per vantage, a domain counts once under its most
    recent CMP-positive capture, configs and domains in
    first-appearance order.
    """
    accumulator = VantageAccumulator()
    for domain, _ordinal, cmp_key, vantage in capture_rows(graph):
        accumulator.add(vantage, domain, cmp_key)
    return accumulator.table()


# ----------------------------------------------------------------------
# Toplist / marketshare projections
# ----------------------------------------------------------------------
def toplist_ranks(
    graph: ConsentGraph, ranking: str = "tranco"
) -> Dict[str, int]:
    """``domain -> 1-based rank`` from one ranking's ``RANK`` edges."""
    node = graph.node_id("ranking", ranking)
    if node is None:
        raise GraphError(f"ranking {ranking!r} not ingested")
    return {
        graph.node_key(domain_node): props["rank"]
        for domain_node, props in graph.adjacency(
            node, "RANK", direction="in"
        )
    }


def observed_curve(
    graph: ConsentGraph,
    date: dt.date,
    sizes: Sequence[int],
    *,
    ranking: str = "tranco",
    restrict_to: Optional[Sequence[str]] = None,
) -> MarketShareCurve:
    """Observed (capture-derived) marketshare as a graph query.

    Shadow of :func:`repro.core.marketshare.observed_marketshare`: a
    domain counts for a CMP in prefix *n* when its interpolated
    timeline (from the ``CAPTURED`` edges) classifies it with that CMP
    on *date* and its ``RANK`` edge puts it at rank <= *n*. Bucket
    counts are integers, so iteration order cannot leak into the curve.
    """
    sizes = sorted(set(int(s) for s in sizes))
    if not sizes or sizes[0] < 1:
        raise ValueError("toplist sizes must be positive")
    series = adoption_series(graph, restrict_to)
    timelines = series.timelines
    per_bucket: Dict[str, List[int]] = {k: [0] * len(sizes) for k in CMP_KEYS}
    max_size = sizes[-1]
    ranks = toplist_ranks(graph, ranking)
    for domain in sorted(ranks):
        rank = ranks[domain]
        if rank > max_size:
            continue
        timeline = timelines.get(domain)
        if timeline is None:
            continue
        state = timeline.state_on(date)
        buckets = per_bucket.get(state) if state is not None else None
        if buckets is not None:
            buckets[bisect.bisect_left(sizes, rank)] += 1
    return _curve_from_buckets(date, sizes, per_bucket)


def adopted_cmp_on(
    graph: ConsentGraph, domain_node: int, date_iso: str
) -> Optional[str]:
    """The CMP a domain's ``ADOPTED`` interval edges put it on at a date.

    Interval properties are ISO strings (start inclusive, ``""`` end =
    open), so the containment test is a plain lexicographic compare;
    worldgen episodes never overlap, so at most one edge matches --
    bit-equal to ``Website.cmp_on``.
    """
    for cmp_node, props in graph.adjacency(domain_node, "ADOPTED"):
        if props["start"] <= date_iso and (
            props["end"] == "" or date_iso < props["end"]
        ):
            return graph.node_key(cmp_node)
    return None


def toplist_order(
    graph: ConsentGraph, ranking: str = "tranco"
) -> List[int]:
    """Domain node ids of one ranking in rank order (position 1 first)."""
    node = graph.node_id("ranking", ranking)
    if node is None:
        raise GraphError(f"ranking {ranking!r} not ingested")
    order = sorted(
        (props["rank"], domain_node)
        for domain_node, props in graph.adjacency(
            node, "RANK", direction="in"
        )
    )
    return [domain_node for _, domain_node in order]


def fig5_curve(
    graph: ConsentGraph,
    date: dt.date,
    sizes: Optional[Sequence[int]] = None,
    *,
    exact_limit: int = 10_000,
    samples_per_stratum: int = 2_000,
    seed: int = 5,
) -> MarketShareCurve:
    """Figure 5 as a graph query (shadow of
    :func:`repro.core.marketshare.marketshare_by_toplist_size`).

    Walks the toplist in ``RANK`` order and reads each domain's CMP
    state from its ``ADOPTED`` edges instead of asking the synthetic
    world; deep strata replay the reference's exact seeded sampling
    sequence (same ``random.Random(seed)``, same index stream over the
    same stratum slices), so the estimated float counts agree bit for
    bit, not just statistically.
    """
    order = toplist_order(graph)
    max_size = len(order)
    if sizes is None:
        sizes = default_sizes(max_size)
    sizes = sorted(set(min(s, max_size) for s in sizes))
    if sizes[0] < 1:
        raise ValueError("toplist sizes must be positive")

    rng = random.Random(seed)
    date_iso = date.isoformat()
    cum: Counter = Counter()
    counts: Dict[str, List[float]] = {k: [] for k in CMP_KEYS}
    prev = 0
    for size in sizes:
        stratum = order[prev:size]
        if size <= exact_limit or len(stratum) <= samples_per_stratum:
            for domain_node in stratum:
                cmp_key = adopted_cmp_on(graph, domain_node, date_iso)
                if cmp_key is not None:
                    cum[cmp_key] += 1
        else:
            sampled = rng.sample(range(len(stratum)), samples_per_stratum)
            stratum_counts: Counter = Counter()
            for idx in sampled:
                cmp_key = adopted_cmp_on(graph, stratum[idx], date_iso)
                if cmp_key is not None:
                    stratum_counts[cmp_key] += 1
            scale = len(stratum) / samples_per_stratum
            for key, n in stratum_counts.items():
                cum[key] += n * scale
        for key in CMP_KEYS:
            counts[key].append(float(cum[key]))
        prev = size
    return MarketShareCurve(date=date, sizes=list(sizes), counts=counts)


def observes_degree(graph: ConsentGraph) -> Dict[str, int]:
    """Per CMP: domains ever observed with it -- marketshare as plain
    CMP-node in-degree over the deduplicated ``OBSERVES`` edges."""
    return {
        graph.node_key(node): graph.degree(node, "OBSERVES")
        for node in graph.nodes_of_type("cmp")
    }


# ----------------------------------------------------------------------
# Per-country Figure 5 (CrUX-shaped rankings)
# ----------------------------------------------------------------------
def graph_countries(graph: ConsentGraph) -> List[str]:
    """Country codes with an ingested CrUX-style ranking, sorted."""
    out = []
    for node in graph.nodes_of_type("ranking"):
        key = graph.node_key(node)
        if key.startswith("crux:"):
            out.append(key.partition(":")[2])
    return out


def country_fig5(
    graph: ConsentGraph, country: str, date: dt.date
) -> MarketShareCurve:
    """The Figure 5 analysis over one country's bucketed ranking.

    A CrUX-shaped list only reveals rank *magnitudes*, so the curve is
    sampled at each bucket boundary: prefix = every domain whose bucket
    is <= the boundary, size = that prefix's cardinality, CMP state
    from the ``ADOPTED`` edges. Counts are exact integers (country
    lists are small); per-CMP series share the reference curve
    encoding, so cross-country comparisons read like the paper's
    Figures A.4-A.6.
    """
    node = graph.node_id("ranking", f"crux:{country}")
    if node is None:
        raise GraphError(
            f"no ranking for country {country!r}; ingested countries: "
            f"{graph_countries(graph)}"
        )
    by_bucket: Dict[int, List[int]] = {}
    for domain_node, props in graph.adjacency(node, "RANK", direction="in"):
        by_bucket.setdefault(props["bucket"], []).append(domain_node)
    date_iso = date.isoformat()
    cum: Counter = Counter()
    sizes: List[int] = []
    counts: Dict[str, List[float]] = {k: [] for k in CMP_KEYS}
    total = 0
    for bucket in sorted(by_bucket):
        nodes = by_bucket[bucket]
        total += len(nodes)
        for domain_node in nodes:
            cmp_key = adopted_cmp_on(graph, domain_node, date_iso)
            if cmp_key is not None:
                cum[cmp_key] += 1
        sizes.append(total)
        for key in CMP_KEYS:
            counts[key].append(float(cum[key]))
    return MarketShareCurve(date=date, sizes=sizes, counts=counts)


# ----------------------------------------------------------------------
# GVL churn (Figures 7/8)
# ----------------------------------------------------------------------
def gvl_versions(
    graph: ConsentGraph,
) -> List[Tuple[int, str, Dict[int, Tuple[frozenset, frozenset]]]]:
    """Per GVL version: ``(version, date, {vendor id: (consent, li)})``.

    Versions come back in version order (the ``v%05d`` natural keys sort
    numerically); membership and declarations are decoded from each
    version's ``MEMBER_OF`` edges.
    """
    out = []
    for node in graph.nodes_of_type("gvl_version"):
        props = graph.props(node)
        members: Dict[int, Tuple[frozenset, frozenset]] = {}
        for vendor_node, eprops in graph.adjacency(
            node, "MEMBER_OF", direction="in"
        ):
            members[graph.props(vendor_node)["vendor_id"]] = (
                parse_purpose_csv(eprops["consent"]),
                parse_purpose_csv(eprops["li"]),
            )
        out.append((props["version"], props["last_updated"], members))
    return out


def _basis_of(
    pid: int, consent: frozenset, li: frozenset
) -> Optional[str]:
    if pid in consent:
        return "consent"
    if pid in li:
        return "legitimate-interest"
    return None


def gvl_churn(
    graph: ConsentGraph, purpose_ids: Tuple[int, ...] = PURPOSE_IDS
) -> dict:
    """Vendor churn as ``MEMBER_OF`` edge diffs (shadow of
    :class:`~repro.core.gvl_analysis.GvlAnalysis`).

    Diffs consecutive versions' membership edge sets: joins/leaves from
    the vendor-id symmetric difference, purpose-change events from the
    per-edge declaration CSVs, classified through the same
    :class:`~repro.tcf.gvl.PurposeChange` taxonomy. The payload holds
    Figure 7 (vendor/purpose counts over time) and Figure 8 (events by
    kind, net LI->consent); all lists are sorted, so the bytes are
    canonical.
    """
    versions = gvl_versions(graph)
    if len(versions) < 2:
        raise GraphError("need at least two ingested GVL versions")
    vendor_counts = [[date, len(members)] for _, date, members in versions]
    purpose_series: Dict[str, Dict[int, List[List[object]]]] = {
        basis: {pid: [] for pid in purpose_ids}
        for basis in ("consent", "legitimate-interest", "any")
    }
    for _version, date, members in versions:
        hist = {
            basis: {pid: 0 for pid in purpose_ids}
            for basis in purpose_series
        }
        for vid in sorted(members):
            consent, li = members[vid]
            for pid in sorted(consent):
                hist["consent"][pid] += 1
                hist["any"][pid] += 1
            for pid in sorted(li):
                hist["legitimate-interest"][pid] += 1
                hist["any"][pid] += 1
        for basis in ("consent", "legitimate-interest", "any"):
            for pid in purpose_ids:
                purpose_series[basis][pid].append([date, hist[basis][pid]])

    membership: List[List[object]] = []
    change_series: List[List[object]] = []
    events: Counter = Counter()
    for (_v0, _d0, old), (_v1, d1, new) in zip(versions, versions[1:]):
        joined = len([vid for vid in sorted(new) if vid not in old])
        left = len([vid for vid in sorted(old) if vid not in new])
        membership.append([d1, joined, left])
        step: Counter = Counter()
        for vid in sorted(old):
            if vid not in new:
                continue
            old_consent, old_li = old[vid]
            new_consent, new_li = new[vid]
            for pid in purpose_ids:
                before = _basis_of(pid, old_consent, old_li)
                after = _basis_of(pid, new_consent, new_li)
                if before != after:
                    kind = PurposeChange(vid, pid, before, after).kind
                    step[kind] += 1
                    events[kind] += 1
        change_series.append(
            [d1, [[kind, step[kind]] for kind in sorted(step)]]
        )

    return {
        "vendor_counts": vendor_counts,
        "purpose_series": {
            basis: [[pid, series[pid]] for pid in purpose_ids]
            for basis, series in sorted(purpose_series.items())
        },
        "membership": membership,
        "change_series": change_series,
        "events": [[kind, events[kind]] for kind in sorted(events)],
        "net_li_to_consent": (
            events["li-to-consent"] - events["consent-to-li"]
        ),
    }
