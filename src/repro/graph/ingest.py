"""Composable ingestors populating a :class:`ConsentGraph`.

Mirrors the Internet Yellow Pages model (PAPERS.md): many small
crawler-shaped ingestors, each folding one existing store into the
shared typed graph --

* :func:`ingest_captures` -- detection results from the columnar
  :class:`~repro.crawler.columnar.CaptureStore` (one ``CAPTURED`` edge
  per row, carrying the row's global sequence number so capture order
  survives canonicalization);
* :func:`ingest_world_adoption` -- per-domain CMP episodes from the
  synthetic world (``ADOPTED`` interval edges, the Figure 5 substrate);
* :func:`ingest_toplist` -- the aggregate Tranco ranking (``RANK``
  edges with exact positions);
* :func:`ingest_country_rankings` -- CrUX-style per-country bucketed
  lists (``RANK`` edges with magnitude buckets, ``COUNTRY`` edges,
  TLD-derived ``REGISTERED_IN`` assignments);
* :func:`ingest_gvl` -- the Global Vendor List version history
  (``MEMBER_OF`` edges whose properties carry each vendor's per-version
  consent/LI purpose declarations as canonical CSV strings);
* :func:`ingest_vantages` -- the fixed vantage table and its region
  assignments.

Every ingestor is **idempotent** (nodes and edges dedupe on identity;
re-ingesting the same source leaves the digest unchanged) and
**commutes** with every other (no ingestor reads graph state another
wrote; property writes never conflict) -- the two properties
``tests/test_graph_properties.py`` pins for any ingestor permutation.
"""

from __future__ import annotations

import datetime as dt
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.crawler.columnar import VANTAGE_STRS, VANTAGE_TABLE, CaptureStore
from repro.graph.model import ConsentGraph
from repro.toplist.providers import EU_COUNTRIES, CountryToplist

#: ``cmp`` property value for a CMP-less capture row (edge property
#: values are JSON scalars; ``None`` round-trips fine but an explicit
#: sentinel keeps sorts total on Python 3.9).
NO_CMP = ""


def ingest_captures(
    graph: ConsentGraph, store: CaptureStore, *, seq_base: int = 0
) -> None:
    """Fold a capture store's detection rows into the graph.

    One ``CAPTURED`` edge per row, ``domain -> vantage``, with the
    row's 0-based global sequence number, day ordinal and detected CMP
    key as properties. The ``seq`` property is what lets queries
    re-derive exact capture order (and therefore byte-identical
    adoption/vantage results) from a canonically-sorted edge set; it is
    also why re-ingesting the same store is a no-op while two different
    stores never collide.

    *seq_base* offsets the sequence numbers -- when ingesting shard
    stores separately (instead of ``CaptureStore.merge`` first), pass
    each shard the cumulative row count of the shards before it, and
    the merged graph is digest-identical to the serial build (the
    shard-merge associativity property test).

    Deduplicated ``OBSERVES`` edges (``domain -> cmp``) record the
    "ever seen with" relation, making observed CMP marketshare a plain
    node-degree query.
    """
    domain_nodes: Dict[str, int] = {}
    vantage_nodes = {
        i: graph.add_node(
            "vantage",
            VANTAGE_STRS[i],
            region=VANTAGE_TABLE[i].region,
            address_space=VANTAGE_TABLE[i].address_space,
        )
        for i in range(len(VANTAGE_TABLE))
    }
    cmp_nodes: Dict[str, int] = {}
    for seq, (domain, ordinal, cmp_key, vantage) in enumerate(
        store.iter_rows(), start=seq_base
    ):
        src = domain_nodes.get(domain)
        if src is None:
            src = domain_nodes[domain] = graph.add_node("domain", domain)
        graph.add_edge(
            "CAPTURED",
            src,
            vantage_nodes[vantage],
            seq=seq,
            day=ordinal,
            cmp=cmp_key if cmp_key is not None else NO_CMP,
        )
        if cmp_key is not None:
            dst = cmp_nodes.get(cmp_key)
            if dst is None:
                dst = cmp_nodes[cmp_key] = graph.add_node("cmp", cmp_key)
            graph.add_edge("OBSERVES", src, dst)


def ingest_world_adoption(
    graph: ConsentGraph, world, true_ranks: Iterable[int]
) -> None:
    """Fold the worldgen CMP episodes of *true_ranks* into the graph.

    One ``ADOPTED`` interval edge per CMP episode, ``domain -> cmp``,
    with ISO start/end dates (``end=""`` for an episode still open at
    the study end). This is the ground-truth substrate the Figure 5
    marketshare queries count over -- marketshare at a date is the
    time-windowed in-degree of the CMP nodes.
    """
    for rank in true_ranks:
        site = world.site(int(rank))
        src = graph.add_node("domain", site.domain)
        for episode in site.episodes:
            graph.add_edge(
                "ADOPTED",
                src,
                graph.add_node("cmp", episode.cmp_key),
                start=episode.start.isoformat(),
                end="" if episode.end is None else episode.end.isoformat(),
            )


def ingest_toplist(
    graph: ConsentGraph, tranco, *, depth: Optional[int] = None
) -> None:
    """Fold the aggregate Tranco ranking (to *depth*) into the graph.

    ``domain -[RANK {rank}]-> ranking:"tranco"`` with the exact 1-based
    aggregate position. Queries that need "the toplist in order" sort
    these edges by their ``rank`` property.
    """
    n = len(tranco) if depth is None else min(depth, len(tranco))
    ranking = graph.add_node("ranking", "tranco", provider="tranco")
    for position, domain in enumerate(tranco.top(n), start=1):
        graph.add_edge(
            "RANK", graph.add_node("domain", domain), ranking, rank=position
        )


def ingest_country_rankings(
    graph: ConsentGraph, toplists: Mapping[str, CountryToplist]
) -> None:
    """Fold per-country CrUX-style bucketed lists into the graph.

    Per country: a ``ranking:"crux:CC"`` node linked to its
    ``country:CC`` node, one ``RANK {bucket}`` edge per listed domain,
    and a ``REGISTERED_IN`` edge assigning the domain to the country.
    Country nodes carry their region membership via ``IN_REGION``.
    """
    region_nodes = {
        "EU": graph.add_node("region", "EU"),
        "US": graph.add_node("region", "US"),
    }
    for country in sorted(toplists):
        toplist = toplists[country]
        country_node = graph.add_node("country", country)
        region = "EU" if country in EU_COUNTRIES else "US"
        graph.add_edge("IN_REGION", country_node, region_nodes[region])
        ranking = graph.add_node(
            "ranking", f"crux:{country}", provider="crux"
        )
        graph.add_edge("COUNTRY", ranking, country_node)
        for bucket, domain in toplist.entries:
            domain_node = graph.add_node("domain", domain)
            graph.add_edge("RANK", domain_node, ranking, bucket=bucket)
            graph.add_edge("REGISTERED_IN", domain_node, country_node)


def ingest_gvl(graph: ConsentGraph, versions: Sequence) -> None:
    """Fold a GVL version history into the graph.

    Per published version: a ``gvl_version`` node (key ``v<version>``,
    properties ``version``/``last_updated``) and one ``MEMBER_OF`` edge
    per listed vendor whose properties carry the vendor's declarations
    *in that version* as sorted CSV strings (``consent="1,3"``,
    ``li="2"``). Encoding declarations on the membership edge keeps the
    edge count at O(vendors x versions) instead of O(vendors x versions
    x purposes); the churn queries diff the CSVs per purpose, which is
    exactly the per-purpose basis diff :func:`repro.tcf.gvl.diff_versions`
    computes. Deduplicated ``DECLARES`` edges (``vendor -> purpose``,
    labeled by basis) keep "which vendors ever declared purpose p"
    a one-hop degree query.
    """
    for version in sorted(versions, key=lambda v: v.version):
        vnode = graph.add_node(
            "gvl_version",
            f"v{version.version:05d}",
            version=version.version,
            last_updated=version.last_updated.isoformat(),
        )
        for vendor in sorted(version.vendors, key=lambda v: v.id):
            vendor_node = graph.add_node(
                "vendor", f"{vendor.id:06d}", vendor_id=vendor.id
            )
            graph.add_edge(
                "MEMBER_OF",
                vendor_node,
                vnode,
                consent=_purpose_csv(vendor.purpose_ids),
                li=_purpose_csv(vendor.leg_int_purpose_ids),
            )
            for pid in sorted(vendor.purpose_ids):
                graph.add_edge(
                    "DECLARES",
                    vendor_node,
                    graph.add_node("purpose", f"{pid:02d}", purpose_id=pid),
                    basis="consent",
                )
            for pid in sorted(vendor.leg_int_purpose_ids):
                graph.add_edge(
                    "DECLARES",
                    vendor_node,
                    graph.add_node("purpose", f"{pid:02d}", purpose_id=pid),
                    basis="legitimate-interest",
                )


def ingest_vantages(graph: ConsentGraph) -> None:
    """Fold the fixed vantage table and its region assignment in."""
    region_nodes = {
        "EU": graph.add_node("region", "EU"),
        "US": graph.add_node("region", "US"),
    }
    for i, vantage in enumerate(VANTAGE_TABLE):
        node = graph.add_node(
            "vantage",
            VANTAGE_STRS[i],
            region=vantage.region,
            address_space=vantage.address_space,
        )
        graph.add_edge("IN_REGION", node, region_nodes[vantage.region])


def _purpose_csv(purpose_ids: Iterable[int]) -> str:
    return ",".join(str(pid) for pid in sorted(purpose_ids))


def parse_purpose_csv(text: str) -> frozenset:
    """Inverse of the ``MEMBER_OF`` declaration encoding."""
    if not text:
        return frozenset()
    return frozenset(int(part) for part in text.split(","))


def iso_or_none(text: str) -> Optional[dt.date]:
    """Decode an ``ADOPTED`` edge date property (``""`` = open-ended)."""
    return None if not text else dt.date.fromisoformat(text)
