"""The consent ecosystem as one typed property graph.

``repro.graph`` unifies every entity the paper's analyses touch --
domains, CMPs, TCF vendors, GVL versions, rankings, countries, vantages
-- behind a single deterministic graph (:mod:`~repro.graph.model`),
populated by composable ingestors (:mod:`~repro.graph.ingest`) and
queried by projections pinned bit-identical to the :mod:`repro.core`
derivations (:mod:`~repro.graph.query`). See the "Consent ecosystem
graph" section of ARCHITECTURE.md for the schema and contracts.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional, Sequence

from repro.graph.ingest import (
    NO_CMP,
    ingest_captures,
    ingest_country_rankings,
    ingest_gvl,
    ingest_toplist,
    ingest_vantages,
    ingest_world_adoption,
)
from repro.graph.model import (
    EDGE_TYPES,
    NODE_TYPES,
    ConsentGraph,
    GraphError,
    merge_graphs,
)
from repro.graph.query import (
    adoption_series,
    capture_rows,
    country_fig5,
    fig5_curve,
    graph_countries,
    gvl_churn,
    observed_curve,
    observes_degree,
    toplist_ranks,
    vantage_table,
)

__all__ = [
    "NO_CMP",
    "EDGE_TYPES",
    "NODE_TYPES",
    "ConsentGraph",
    "GraphError",
    "adoption_series",
    "build_study_graph",
    "capture_rows",
    "country_fig5",
    "fig5_curve",
    "graph_countries",
    "gvl_churn",
    "gvl_history_digest",
    "ingest_captures",
    "ingest_country_rankings",
    "ingest_gvl",
    "ingest_toplist",
    "ingest_vantages",
    "ingest_world_adoption",
    "merge_graphs",
    "observed_curve",
    "observes_degree",
    "toplist_ranks",
    "vantage_table",
]


def build_study_graph(
    *,
    store=None,
    world=None,
    tranco=None,
    ranking_depth: Optional[int] = None,
    country_toplists: Optional[Mapping] = None,
    gvl_versions: Optional[Sequence] = None,
    include_vantages: bool = True,
) -> ConsentGraph:
    """Build the full consent-ecosystem graph for one study.

    Every source is optional; pass what the study has and the matching
    ingestors run (the ingestors commute, so the result is the same
    graph whichever subset is present). *ranking_depth* bounds the
    ``RANK`` edges ingested from *tranco* (and, when *world* is also
    given, which domains get ground-truth ``ADOPTED`` edges).
    """
    graph = ConsentGraph()
    if include_vantages:
        ingest_vantages(graph)
    if store is not None:
        ingest_captures(graph, store)
    if tranco is not None:
        ingest_toplist(graph, tranco, depth=ranking_depth)
        if world is not None:
            depth = (
                len(tranco)
                if ranking_depth is None
                else min(ranking_depth, len(tranco))
            )
            ingest_world_adoption(
                graph, world, tranco.top_true_ranks(depth).tolist()
            )
    if country_toplists is not None:
        ingest_country_rankings(graph, country_toplists)
    if gvl_versions is not None:
        ingest_gvl(graph, gvl_versions)
    return graph


def gvl_history_digest(versions: Sequence) -> str:
    """A content digest of a GVL version history, for cache fingerprints.

    Hashes each version's number, date and per-vendor declarations in
    sorted order -- the same facts :func:`ingest_gvl` encodes, so equal
    digests mean the graph-build stage would ingest identical edges.
    """
    hasher = hashlib.sha256()
    for version in sorted(versions, key=lambda v: v.version):
        hasher.update(
            f"{version.version}:{version.last_updated.isoformat()}\n".encode(
                "utf-8"
            )
        )
        for vendor in sorted(version.vendors, key=lambda v: v.id):
            consent = ",".join(str(p) for p in sorted(vendor.purpose_ids))
            li = ",".join(str(p) for p in sorted(vendor.leg_int_purpose_ids))
            hasher.update(f"  {vendor.id}|{consent}|{li}\n".encode("utf-8"))
    return hasher.hexdigest()
