"""Visitor behaviour and the randomized dialog experiment.

The paper embeds Quantcast's real consent dialog on mitmproxy.org in two
configurations and logs ~120,000 timestamps from 2910 EU visitors
(Sections 3.2, 3.4, 4.3). Offline, :mod:`repro.users.behavior` models the
visitor population (privacy preferences, reading and motor times,
friction-induced preference reversal) and :mod:`repro.users.experiment`
re-runs the randomized experiment against the real ``__cmp()`` API
emulation and TCF consent-string codec.
"""

from repro.users.behavior import DialogConfig, UserPopulation, VisitorIntent
from repro.users.experiment import (
    ExperimentData,
    VisitorRecord,
    run_quantcast_experiment,
)
from repro.users.session import (
    SessionReport,
    compare_consent_scopes,
    simulate_browsing,
)

__all__ = [
    "DialogConfig",
    "UserPopulation",
    "VisitorIntent",
    "VisitorRecord",
    "ExperimentData",
    "run_quantcast_experiment",
    "SessionReport",
    "simulate_browsing",
    "compare_consent_scopes",
]
