"""The randomized dialog-timing experiment (I7).

Re-runs the paper's field experiment: EU visitors of a public website
are shown Quantcast's consent dialog in one of two configurations, and a
collection script logs ``DOMContentLoaded``, the time the dialog appears
(``__cmp('ping', ...)``), the time it closes, and the consent decision
(``__cmp('getConsentData', ...)``) -- linked by a random non-persistent
id generated on page load (Sections 3.2, 3.3).

Every simulated visit drives the real :class:`~repro.tcf.cmpapi.CmpApi`
state machine and produces a spec-conformant TCF consent string, so the
instrumentation exercises the same machinery a real page would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.cmps.quantcast import MODEL as QUANTCAST_MODEL
from repro.tcf.cmpapi import CmpApi
from repro.tcf.consentstring import ConsentString
from repro.users.behavior import DialogConfig, UserPopulation, VisitorIntent

#: Polling frequency of the collection script's ``__cmp('ping')`` loop.
_PING_POLL_HZ = 7


@dataclass(frozen=True)
class VisitorRecord:
    """The timestamps logged for one visitor (one page load)."""

    #: Random non-persistent id generated on page load.
    visit_id: int
    config: DialogConfig
    #: Seconds from navigation start to DOMContentLoaded.
    dom_content_loaded: float
    #: Seconds from navigation start to the dialog appearing, or None if
    #: no dialog was shown (repeat visitor with a stored decision).
    dialog_shown_at: Optional[float]
    #: Seconds from navigation start to the dialog closing.
    dialog_closed_at: Optional[float]
    #: "accept", "reject", or None (no decision / excluded).
    decision: Optional[str]
    #: The encoded TCF consent string, when a decision was stored.
    consent_string: Optional[str]

    @property
    def interaction_time(self) -> Optional[float]:
        """Dialog-open to decision -- the paper's core metric."""
        if self.dialog_shown_at is None or self.dialog_closed_at is None:
            return None
        return self.dialog_closed_at - self.dialog_shown_at

    @property
    def n_timestamps(self) -> int:
        """Timestamps this visit contributes to the log.

        The collection script polls ``__cmp('ping', ...)`` at 10 Hz from
        page load until the dialog closes (or the three-minute cutoff),
        logging each poll; plus the DOMContentLoaded, dialog-shown and
        dialog-closed events themselves. This is what makes 2910
        visitors produce on the order of 120,000 timestamps.
        """
        n = 1  # DOMContentLoaded
        end = self.dialog_closed_at
        if end is None:
            # Visitors who never decide close the tab after a while; the
            # poll log ends when the page unloads.
            end = 30.0 if self.dialog_shown_at is not None else 0.0
        n += int(end * _PING_POLL_HZ)
        n += self.dialog_shown_at is not None
        n += self.dialog_closed_at is not None
        return n


@dataclass
class ExperimentData:
    """All records of one experiment run."""

    records: List[VisitorRecord]
    #: Visitors not shown a dialog (stored global consent cookie).
    repeat_visitors: int = 0

    def shown(self) -> List[VisitorRecord]:
        return [r for r in self.records if r.dialog_shown_at is not None]

    def decided(self, config: DialogConfig, decision: str) -> List[VisitorRecord]:
        return [
            r
            for r in self.shown()
            if r.config is config and r.decision == decision
        ]

    def interaction_times(
        self, config: DialogConfig, decision: str
    ) -> List[float]:
        return [
            r.interaction_time
            for r in self.decided(config, decision)
            if r.interaction_time is not None
        ]

    def consent_rate(self, config: DialogConfig) -> float:
        accepts = len(self.decided(config, "accept"))
        rejects = len(self.decided(config, "reject"))
        if accepts + rejects == 0:
            raise ValueError(f"no decisions recorded for {config}")
        return accepts / (accepts + rejects)

    @property
    def n_timestamps(self) -> int:
        """Total logged timestamps (the paper reports ~120,000)."""
        return sum(r.n_timestamps for r in self.records)


def run_quantcast_experiment(
    n_visitors: int = 2910,
    *,
    seed: int = 42,
    population: Optional[UserPopulation] = None,
    vendor_list_version: int = 180,
    max_vendor_id: int = 560,
    repeat_visitor_rate: float = 0.08,
    violation_rate: float = 0.0,
) -> ExperimentData:
    """Run the full randomized experiment.

    Each visitor is randomly assigned one of the two dialog
    configurations (the paper deployed them back-to-back on the same
    site; randomization is the offline equivalent). Visitors who make no
    decision within three minutes are recorded without a decision, as
    are repeat visitors whose stored Quantcast cookie suppresses the
    dialog.
    """
    population = population or UserPopulation()
    rng = random.Random(seed)
    records: List[VisitorRecord] = []
    repeat_visitors = 0

    for _ in range(n_visitors):
        visit_id = rng.getrandbits(63)
        config = (
            DialogConfig.DIRECT_REJECT
            if rng.random() < 0.5
            else DialogConfig.MORE_OPTIONS
        )
        dcl = max(0.15, rng.gauss(0.9, 0.3))
        cmp_loaded = dcl + max(0.05, rng.gauss(0.5, 0.2))

        stored = None
        if rng.random() < repeat_visitor_rate:
            stored = ConsentString.build(
                cmp_id=QUANTCAST_MODEL.tcf_cmp_id,
                vendor_list_version=vendor_list_version,
                max_vendor_id=max_vendor_id,
                allowed_purposes=range(1, 6),
                vendor_consents=range(1, max_vendor_id + 1),
            )
        api = CmpApi(
            cmp_id=QUANTCAST_MODEL.tcf_cmp_id, stored_consent=stored
        )
        api.load(cmp_loaded)

        if stored is not None:
            # The CMP stores the first consent decision; no dialog.
            repeat_visitors += 1
            records.append(
                VisitorRecord(
                    visit_id=visit_id,
                    config=config,
                    dom_content_loaded=dcl,
                    dialog_shown_at=None,
                    dialog_closed_at=None,
                    decision=None,
                    consent_string=stored.encode(),
                )
            )
            continue

        shown_at = cmp_loaded + max(0.02, rng.gauss(0.15, 0.05))
        api.show_dialog(shown_at)

        intent = population.sample_intent(rng)
        decision = population.resolve_decision(rng, intent, config)
        reversed_intent = (
            intent is VisitorIntent.REJECT and decision is VisitorIntent.ACCEPT
        )
        took = population.decision_time(
            rng, decision, config, reversed_intent=reversed_intent
        )
        closed_at = shown_at + took

        # "We exclude users who made no decision within the first three
        # minutes after page load" (Section 4.3).
        if (
            decision is VisitorIntent.ABANDON
            or closed_at > population.exclusion_cutoff
        ):
            records.append(
                VisitorRecord(
                    visit_id=visit_id,
                    config=config,
                    dom_content_loaded=dcl,
                    dialog_shown_at=shown_at,
                    dialog_closed_at=None,
                    decision=None,
                    consent_string=None,
                )
            )
            continue

        if decision is VisitorIntent.ACCEPT:
            consent = ConsentString.build(
                cmp_id=QUANTCAST_MODEL.tcf_cmp_id,
                vendor_list_version=vendor_list_version,
                max_vendor_id=max_vendor_id,
                allowed_purposes=range(1, 6),
                vendor_consents=range(1, max_vendor_id + 1),
            )
            label = "accept"
        else:
            label = "reject"
            if rng.random() < violation_rate:
                # A misbehaving publisher integration: the user opted
                # out, yet a positive signal is stored (the violation
                # class Matte et al. detect in the wild).
                consent = ConsentString.build(
                    cmp_id=QUANTCAST_MODEL.tcf_cmp_id,
                    vendor_list_version=vendor_list_version,
                    max_vendor_id=max_vendor_id,
                    allowed_purposes=range(1, 6),
                    vendor_consents=range(1, max_vendor_id + 1),
                )
            else:
                consent = ConsentString.build(
                    cmp_id=QUANTCAST_MODEL.tcf_cmp_id,
                    vendor_list_version=vendor_list_version,
                    max_vendor_id=max_vendor_id,
                )
        api.submit_decision(consent, closed_at)
        data = api.get_consent_data(closed_at)
        assert data is not None

        records.append(
            VisitorRecord(
                visit_id=visit_id,
                config=config,
                dom_content_loaded=dcl,
                dialog_shown_at=shown_at,
                dialog_closed_at=closed_at,
                decision=label,
                consent_string=data.consent_data,
            )
        )

    return ExperimentData(records=records, repeat_visitors=repeat_visitors)
