"""Browsing-session simulation: the user-side cost of consent.

Ties the ecosystem together from the user's chair: a visitor browses a
Zipf-weighted sequence of sites; whenever a site embeds a CMP for which
no decision is stored yet, a dialog appears and costs interaction time
(the Figure 10 model). Under TCF v1's *global* scope, one decision per
CMP covers every site in the CMP's coalition; under TCF v2's
*service-specific* scope (the post-paper default), every site asks
again.

This quantifies two of the paper's discussion points at once: the
"commodification of consent" through consent sharing, and the time cost
consent dialogs impose on the web experience.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.tcf.consentstring import ConsentString
from repro.tcf.globalcookie import GlobalConsentStore
from repro.users.behavior import DialogConfig, UserPopulation, VisitorIntent
from repro.web.worldgen import World


@dataclass(frozen=True)
class VisitOutcome:
    """One site visit from the user's perspective."""

    domain: str
    cmp_key: Optional[str]
    dialog_shown: bool
    #: Seconds the dialog cost (0 when none was shown).
    interaction_seconds: float
    decision: Optional[str]  # "accept" | "reject" | None


@dataclass
class SessionReport:
    """Aggregate of one simulated browsing session."""

    visits: List[VisitOutcome] = field(default_factory=list)
    consent_scope: str = "global"

    @property
    def n_visits(self) -> int:
        return len(self.visits)

    @property
    def cmp_site_visits(self) -> int:
        return sum(1 for v in self.visits if v.cmp_key is not None)

    @property
    def dialogs_shown(self) -> int:
        return sum(1 for v in self.visits if v.dialog_shown)

    @property
    def total_interaction_seconds(self) -> float:
        return sum(v.interaction_seconds for v in self.visits)

    @property
    def dialog_burden(self) -> float:
        """Dialogs per CMP-site visit -- 1.0 means every CMP site asks."""
        if self.cmp_site_visits == 0:
            raise ValueError("session touched no CMP sites")
        return self.dialogs_shown / self.cmp_site_visits


def simulate_browsing(
    world: World,
    date: dt.date,
    *,
    n_visits: int = 200,
    seed: int = 0,
    population: Optional[UserPopulation] = None,
    consent_scope: str = "global",
    zipf_exponent: float = 0.85,
    max_rank: Optional[int] = None,
) -> SessionReport:
    """Simulate one user's browsing day.

    Args:
        consent_scope: ``"global"`` -- one decision per CMP covers the
            whole coalition (TCF v1 global cookies); ``"service"`` --
            per-site consent, every CMP site shows its own dialog.
    """
    if consent_scope not in ("global", "service"):
        raise ValueError(f"unknown consent scope {consent_scope!r}")
    population = population or UserPopulation()
    rng = random.Random(f"session:{seed}")
    limit = max_rank if max_rank is not None else world.n_domains
    store = GlobalConsentStore()
    decided_sites: Set[str] = set()
    report = SessionReport(consent_scope=consent_scope)

    for _ in range(n_visits):
        rank = _zipf_rank(rng, limit, zipf_exponent)
        site = world.site(rank)
        cmp_key = site.cmp_on(date)
        if cmp_key is None or not site.embeds_cmp_for("EU", date):
            report.visits.append(
                VisitOutcome(site.domain, cmp_key, False, 0.0, None)
            )
            continue
        episode = site.episode_on(date)
        assert episode is not None
        dialog = episode.dialog
        already_decided = (
            cmp_key in store
            if consent_scope == "global"
            else site.domain in decided_sites
        )
        if already_decided or not dialog.shown_to("EU"):
            report.visits.append(
                VisitOutcome(site.domain, cmp_key, False, 0.0, None)
            )
            continue

        config = (
            DialogConfig.DIRECT_REJECT
            if dialog.has_first_page_reject
            else DialogConfig.MORE_OPTIONS
        )
        intent = population.sample_intent(rng)
        decision = population.resolve_decision(rng, intent, config)
        if decision is VisitorIntent.ABANDON:
            # The visitor leaves without deciding; the dialog will be
            # shown again next time.
            report.visits.append(
                VisitOutcome(site.domain, cmp_key, True, 2.0, None)
            )
            continue
        took = population.decision_time(
            rng, decision, config,
            reversed_intent=(
                intent is VisitorIntent.REJECT
                and decision is VisitorIntent.ACCEPT
            ),
        )
        label = "accept" if decision is VisitorIntent.ACCEPT else "reject"
        consent = _consent_for(decision, cmp_key)
        store.record_decision(cmp_key, consent)
        decided_sites.add(site.domain)
        report.visits.append(
            VisitOutcome(site.domain, cmp_key, True, took, label)
        )
    return report


def compare_consent_scopes(
    world: World,
    date: dt.date,
    *,
    n_visits: int = 200,
    seed: int = 0,
    max_rank: Optional[int] = None,
) -> Dict[str, SessionReport]:
    """The same browsing day under global vs service-specific scope."""
    return {
        scope: simulate_browsing(
            world, date, n_visits=n_visits, seed=seed,
            consent_scope=scope, max_rank=max_rank,
        )
        for scope in ("global", "service")
    }


def _zipf_rank(rng: random.Random, n: int, exponent: float) -> int:
    # Inverse-CDF sampling of a bounded zeta-ish distribution via
    # rejection on the continuous envelope; cheap and adequate here.
    while True:
        u = rng.random()
        rank = int((u * (n ** (1 - exponent) - 1) + 1) ** (1 / (1 - exponent)))
        if 1 <= rank <= n:
            return rank


def _consent_for(decision: VisitorIntent, cmp_key: str) -> ConsentString:
    from repro.cmps.base import cmp_by_key

    full = decision is VisitorIntent.ACCEPT
    return ConsentString.build(
        cmp_id=cmp_by_key(cmp_key).tcf_cmp_id,
        vendor_list_version=180,
        max_vendor_id=560,
        allowed_purposes=range(1, 6) if full else (),
        vendor_consents=range(1, 561) if full else (),
    )
