"""The visitor-population model.

Calibrated against the results of Section 4.3 / Figure 10:

* with a direct reject button the median user takes 3.2 s to accept and
  3.6 s to deny consent, with a consent rate of 83%;
* without it ("More Options" instead), the median time to deny doubles
  to 6.7 s and the consent rate rises to 90% -- friction converts some
  would-be rejectors into accepters.

The model separates *intent* (what the visitor wants) from *behaviour*
(what the dialog design lets them do at what cost), which is exactly the
mechanism the paper's experiment isolates.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass


class DialogConfig(enum.Enum):
    """The two Quantcast dialog configurations of the experiment."""

    #: Figure A.1: "I DO NOT ACCEPT" next to "I ACCEPT".
    DIRECT_REJECT = "direct-reject"
    #: Figure A.2: "MORE OPTIONS" next to "I ACCEPT"; rejecting requires
    #: navigating to a second page (Figure A.3).
    MORE_OPTIONS = "more-options"


class VisitorIntent(enum.Enum):
    """What the visitor wants before seeing the dialog."""

    ACCEPT = "accept"
    REJECT = "reject"
    ABANDON = "abandon"  # leaves without deciding (excluded by the paper)


@dataclass(frozen=True)
class UserPopulation:
    """Distribution parameters of the visitor population.

    The defaults describe the "very technical and privacy-conscious
    audience" of mitmproxy.org (Section 3.4). Times are drawn from
    log-normal distributions, matching the heavy right skew the paper's
    nonparametric tests are chosen for.
    """

    #: Probability a visitor intends to accept.
    p_accept: float = 0.795
    #: Probability a visitor intends to reject (rest abandon).
    p_reject: float = 0.175
    #: Median seconds to read the prompt and click the accept button.
    accept_median: float = 3.2
    #: Log-scale sigma of all decision times.
    sigma: float = 0.55
    #: Extra motor/verification time of a first-page reject click.
    direct_reject_extra: float = 0.4
    #: Median extra seconds to navigate the More-Options page and find
    #: the reject control (includes the second page load).
    second_page_extra_median: float = 3.1
    #: Probability that a would-be rejector gives up and accepts when no
    #: first-page reject exists (friction-induced reversal).
    p_friction_accept: float = 0.34
    #: Probability that a would-be rejector abandons instead under the
    #: same friction.
    p_friction_abandon: float = 0.07
    #: Seconds after which an undecided visitor is excluded ("no
    #: decision within the first three minutes after page load").
    exclusion_cutoff: float = 180.0

    def __post_init__(self) -> None:
        if not 0.0 < self.p_accept + self.p_reject <= 1.0:
            raise ValueError("intent probabilities must sum to at most 1")

    # ------------------------------------------------------------------
    def sample_intent(self, rng: random.Random) -> VisitorIntent:
        roll = rng.random()
        if roll < self.p_accept:
            return VisitorIntent.ACCEPT
        if roll < self.p_accept + self.p_reject:
            return VisitorIntent.REJECT
        return VisitorIntent.ABANDON

    def resolve_decision(
        self, rng: random.Random, intent: VisitorIntent, config: DialogConfig
    ) -> VisitorIntent:
        """What the visitor actually does, given the dialog design."""
        if intent is not VisitorIntent.REJECT:
            return intent
        if config is DialogConfig.DIRECT_REJECT:
            return intent
        roll = rng.random()
        if roll < self.p_friction_accept:
            return VisitorIntent.ACCEPT
        if roll < self.p_friction_accept + self.p_friction_abandon:
            return VisitorIntent.ABANDON
        return VisitorIntent.REJECT

    def decision_time(
        self,
        rng: random.Random,
        decision: VisitorIntent,
        config: DialogConfig,
        *,
        reversed_intent: bool = False,
    ) -> float:
        """Seconds from dialog display to the final decision click."""
        base = self._lognormal(rng, self.accept_median)
        if decision is VisitorIntent.ACCEPT:
            if reversed_intent:
                # A frustrated rejector first looked for a reject option.
                base += self._lognormal(rng, 1.4)
            return base
        if decision is VisitorIntent.REJECT:
            if config is DialogConfig.DIRECT_REJECT:
                return base + self.direct_reject_extra
            return base + self._lognormal(rng, self.second_page_extra_median)
        # Abandoners linger a long, irrelevant time.
        return self.exclusion_cutoff + self._lognormal(rng, 30.0)

    def _lognormal(self, rng: random.Random, median_s: float) -> float:
        return median_s * math.exp(rng.gauss(0.0, self.sigma))
