"""Live per-domain adoption state with watermark finalization.

The batch estimator (:mod:`repro.core.adoption`) classifies a domain on
a date by *retrospective* interpolation over the whole capture history.
A streaming engine cannot interpolate into the future, so the live view
uses **watermark semantics**: a day's captures are folded into per-domain
votes only once the day is *final* (the watermark has passed it -- no
earlier-dated capture can still arrive), and a domain stays classified
under its most recent finalized vote for at most ``fade_out_days`` days,
after which it expires to unknown. The fade-out boundary is identical to
the batch rule: a vote on day L classifies days ``[L, L + fade + 1)``
exclusive -- day ``L + 30`` still classified, day ``L + 31`` unknown
(the 30/31 pin, mirrored by ``tests/test_boundary_fixes.py`` on this
path).

Determinism: expiry is a heap keyed on ``(expiry_ordinal, domain)`` with
lazy staleness checks, so pop order -- and therefore the transition feed
driving the marketshare accumulator -- is a pure function of the row
feed. All bookkeeping iterates insertion-ordered dicts, never sets.
"""

from __future__ import annotations

import datetime as dt
import heapq
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.adoption import FADE_OUT_DAYS, day_vote

#: One finalized state change: ``(domain, old, new)`` where old/new are
#: CMP keys or ``None`` (unknown / no CMP / expired).
Transition = Tuple[str, Optional[str], Optional[str]]


class LiveAdoptionState:
    """Per-domain CMP state at the watermark, with expiring fade-out.

    Feed captures with :meth:`buffer_row` as they arrive (they may be
    dated up to one day past the current event day -- the crawl delay
    crosses midnight); advance the watermark with
    :meth:`finalize_through` once an event day is fully ingested. Rows
    dated beyond the watermark stay pending; finalization votes each
    pending day with the same :func:`~repro.core.adoption.day_vote` the
    batch estimator uses and returns the resulting state transitions in
    deterministic order (per day: vote transitions in first-capture
    order, then expiries in ``(ordinal, domain)`` heap order).
    """

    def __init__(
        self,
        *,
        fade_out_days: int = FADE_OUT_DAYS,
        restrict_to: Optional[Iterable[str]] = None,
    ) -> None:
        self.fade_out_days = fade_out_days
        self._wanted = set(restrict_to) if restrict_to is not None else None
        #: Pending (not yet final) captures: ordinal -> domain -> states
        #: in capture order.
        self._pending: Dict[int, Dict[str, List[Optional[str]]]] = {}
        #: domain -> (last finalized vote ordinal, voted state).
        self._state: Dict[str, Tuple[int, Optional[str]]] = {}
        #: Expiry heap: ``(last_ordinal + fade + 1, domain)``. Entries
        #: are never removed on re-vote; stale ones are skipped on pop
        #: by comparing against the domain's current last ordinal.
        self._heap: List[Tuple[int, str]] = []
        #: Live CMP counts over classified domains. Zero entries are
        #: deleted on decrement (``Counter`` equality on Python 3.9
        #: distinguishes explicit zeros).
        self.counts: Counter = Counter()
        #: Highest finalized day ordinal (0 before any finalization).
        self.watermark_ordinal = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def buffer_row(
        self, domain: str, date_ordinal: int, cmp_key: Optional[str]
    ) -> None:
        """Buffer one capture row until its day is finalized."""
        if self._wanted is not None and domain not in self._wanted:
            return
        if date_ordinal <= self.watermark_ordinal:
            raise ValueError(
                f"capture dated ordinal {date_ordinal} arrived at or "
                f"behind the watermark ({self.watermark_ordinal}); rows "
                "must be buffered before their day is finalized"
            )
        day = self._pending.get(date_ordinal)
        if day is None:
            day = self._pending[date_ordinal] = {}
        bucket = day.get(domain)
        if bucket is None:
            day[domain] = [cmp_key]
        else:
            bucket.append(cmp_key)

    def finalize_through(self, watermark_ordinal: int) -> List[Transition]:
        """Advance the watermark, voting every newly-final day.

        Processes days in ascending order; within a day, expiries whose
        boundary falls on or before that day pop from the heap *first*
        (a state faded exactly at day ``o`` must release its count
        before a day-``o`` vote can reinstate the domain -- voting first
        would strand the old count behind a then-stale heap entry), then
        the day's votes land in first-capture domain order. Returns
        every state transition, in processing order.
        """
        if watermark_ordinal < self.watermark_ordinal:
            raise ValueError("watermark cannot move backwards")
        transitions: List[Transition] = []
        fade = self.fade_out_days
        # Pending days arrive in ascending insertion order (the feed is
        # day-ordered and rollover only reaches one day ahead), but sort
        # defensively: vote order across days must be ascending.
        due = sorted(
            o for o in self._pending if o <= watermark_ordinal
        )
        for ordinal in due:
            self._expire_through(ordinal, transitions)
            for domain, states in self._pending.pop(ordinal).items():
                vote = day_vote(states)
                old = self._classified(domain, ordinal)
                self._state[domain] = (ordinal, vote)
                if vote is not None:
                    heapq.heappush(self._heap, (ordinal + fade + 1, domain))
                if old != vote:
                    self._shift(domain, old, vote, transitions)
        self._expire_through(watermark_ordinal, transitions)
        self.watermark_ordinal = watermark_ordinal
        return transitions

    def _expire_through(
        self, ordinal: int, transitions: List[Transition]
    ) -> None:
        heap = self._heap
        while heap and heap[0][0] <= ordinal:
            expiry, domain = heapq.heappop(heap)
            last, state = self._state[domain]
            if last + self.fade_out_days + 1 != expiry or state is None:
                continue  # stale entry: the domain re-voted since
            self._state[domain] = (last, None)
            self._shift(domain, state, None, transitions)

    def _shift(
        self,
        domain: str,
        old: Optional[str],
        new: Optional[str],
        transitions: List[Transition],
    ) -> None:
        if old is not None:
            self.counts[old] -= 1
            if not self.counts[old]:
                del self.counts[old]
        if new is not None:
            self.counts[new] += 1
        transitions.append((domain, old, new))

    def _classified(self, domain: str, ordinal: int) -> Optional[str]:
        entry = self._state.get(domain)
        if entry is None:
            return None
        last, state = entry
        if state is None or ordinal >= last + self.fade_out_days + 1:
            return None
        return state

    # ------------------------------------------------------------------
    # Queries (at the watermark)
    # ------------------------------------------------------------------
    def state_of(self, domain: str) -> Optional[str]:
        """The domain's live CMP at the watermark, or ``None``.

        Absence semantics match the batch ``state_on`` contract: unseen
        domains, voted-no-CMP domains and faded-out domains all answer
        ``None`` -- never a stale classification.
        """
        return self._classified(domain, self.watermark_ordinal)

    @property
    def watermark(self) -> Optional[dt.date]:
        if not self.watermark_ordinal:
            return None
        return dt.date.fromordinal(self.watermark_ordinal)

    @property
    def n_tracked(self) -> int:
        """Domains with at least one finalized vote."""
        return len(self._state)

    @property
    def n_pending_days(self) -> int:
        return len(self._pending)
