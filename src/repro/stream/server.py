"""Long-lived query server over a streaming engine's live state.

A stdlib :mod:`http.server` service (no new dependencies) answering the
paper's analyses from the engine's in-memory state while the follow loop
keeps ingesting:

* ``GET /healthz``            -- liveness + watermark
* ``GET /adoption?date=...``  -- retrospective per-CMP counts (default:
  the watermark date)
* ``GET /adoption/live``      -- watermark-finalized expiring-state counts
* ``GET /marketshare?date=...`` -- observed marketshare curve rows
* ``GET /marketshare/live``   -- the O(1) live curve
* ``GET /vantage``            -- per-vantage CMP occurrence table
* ``GET /stats``              -- engine progress + query latency
  percentiles (p50/p90/p99 per endpoint)

Every query runs inside a ``stream.query`` obs span and lands in the
``stream_query_seconds`` latency histogram, labeled by endpoint. The
handler threads only touch the engine through its lock-guarded query
methods, so serving is safe while :meth:`StreamingStudyEngine.advance_day`
runs. Latency measurement uses the wall clock deliberately -- it meters
the service, never a result (hence the DET002 suppressions).
"""

from __future__ import annotations

import datetime as dt
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.stream.engine import StreamingStudyEngine


def percentile(values: List[float], q: float) -> float:
    """The *q*-quantile (0..1) of *values* by nearest-rank on a sorted
    copy; 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


class _QueryLatencies:
    """Per-endpoint latency samples, lock-guarded (handler threads)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: Dict[str, List[float]] = {}

    def record(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            bucket = self._samples.get(endpoint)
            if bucket is None:
                self._samples[endpoint] = [seconds]
            else:
                bucket.append(seconds)

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            samples = {k: list(v) for k, v in self._samples.items()}
        return {
            endpoint: {
                "count": len(values),
                "p50_ms": round(percentile(values, 0.50) * 1e3, 3),
                "p90_ms": round(percentile(values, 0.90) * 1e3, 3),
                "p99_ms": round(percentile(values, 0.99) * 1e3, 3),
            }
            for endpoint, values in samples.items()
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes queries to the engine; one instance per request."""

    server: "QueryServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        endpoint = url.path.rstrip("/") or "/"
        started = time.perf_counter()  # repro-lint: disable=DET002
        engine = self.server.engine
        try:
            with engine.obs.span("stream.query", endpoint=endpoint) as span:
                status, payload = self._route(endpoint, parse_qs(url.query))
                span.set(status=status)
        except Exception as exc:  # pragma: no cover - defensive 500
            status, payload = 500, {"error": str(exc)}
        elapsed = time.perf_counter() - started  # repro-lint: disable=DET002
        self.server.latencies.record(endpoint, elapsed)
        self.server.h_query.observe(elapsed, endpoint=endpoint)
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr access log."""

    # ------------------------------------------------------------------
    def _route(
        self, endpoint: str, query: Dict[str, List[str]]
    ) -> Tuple[int, dict]:
        engine = self.server.engine
        if endpoint == "/healthz":
            watermark = engine.watermark
            return 200, {
                "status": "ok",
                "watermark": watermark.isoformat() if watermark else None,
            }
        if endpoint == "/stats":
            payload = engine.stats_payload()
            payload["queries"] = self.server.latencies.snapshot()
            return 200, payload
        if endpoint == "/adoption":
            date, error = self._date_param(query)
            if error is not None:
                return error
            counts = engine.counts_on(date)
            return 200, {
                "date": date.isoformat(),
                "counts": dict(counts),
                "total": sum(counts.values()),
            }
        if endpoint == "/adoption/live":
            counts = engine.live_counts()
            watermark = engine.watermark
            return 200, {
                "watermark": watermark.isoformat() if watermark else None,
                "counts": dict(counts),
                "total": sum(counts.values()),
            }
        if endpoint == "/marketshare":
            date, error = self._date_param(query)
            if error is not None:
                return error
            return 200, _curve_payload(engine.marketshare_curve(date))
        if endpoint == "/marketshare/live":
            return 200, _curve_payload(engine.live_marketshare_curve())
        if endpoint == "/vantage":
            table = engine.vantage_table()
            return 200, {
                "rows": [
                    {
                        "config": name,
                        "counts": counts,
                        "total": total,
                        "coverage": round(coverage, 4),
                    }
                    for name, counts, total, coverage in table.rows()
                ],
            }
        return 404, {"error": f"unknown endpoint {endpoint!r}"}

    def _date_param(
        self, query: Dict[str, List[str]]
    ) -> Tuple[Optional[dt.date], Optional[Tuple[int, dict]]]:
        """``?date=`` parsed, defaulting to the watermark; the second
        element is a ready error response when the request is bad."""
        raw = query.get("date", [None])[0]
        if raw is None:
            watermark = self.server.engine.watermark
            if watermark is None:
                return None, (409, {"error": "no day ingested yet"})
            return watermark, None
        try:
            return dt.date.fromisoformat(raw), None
        except ValueError:
            return None, (400, {"error": f"bad date {raw!r}"})


def _curve_payload(curve) -> dict:
    return {
        "date": curve.date.isoformat(),
        "rows": [
            {
                "size": size,
                "total_share": round(total, 6),
                "shares": {k: round(v, 6) for k, v in per_cmp.items()},
            }
            for size, total, per_cmp in curve.rows()
        ],
    }


class QueryServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one engine.

    ``daemon_threads`` keeps handler threads from blocking shutdown;
    :meth:`serve_background` runs the accept loop on a daemon thread so
    the follow loop (or a test) keeps the main thread.
    """

    daemon_threads = True

    def __init__(
        self,
        engine: StreamingStudyEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.engine = engine
        self.latencies = _QueryLatencies()
        self.h_query = engine.obs.metrics.histogram(
            "stream_query_seconds", "query-server request latency"
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_background(self) -> "QueryServer":
        """Start the accept loop on a daemon thread; returns self."""
        thread = threading.Thread(
            target=self.serve_forever, name="stream-query-server", daemon=True
        )
        self._thread = thread
        thread.start()
        return self

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def serve_engine(
    engine: StreamingStudyEngine, host: str = "127.0.0.1", port: int = 0
) -> QueryServer:
    """A :class:`QueryServer` for *engine*, already serving in the
    background; ``port`` 0 picks a free port (tests, benchmarks)."""
    return QueryServer(engine, host, port).serve_background()
