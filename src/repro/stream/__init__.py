"""Incremental streaming study engine (ROADMAP item 2).

Consumes the social share stream as an ordered event feed and maintains
the paper's longitudinal results *online*: adoption series, marketshare
curves and vantage tables updated per ingested day instead of re-derived
over the full window. Day-watermark finalization and the 30-day fade-out
run as expiring state (:class:`~repro.stream.state.LiveAdoptionState`);
periodic checkpoints reuse :mod:`repro.cache` fingerprints so a follow
run caught up to day N is byte-identical to a batch run over days 0..N
(``scripts/streaming_smoke.py`` asserts it, cold and from a mid-window
checkpoint). ``study --follow`` drives it from the CLI; the query server
(:mod:`repro.stream.server`) answers adoption/marketshare/vantage
queries from live state with obs spans and latency histograms.
"""

from repro.stream.engine import StreamingStudyEngine
from repro.stream.state import LiveAdoptionState
from repro.stream.server import QueryServer, serve_engine

__all__ = [
    "LiveAdoptionState",
    "QueryServer",
    "StreamingStudyEngine",
    "serve_engine",
]
