"""The incremental study engine behind ``study --follow``.

One :class:`StreamingStudyEngine` owns a persistent serial platform
(queue cooldowns, capture-id counter and run stats thread from day to
day exactly as in one batch run), a columnar store it appends into, and
the incremental analysis state:

* an :class:`~repro.core.adoption.AdoptionAccumulator` fed every row as
  it arrives -- :meth:`adoption_series` is byte-identical to the batch
  ``AdoptionSeries.from_columnar`` over the same store at any cut;
* a :class:`~repro.core.vantage.VantageAccumulator` (same contract
  against ``VantageTable.from_stream_rows``);
* a :class:`~repro.stream.state.LiveAdoptionState` consuming only
  *finalized* days (watermark semantics), whose transitions drive a
  :class:`~repro.core.marketshare.MarketShareAccumulator` for O(1)
  live marketshare curves.

Checkpoints reuse :mod:`repro.cache`: the store is saved under the
exact ``social-crawl`` fingerprint a batch run over the ingested prefix
would use (so batch and follow runs serve each other's cache entries),
and the engine's serial state -- queue cooldowns, capture counter,
watermark -- lands under the ``stream-checkpoint`` stage next to a
``latest`` pointer. Resuming replays the restored store's rows through
fresh accumulators (pure functions of the feed), so a resumed run is
byte-identical to an uninterrupted one; ``scripts/streaming_smoke.py``
asserts both directions.
"""

from __future__ import annotations

import datetime as dt
import threading
from collections import Counter
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.cache import CacheError, Fingerprint
from repro.core.adoption import AdoptionAccumulator, AdoptionSeries
from repro.core.marketshare import (
    MarketShareAccumulator,
    MarketShareCurve,
    default_sizes,
    observed_marketshare,
)
from repro.core.vantage import VantageAccumulator, VantageTable
from repro.crawler.columnar import VANTAGE_STRS, CaptureStore
from repro.crawler.platform import NetographPlatform, PlatformConfig
from repro.crawler.seeds import SocialShareStream, StreamConfig
from repro.crawler.spill import SpillSettings, SpillingCaptureStore
from repro.stream.state import LiveAdoptionState

if TYPE_CHECKING:  # pragma: no cover - typing only (cycle guard)
    from repro.core.pipeline import Study

_ONE_DAY = dt.timedelta(days=1)


class StreamingStudyEngine:
    """Consume the share stream day by day, maintaining results online."""

    def __init__(
        self,
        study: "Study",
        *,
        checkpoint_every: int = 0,
        restrict_to_toplist: bool = True,
        marketshare_sizes: Optional[Sequence[int]] = None,
    ) -> None:
        cfg = study.config
        self.study = study
        self.obs = study.obs
        self.start = cfg.study_start
        #: Next event day to ingest; ``watermark`` trails it by one day.
        self.next_day = cfg.study_start
        self.watermark: Optional[dt.date] = None
        #: Checkpoint cadence in ingested days (0 = explicit only).
        self.checkpoint_every = checkpoint_every
        self.days_ingested = 0
        #: Guards engine state between the follow loop and the query
        #: server's handler threads.
        self.lock = threading.RLock()
        self.platform = NetographPlatform(
            study.world,
            stream=SocialShareStream(
                study.world,
                StreamConfig(
                    seed=cfg.seed + 1,
                    events_per_day=cfg.events_per_day,
                ),
            ),
            config=PlatformConfig(
                seed=cfg.seed + 2,
                faults=cfg.faults,
                retry=cfg.retry,
            ),
            obs=study.obs,
        )
        #: The append-only capture log; ``memory_budget`` bounds its
        #: resident rows by spilling full segments to disk (the follow
        #: loop only ever reads the suffix via ``rows_since``, so long
        #: follows stay flat-RSS). Bit-invisible either way.
        if cfg.memory_budget:
            self.store: "CaptureStore | SpillingCaptureStore" = (
                SpillingCaptureStore(
                    SpillSettings(row_budget=cfg.memory_budget)
                )
            )
        else:
            self.store = CaptureStore()
        self._cursor = 0
        restrict = (
            set(study.toplist_domains) if restrict_to_toplist else None
        )
        self.adoption = AdoptionAccumulator(restrict)
        self.vantage = VantageAccumulator()
        self.live = LiveAdoptionState(restrict_to=restrict)
        self._ranks = {
            domain: rank
            for rank, domain in enumerate(study.toplist_domains, start=1)
        }
        self._sizes = list(
            marketshare_sizes
            if marketshare_sizes is not None
            else default_sizes(cfg.toplist_size)
        )
        self.marketshare = MarketShareAccumulator(self._ranks, self._sizes)
        metrics = self.obs.metrics
        self._m_rows = metrics.counter(
            "stream_rows_total", "capture rows ingested by the follow engine"
        )
        self._m_days = metrics.counter(
            "stream_days_total", "event days finalized by the follow engine"
        )
        self._m_checkpoints = metrics.counter(
            "stream_checkpoints_total", "engine checkpoints written"
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def advance_day(self) -> int:
        """Ingest the next event day and finalize it; returns the
        number of capture rows the day produced.

        One call = one ``platform.ingest_day`` (dedup + crawl, identical
        to the batch serial loop), the new rows drained into the
        accumulators via ``rows_since``, then watermark finalization:
        the live state votes the newly-final day and its transitions
        drive the marketshare accumulator. A ``checkpoint_every`` > 0
        writes a checkpoint every that-many ingested days.
        """
        with self.lock:
            day = self.next_day
            with self.obs.span(
                "stream.ingest_day", day=day.isoformat()
            ) as span:
                self.platform.ingest_day(day, self.store)
                rows = self.store.rows_since(self._cursor)
                self._cursor = self.store.n_rows
                self._ingest_rows(rows)
                transitions = self.live.finalize_through(day.toordinal())
                for domain, old, new in transitions:
                    self.marketshare.transition(domain, old, new)
                span.set(rows=len(rows), transitions=len(transitions))
            self.watermark = day
            self.next_day = day + _ONE_DAY
            self.days_ingested += 1
            self._m_rows.inc(len(rows))
            self._m_days.inc()
            if (
                self.checkpoint_every
                and self.days_ingested % self.checkpoint_every == 0
            ):
                self.checkpoint()
            return len(rows)

    def run_until(self, end: dt.date) -> "StreamingStudyEngine":
        """Ingest every event day in ``[next_day, end)``; returns self."""
        while self.next_day < end:
            self.advance_day()
        return self

    def _ingest_rows(
        self, rows: List[Tuple[str, int, Optional[str], int]]
    ) -> None:
        """Feed decoded store rows to every accumulator, in feed order."""
        adoption_add = self.adoption.add
        vantage_add = self.vantage.add
        buffer_row = self.live.buffer_row
        for domain, ordinal, cmp_key, vantage_id in rows:
            adoption_add(domain, ordinal, cmp_key)
            vantage_add(VANTAGE_STRS[vantage_id], domain, cmp_key)
            buffer_row(domain, ordinal, cmp_key)

    # ------------------------------------------------------------------
    # Queries (thread-safe; the query server calls these)
    # ------------------------------------------------------------------
    def adoption_series(self) -> AdoptionSeries:
        """The retrospective series over every ingested row --
        byte-identical to the batch derivation at this cut point."""
        with self.lock:
            return self.adoption.series()

    def counts_on(self, date: dt.date) -> Counter:
        """Retrospective per-CMP domain counts on *date*."""
        with self.lock:
            return self.adoption.series().counts_on(date)

    def live_counts(self) -> Counter:
        """Per-CMP counts of the live (watermark-finalized) state."""
        with self.lock:
            return Counter(self.live.counts)

    def vantage_table(self) -> VantageTable:
        with self.lock:
            return self.vantage.table()

    def marketshare_curve(
        self, date: Optional[dt.date] = None
    ) -> MarketShareCurve:
        """Retrospective observed-marketshare curve (default: at the
        watermark), derived from the interpolated timelines."""
        with self.lock:
            when = date if date is not None else self._watermark_or_raise()
            return observed_marketshare(
                self.adoption.series(), self._ranks, when, self._sizes
            )

    def live_marketshare_curve(self) -> MarketShareCurve:
        """The O(1) live curve at the watermark (expiring-state view)."""
        with self.lock:
            return self.marketshare.curve(self._watermark_or_raise())

    def _watermark_or_raise(self) -> dt.date:
        if self.watermark is None:
            raise ValueError("no day ingested yet")
        return self.watermark

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _crawl_fingerprint(self, end: dt.date) -> Fingerprint:
        """The *batch* store fingerprint for the ingested prefix -- the
        entry a batch ``run_social_crawl(start, end)`` would look up."""
        return self.study.fingerprint(
            "social-crawl", key=(self.start.isoformat(), end.isoformat())
        )

    def _state_fingerprint(self, label: str) -> Fingerprint:
        return self.study.fingerprint(
            "stream-checkpoint", key=(self.start.isoformat(), label)
        )

    def checkpoint(self) -> Optional[Fingerprint]:
        """Persist the engine so a later process can resume at the
        watermark; returns the state fingerprint (``None`` when the
        study has no cache or nothing is ingested yet).

        Three writes: the store under the batch ``social-crawl``
        fingerprint of ``[start, watermark + 1)`` (shared with batch
        runs in both directions), the serial engine state under
        ``stream-checkpoint``, and a ``latest`` pointer naming the
        newest watermark.
        """
        cache = self.study.cache
        with self.lock:
            if cache is None or self.watermark is None:
                return None
            with self.obs.span(
                "stream.checkpoint", watermark=self.watermark.isoformat()
            ):
                end = self.watermark + _ONE_DAY
                cache.save_capture_store(
                    self._crawl_fingerprint(end), self.store
                )
                state_fp = self._state_fingerprint(self.watermark.isoformat())
                cache.save_payload(
                    state_fp,
                    {
                        "watermark": self.watermark.isoformat(),
                        "rows": self.store.n_rows,
                        "platform": self.platform.state_payload(),
                    },
                )
                cache.save_payload(
                    self._state_fingerprint("latest"),
                    {"watermark": self.watermark.isoformat()},
                )
                self._m_checkpoints.inc()
            return state_fp

    @classmethod
    def from_checkpoint(
        cls,
        study: "Study",
        watermark: Optional[dt.date] = None,
        **kwargs: object,
    ) -> "StreamingStudyEngine":
        """An engine resumed from a saved checkpoint.

        *watermark* selects a specific checkpoint; the default follows
        the ``latest`` pointer. The store comes back through the batch
        ``social-crawl`` entry, the platform's serial state from the
        ``stream-checkpoint`` payload, and every accumulator is rebuilt
        by replaying the restored rows -- they are pure functions of the
        feed, so the resumed engine is byte-identical to one that never
        stopped (pinned by the equivalence smoke and property tests).
        """
        cache = study.cache
        if cache is None:
            raise CacheError("resuming requires a study cache_dir")
        engine = cls(study, **kwargs)
        if watermark is None:
            pointer = cache.load_payload(engine._state_fingerprint("latest"))
            if pointer is None:
                raise CacheError("no streaming checkpoint to resume from")
            watermark = dt.date.fromisoformat(pointer["watermark"])
        payload = cache.load_payload(
            engine._state_fingerprint(watermark.isoformat())
        )
        if payload is None:
            raise CacheError(
                f"no streaming checkpoint at watermark {watermark.isoformat()}"
            )
        end = watermark + _ONE_DAY
        store = cache.load_capture_store(engine._crawl_fingerprint(end))
        if store is None:
            raise CacheError(
                f"streaming checkpoint at {watermark.isoformat()} has no "
                "store entry"
            )
        if store.n_rows != payload["rows"]:
            raise CacheError(
                f"streaming checkpoint row count mismatch: state says "
                f"{payload['rows']}, store holds {store.n_rows}"
            )
        if study.config.memory_budget:
            # The cache hands back one merged resident store (transient
            # O(rows)); re-spill it so the resumed follow run is bounded
            # again from here on.
            spilling = SpillingCaptureStore(
                SpillSettings(row_budget=study.config.memory_budget)
            )
            spilling.merge(store)
            engine.store = spilling
        else:
            engine.store = store
        engine.platform.restore_state(payload["platform"])
        engine._ingest_rows(store.rows_since(0))
        engine._cursor = store.n_rows
        for domain, old, new in engine.live.finalize_through(
            watermark.toordinal()
        ):
            engine.marketshare.transition(domain, old, new)
        engine.watermark = watermark
        engine.next_day = end
        engine.days_ingested = (end - engine.start).days
        return engine

    # ------------------------------------------------------------------
    @property
    def rows_ingested(self) -> int:
        return self._cursor

    def stats_payload(self) -> dict:
        """Engine progress counters (the query server's ``/stats``)."""
        with self.lock:
            return {
                "watermark": (
                    self.watermark.isoformat() if self.watermark else None
                ),
                "days_ingested": self.days_ingested,
                "rows_ingested": self._cursor,
                "events_seen": self.platform.stats.events,
                "crawls": self.platform.stats.crawls,
                "domains_tracked": self.live.n_tracked,
                "skip_rate": round(self.platform.queue.stats.skip_rate, 4),
            }
