"""Client-side storage records.

For every domain in a capture, Netograph saves "all cookies, IndexedDB,
LocalStorage, SessionStorage and WebSQL records" (Section 3.2). Beyond
cookies (modelled in :mod:`repro.net.http`), CMPs and trackers leave
characteristic entries in the other storage areas -- Quantcast's CMP,
for example, mirrors the consent state into LocalStorage.

This module provides the record model and the synthesis of the records a
page visit would leave behind.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

STORAGE_KINDS = ("localstorage", "sessionstorage", "indexeddb", "websql")


@dataclass(frozen=True)
class StorageRecord:
    """One client-side storage entry.

    ``written_at`` is seconds since navigation start; the crawler only
    captures records written before its timeout fired, so late-running
    CMP scripts leave no storage trace in aggressive crawls.
    """

    kind: str
    origin: str
    key: str
    value: str
    written_at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_KINDS:
            raise ValueError(f"unknown storage kind {self.kind!r}")


def synthesize_storage_records(
    site_domain: str,
    cmp_key: Optional[str],
    rng: random.Random,
    *,
    cmp_script_at: float = 2.0,
) -> Tuple[StorageRecord, ...]:
    """The storage records one page load leaves behind.

    Every ad-funded page writes an analytics client id; pages with an
    embedded TCF CMP additionally mirror consent metadata into
    LocalStorage (keyed per CMP, as the real products do).
    ``cmp_script_at`` is when the CMP script executed -- its records are
    stamped just after it.
    """
    origin = f"https://{site_domain}"
    records: List[StorageRecord] = [
        StorageRecord(
            kind="localstorage",
            origin=origin,
            key="_wa_client_id",
            value=f"{rng.randrange(1 << 31)}.{rng.randrange(1 << 31)}",
            written_at=max(0.1, rng.gauss(0.9, 0.2)),
        ),
        StorageRecord(
            kind="sessionstorage",
            origin=origin,
            key="session_depth",
            value=str(rng.randint(1, 5)),
            written_at=max(0.1, rng.gauss(0.7, 0.2)),
        ),
    ]
    if cmp_key is not None:
        records.append(
            StorageRecord(
                kind="localstorage",
                origin=origin,
                key=_cmp_storage_key(cmp_key),
                value="pending",  # no decision was made by the crawler
                written_at=cmp_script_at + 0.3,
            )
        )
        if rng.random() < 0.4:
            records.append(
                StorageRecord(
                    kind="indexeddb",
                    origin=origin,
                    key=f"{cmp_key}-vendorlist-cache",
                    value="v1",
                    written_at=cmp_script_at + 0.6,
                )
            )
    return tuple(records)


def _cmp_storage_key(cmp_key: str) -> str:
    return {
        "onetrust": "OptanonConsent",
        "quantcast": "_cmpRepromptHash",
        "trustarc": "truste.eu.cookie.notice_preferences",
        "cookiebot": "CookieConsent",
        "liveramp": "_lr_env",
        "crownpeak": "_evidon_consent",
    }.get(cmp_key, f"{cmp_key}-consent")


def cmp_from_storage(records: Tuple[StorageRecord, ...]) -> Optional[str]:
    """Tertiary detection: infer the CMP from its storage keys.

    Like DOM detection, this is a validation signal only: it requires
    the CMP script to have executed, so aggressive timeouts and blocked
    scripts produce false negatives.
    """
    reverse = {
        "OptanonConsent": "onetrust",
        "_cmpRepromptHash": "quantcast",
        "truste.eu.cookie.notice_preferences": "trustarc",
        "CookieConsent": "cookiebot",
        "_lr_env": "liveramp",
        "_evidon_consent": "crownpeak",
    }
    for record in records:
        key = reverse.get(record.key)
        if key is not None:
            return key
    return None
