"""The browser simulator.

Wraps :func:`repro.web.serving.render_page` with crawl behaviour:

* **timeout profiles** -- Netograph crawls with "relatively aggressive
  timeouts" (an idle timeout of five seconds and a total page timeout of
  45 seconds, under heavy CPU load); the toplist study repeats captures
  with an extended timeout (Section 3.2). We model a profile as an
  effective transaction cutoff: requests that start after the cutoff are
  not recorded, which is exactly how late-loading CMP scripts get missed
  (2% of CMP usage, Section 3.5);
* **redirect following** -- the final address-bar URL is computed from
  the document transactions;
* capture assembly (screenshots, storage, page text).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Optional

from repro.crawler.capture import Capture, ScreenshotInfo, Vantage
from repro.faults.schedule import Fault, FaultSchedule
from repro.net.http import follow_redirects
from repro.net.psl import default_psl
from repro.net.url import URL
from repro.web.serving import VisitSettings, render_page
from repro.web.worldgen import World


@dataclass(frozen=True)
class CrawlProfile:
    """A crawl configuration.

    ``cutoff`` abstracts the combined effect of the idle and total page
    timeouts under crawler load: transactions starting later than this
    many seconds after navigation are missed.
    """

    name: str
    cutoff: float
    language: str = "en-US"
    full_page_screenshot: bool = False
    store_dom: bool = False

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")


#: Netograph's default aggressive profile (social-media crawls).
DEFAULT_PROFILE = CrawlProfile(name="default", cutoff=10.0)

#: The toplist study's extended-timeout profile.
EXTENDED_PROFILE = CrawlProfile(
    name="extended", cutoff=120.0, full_page_screenshot=True, store_dom=True
)


def crawl_url(
    world: World,
    url: URL,
    *,
    when: dt.datetime,
    vantage: Vantage,
    profile: CrawlProfile = DEFAULT_PROFILE,
    capture_id: int = 0,
    faults: Optional[FaultSchedule] = None,
    attempt: int = 0,
) -> Capture:
    """Crawl one URL and assemble a capture.

    With a fault schedule, the schedule is consulted for
    ``(registrable domain of url, vantage, attempt)`` before the page is
    rendered; a scheduled fault short-circuits into a failed capture
    whose ``fault`` field names the kind, which is what the retry loops
    key their decisions on. ``attempt`` only feeds that lookup -- the
    render itself is attempt-independent, so a recovered retry is
    bit-identical to the crawl that would have happened fault-free.
    """
    if faults is not None:
        fault = faults.fault_for(
            _schedule_domain(url), str(vantage), attempt
        )
        if fault is not None:
            return _faulted_capture(
                url, when, vantage, profile, capture_id, fault
            )
    settings = VisitSettings(
        date=when.date(),
        region=vantage.region,
        address_space=vantage.address_space,
        language=profile.language,
    )
    page = render_page(world, url, settings)
    kept = page.transactions_before(profile.cutoff)
    timed_out = len(kept) < len(page.transactions)
    final_url = follow_redirects(kept, url) if kept else page.final_url
    # Storage entries only exist if the writing script ran before the
    # crawl was cut off.
    kept_storage = tuple(
        r for r in page.storage_records if r.written_at < profile.cutoff
    )

    return Capture(
        capture_id=capture_id,
        seed_url=url,
        final_url=final_url if kept else page.final_url,
        captured_at=when,
        vantage=vantage,
        status=page.status,
        transactions=kept,
        cookies=page.cookies,
        storage_records=kept_storage,
        screenshot=ScreenshotInfo(
            full_page=profile.full_page_screenshot
        ),
        page_text=page.page_text,
        timed_out=timed_out,
        dom_dialog=page.dialog if profile.store_dom else None,
        dialog_shown=page.dialog_shown if profile.store_dom else False,
        blocked_by_antibot=page.blocked_by_antibot,
    )


def _schedule_domain(url: URL) -> str:
    """The domain a fault schedule keys on: the registrable domain of
    the seed URL (the queue's dedup unit, Section 3.4)."""
    reg = default_psl().registrable_domain(url.host)
    return reg if reg is not None else url.host


def _faulted_capture(
    url: URL,
    when: dt.datetime,
    vantage: Vantage,
    profile: CrawlProfile,
    capture_id: int,
    fault: Fault,
) -> Capture:
    """The capture an injected fault produces instead of a page render.

    Every kind fails conservatively: no transactions beyond an anti-bot
    interstitial, no cookies, no CMP-bearing page text -- a faulted
    capture can only ever *under*count CMP presence.
    """
    status: Optional[int] = None
    timed_out = False
    page_text = ""
    blocked = False
    if fault.kind == "slow-response":
        # The response outlasted even the extended page timeout: the
        # crawl is cut off before any transaction completes.
        timed_out = True
    elif fault.kind == "antibot-challenge":
        status = 403
        page_text = "Checking your browser before accessing the site."
        blocked = True
    # "dns-error" and "connection-reset" leave status None: no HTTP
    # response was received at all.
    return Capture(
        capture_id=capture_id,
        seed_url=url,
        final_url=url,
        captured_at=when,
        vantage=vantage,
        status=status,
        transactions=(),
        cookies=(),
        storage_records=(),
        screenshot=ScreenshotInfo(full_page=profile.full_page_screenshot),
        page_text=page_text,
        timed_out=timed_out,
        dom_dialog=None,
        dialog_shown=False,
        blocked_by_antibot=blocked,
        fault=fault.kind,
    )
