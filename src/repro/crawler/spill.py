"""Bounded-memory capture storage via on-disk spill segments.

At paper scale (161M crawls) even the columnar
:class:`~repro.crawler.columnar.CaptureStore` grows linearly with the
study: ~10 bytes/row plus interning tables. This module caps the
*resident* portion: a :class:`SpillingCaptureStore` keeps one active
in-memory segment and, whenever it reaches the row budget, persists it
as an on-disk segment in the existing ``shard-NNNN.jsonl`` checkpoint
format (:mod:`repro.crawler.storage`) and starts a fresh one. Peak RSS
is then bounded by the spill budget plus one day's batch, not by the
study size.

Spilling is **bit-invisible**. Segments concatenated in spill order
reproduce the exact insertion order, and the columnar merge invariant
(interning tables stay first-appearance ordered through
:meth:`CaptureStore.merge`) guarantees that folding the segments back
together yields a store whose :meth:`~CaptureStore.digest_parts` chunks
are byte-identical to a store that never spilled. ``tests/test_scale.py``
pins digest equality against the in-memory path.

The budget is an *execution* knob, like ``parallelism`` or
``cache_dir``: it is threaded through :class:`SpillSettings` /
``StudyConfig.memory_budget`` and is never part of any cache
fingerprint -- changing it cannot change results, only memory and time.

Full-store reads (``observations``, ``by_domain``, ``digest_parts``,
``domain_day_rows``) delegate to :meth:`SpillingCaptureStore.fold_in`,
which reloads every segment and is therefore O(rows) in memory for the
duration of the call -- the price of asking for the whole store at
once. Streaming consumers (:meth:`iter_rows`, :meth:`rows_since`) load
one segment at a time and stay within the budget.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.crawler.capture import Capture, Observation
from repro.crawler.columnar import CaptureStore
from repro.crawler.storage import (
    load_store,
    save_store,
    shard_checkpoint_path,
)

__all__ = ["SpillSettings", "SpillingCaptureStore"]


@dataclass(frozen=True)
class SpillSettings:
    """Execution-level memory bounds for a crawl-phase store.

    Never fingerprinted: a budgeted run and an unbounded run of the
    same study produce byte-identical stores, so cache entries are
    shared freely between them.
    """

    #: Rows the active in-memory segment may hold before it spills.
    row_budget: int
    #: Where segment files land; ``None`` allocates a private temporary
    #: directory per store.
    directory: Optional[str] = None

    def __post_init__(self) -> None:
        if self.row_budget < 1:
            raise ValueError("row_budget must be >= 1")


@dataclass(frozen=True)
class _Segment:
    """Bookkeeping for one spilled segment file."""

    path: str
    n_rows: int
    n_captures: int
    total_requests: int


class SpillingCaptureStore:
    """A :class:`CaptureStore` facade with bounded resident rows.

    Drop-in for the write path and the streaming read path of the plain
    store. ``retain_captures`` mode is unsupported (full captures are
    never persisted, so they cannot spill); the platform keeps the
    plain store for that mode.
    """

    #: Mirrors the plain store's attribute so shared code can branch.
    retain_captures = False

    def __init__(self, settings: SpillSettings):
        self.settings = settings
        if settings.directory is not None:
            self._directory = str(settings.directory)
            Path(self._directory).mkdir(parents=True, exist_ok=True)
        else:
            self._directory = tempfile.mkdtemp(prefix="repro-spill-")
        self._segments: List[_Segment] = []
        self._active = CaptureStore(retain_captures=False)
        self._spilled_rows = 0
        self._spilled_captures = 0
        self._spilled_requests = 0
        self._fold_cache: Optional[CaptureStore] = None

    # ------------------------------------------------------------------
    # Counters (read-only views over segments + active)
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._spilled_rows + self._active.n_rows

    @property
    def n_captures(self) -> int:
        return self._spilled_captures + self._active.n_captures

    @property
    def total_requests(self) -> int:
        return self._spilled_requests + self._active.total_requests

    @property
    def n_segments(self) -> int:
        """Spilled segments so far (excluding the active one)."""
        return len(self._segments)

    def segment_paths(self) -> List[str]:
        """Spilled segment files, in spill (= insertion) order."""
        return [segment.path for segment in self._segments]

    def active_store(self) -> CaptureStore:
        """The resident tail segment (rows appended since last spill)."""
        return self._active

    # ------------------------------------------------------------------
    # Writes (delegate to the active segment, then maybe spill)
    # ------------------------------------------------------------------
    def append_row(self, *args, **kwargs) -> None:
        self._active.append_row(*args, **kwargs)
        self._dirty()

    def append_batch(self, *args, **kwargs) -> None:
        self._active.append_batch(*args, **kwargs)
        self._dirty()

    def add(self, capture: Capture, cmp_key: Optional[str]) -> Observation:
        obs = self._active.add(capture, cmp_key)
        self._dirty()
        return obs

    def add_observation(self, obs: Observation) -> Observation:
        self._active.add_observation(obs)
        self._dirty()
        return obs

    def merge(self, other) -> None:
        """Fold *other* (plain or spilling) in after this store's rows.

        A spilling *other* is consumed one segment at a time, so the
        transient footprint stays near one budget's worth of rows; a
        plain *other* lands in the active segment whole before the
        post-merge spill check runs.
        """
        if isinstance(other, SpillingCaptureStore):
            for segment in other._segments:
                self._active.merge(
                    load_store(segment.path, context="spill segment")
                )
                self._dirty()
            self._active.merge(other._active)
        else:
            self._active.merge(other)
        self._dirty()

    def _dirty(self) -> None:
        self._fold_cache = None
        if self._active.n_rows >= self.settings.row_budget:
            self._spill()

    def _spill(self) -> None:
        active = self._active
        if active.n_rows == 0:
            return
        path = shard_checkpoint_path(self._directory, len(self._segments))
        path.parent.mkdir(parents=True, exist_ok=True)
        save_store(active, path)
        self._segments.append(
            _Segment(
                path=str(path),
                n_rows=active.n_rows,
                n_captures=active.n_captures,
                total_requests=active.total_requests,
            )
        )
        self._spilled_rows += active.n_rows
        self._spilled_captures += active.n_captures
        self._spilled_requests += active.total_requests
        self._active = CaptureStore(retain_captures=False)

    # ------------------------------------------------------------------
    # Streaming reads (one segment resident at a time)
    # ------------------------------------------------------------------
    def iter_segment_stores(self) -> Iterator[CaptureStore]:
        """Every segment (spilled, then active) as a store, in order."""
        for segment in self._segments:
            yield load_store(segment.path, context="spill segment")
        yield self._active

    def iter_rows(self) -> Iterator[Tuple[str, int, Optional[str], int]]:
        for store in self.iter_segment_stores():
            yield from store.iter_rows()

    def rows_since(
        self, cursor: int
    ) -> List[Tuple[str, int, Optional[str], int]]:
        """Rows at global index >= *cursor*, across segment boundaries.

        The streaming engine's drain: a spill may land mid-day, so the
        suffix can span the newest on-disk segment plus the active one.
        Only overlapping segments are reloaded.
        """
        if cursor < 0:
            raise ValueError("cursor must be >= 0")
        out: List[Tuple[str, int, Optional[str], int]] = []
        offset = 0
        for segment in self._segments:
            end = offset + segment.n_rows
            if cursor < end:
                store = load_store(segment.path, context="spill segment")
                out.extend(store.rows_since(max(0, cursor - offset)))
            offset = end
        out.extend(self._active.rows_since(max(0, cursor - offset)))
        return out

    # ------------------------------------------------------------------
    # Whole-store views (fold every segment back together; O(rows))
    # ------------------------------------------------------------------
    def fold_in(self) -> CaptureStore:
        """The equivalent in-memory store: segments merged by
        concatenation in spill order, then the active tail.

        Cached until the next write. Bit-identical to a store that
        never spilled, by the columnar merge-order invariant.
        """
        if self._fold_cache is None:
            merged = CaptureStore(retain_captures=False)
            for store in self.iter_segment_stores():
                merged.merge(store)
            self._fold_cache = merged
        return self._fold_cache

    def digest_parts(self) -> Iterable[bytes]:
        return self.fold_in().digest_parts()

    @property
    def observations(self) -> List[Observation]:
        return self.fold_in().observations

    @property
    def captures(self) -> List[Capture]:
        return []

    @property
    def unique_domains(self) -> int:
        return self.fold_in().unique_domains

    def by_domain(self):
        return self.fold_in().by_domain()

    def observations_for(self, domain: str) -> List[Observation]:
        return self.fold_in().observations_for(domain)

    def domains_with_cmp(self) -> Tuple[str, ...]:
        return self.fold_in().domains_with_cmp()

    def domain_day_rows(self):
        return self.fold_in().domain_day_rows()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def cleanup(self) -> None:
        """Delete the spilled segment files (and the owned directory).

        Not called automatically: shard-result stores cross process
        boundaries as segment paths, so the files must outlive the
        store object that wrote them until the parent has merged or
        persisted them.
        """
        for segment in self._segments:
            try:
                Path(segment.path).unlink()
            except OSError:
                pass
        try:
            Path(self._directory).rmdir()
        except OSError:
            pass  # shared/non-empty directory: leave it

    # ------------------------------------------------------------------
    # Pickling (shard results travel between processes as paths)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_fold_cache"] = None  # derived data; never ship it
        return state
